"""E15: LRU realisability — the analytic model vs a real cache.

The paper's counting argument assumes an ideal cache.  This bench runs
the derived tilings through word-accurate LRU / Belady / direct-mapped
simulations on small instances and shows (a) the analytic count is a
constant-factor model of LRU reality, (b) LP tilings beat untiled
execution on a real cache too, and (c) policy quality ordering
Belady <= LRU <= direct-mapped holds.

It also measures the batched-engine speedup over the per-access
reference path on a >= 1M-access instance and emits the result as
machine-readable ``benchmarks/results/BENCH_trace_sim.json`` (ops/sec
before vs after, plus the one-pass miss-curve throughput) so future PRs
can track the perf trajectory.
"""

import json
import time
from pathlib import Path

import pytest

from repro.api import Session
from repro.core.bounds import communication_lower_bound
from repro.library.problems import matmul, matvec, nbody
from repro.machine.model import MachineModel
from repro.machine.native import native_available
from repro.simulate.executor import simulate_tiled_traffic
from repro.simulate.multilevel import nest_miss_curve
from repro.simulate.trace_sim import run_trace_simulation

#: Tilings served by the façade; one plan cache for the module.
SESSION = Session()

CASES = {
    "matmul": (matmul(24, 24, 24), 192),
    "matvec": (matvec(64, 64), 96),
    "nbody": (nbody(96, 96), 64),
}


@pytest.mark.parametrize("name", list(CASES), ids=str)
def test_e15_lru_vs_analytic(benchmark, table, name):
    nest, M = CASES[name]
    machine = MachineModel(cache_words=M)
    sol = SESSION.tiling(nest, M, "aggregate")

    def run():
        lru = run_trace_simulation(nest, machine, tile=sol.tile)
        bel = run_trace_simulation(nest, machine, tile=sol.tile, policy="belady")
        naive = run_trace_simulation(nest, machine, tile=None)
        return lru, bel, naive

    lru, bel, naive = benchmark(run)
    ana = simulate_tiled_traffic(nest, sol.tile, machine=machine)
    lb = communication_lower_bound(nest, M)

    t = table(f"e15_{name}", ["quantity", "words"])
    t.add("lower bound", f"{lb.value:.6g}")
    t.add("analytic (model)", ana.total_words)
    t.add("belady (offline opt)", bel.total_words)
    t.add("lru", lru.total_words)
    t.add("lru untiled", naive.total_words)

    # Policy ordering and realisability.
    assert bel.total_words <= lru.total_words
    assert lru.total_words <= 4 * ana.total_words + 4 * M
    assert lru.total_words <= naive.total_words
    # Nothing beats the model lower bound.
    assert bel.total_words >= lb.value * 0.999


def test_e15_direct_mapped_conflicts(benchmark, table):
    """A direct-mapped cache inflates traffic above LRU (model gap demo)."""
    nest, M = CASES["matmul"]
    machine = MachineModel(cache_words=M)
    sol = SESSION.tiling(nest, M, "aggregate")

    def run():
        dm = run_trace_simulation(nest, machine, tile=sol.tile, policy="direct")
        lru = run_trace_simulation(nest, machine, tile=sol.tile, policy="lru")
        return dm, lru

    dm, lru = benchmark(run)
    t = table("e15_direct_mapped", ["policy", "words"])
    t.add("lru", lru.total_words)
    t.add("direct-mapped", dm.total_words)
    assert dm.total_words >= lru.total_words


def test_e15_batched_throughput_json(table, smoke):
    """Reference vs batched engine on a >= 1M-access instance.

    Timed manually (one run each — the reference path costs seconds) and
    recorded as BENCH_trace_sim.json.  The hard assertion is a
    conservative floor; the JSON carries the measured ratio (an order of
    magnitude or two depending on native-kernel availability).  Under
    ``--smoke`` the instance shrinks and the timing floor / JSON
    artefact are skipped (both engines still run and must agree).
    """
    # smoke: 13,824 points; full: 373,248 points x 3 arrays >= 1M accesses
    nest = matmul(24, 24, 24) if smoke else matmul(72, 72, 72)
    M = 512
    machine = MachineModel(cache_words=M)
    sol = SESSION.tiling(nest, M, "aggregate")

    t0 = time.perf_counter()
    ref = run_trace_simulation(nest, machine, tile=sol.tile, engine="reference")
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = run_trace_simulation(nest, machine, tile=sol.tile)
    t_fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    curve = nest_miss_curve(nest, tile=sol.tile)
    t_curve = time.perf_counter() - t0

    accesses = ref.meta["accesses"]
    if not smoke:
        assert accesses >= 1_000_000
    # bit-identical engines
    assert fast.per_array == ref.per_array
    assert fast.meta["misses"] == ref.meta["misses"] == curve.misses_at(machine.cache_lines)
    assert fast.meta["writebacks"] == ref.meta["writebacks"]

    speedup = t_ref / t_fast
    if smoke:
        return
    payload = {
        "experiment": "trace_sim_throughput",
        "instance": nest.describe(),
        "tile_blocks": list(sol.tile.blocks),
        "cache_words": M,
        "accesses": int(accesses),
        "native_kernel": native_available(),
        "before": {
            "engine": "reference",
            "seconds": round(t_ref, 4),
            "ops_per_sec": round(accesses / t_ref),
        },
        "after": {
            "engine": "batched",
            "seconds": round(t_fast, 4),
            "ops_per_sec": round(accesses / t_fast),
        },
        "speedup": round(speedup, 2),
        "miss_curve": {
            "seconds": round(t_curve, 4),
            "ops_per_sec": round(accesses / t_curve),
            "capacities_covered": int(curve.distinct_lines) + 1,
        },
    }
    out = Path(__file__).parent / "results" / "BENCH_trace_sim.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    t = table("e15_throughput", ["engine", "seconds", "ops/sec"])
    t.add("reference (before)", f"{t_ref:.3f}", f"{accesses / t_ref:.3g}")
    t.add("batched (after)", f"{t_fast:.3f}", f"{accesses / t_fast:.3g}")
    t.add("miss-curve (all capacities)", f"{t_curve:.3f}", f"{accesses / t_curve:.3g}")
    t.add("speedup", f"{speedup:.1f}x", "")

    assert speedup >= 5.0, payload


def test_e15_line_size_effect(benchmark, table):
    """Longer cache lines cut misses for unit-stride tilings (spatial reuse
    the word-level theory ignores but implementers care about)."""
    nest, M = CASES["matvec"]
    sol = SESSION.tiling(nest, M, "aggregate")

    def run():
        rows = []
        for lw in (1, 2, 4, 8):
            machine = MachineModel(cache_words=M, line_words=lw)
            rep = run_trace_simulation(nest, machine, tile=sol.tile)
            rows.append((lw, rep.meta["misses"], rep.total_words))
        return rows

    rows = benchmark(run)
    t = table("e15_line_size", ["line words", "misses", "words moved"])
    for lw, misses, words in rows:
        t.add(lw, misses, words)
    assert rows[-1][1] < rows[0][1]
