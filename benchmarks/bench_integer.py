"""E17 (ablation): integer rounding strategies for the LP tile.

DESIGN.md calls out round-and-grow as a design choice; this ablation
quantifies it against (a) plain flooring of the fractional vertex,
(b) multi-seed coordinate descent, and (c) the exhaustive integer
optimum, across cache sizes where rounding actually bites (small M).
Metric: tile volume as a fraction of the fractional bound M^k_hat.
"""

import math

import pytest

from repro.api import Session
from repro.core.bruteforce import best_rectangle
from repro.core.integer import multi_seed_tile
from repro.core.tiling import TileShape
from repro.library.problems import matmul, matvec, nbody, tensor_contraction
from repro.util.rationals import pow_fraction

#: Integer-repair ablation of the simplex vertex: exact escape.
SESSION = Session()

CASES = {
    "matmul": matmul(40, 40, 40),
    "matvec": matvec(60, 60),
    "nbody": nbody(50, 50),
    "contraction": tensor_contraction((12,), (12,), (12,)),
}

SMALL_M = [3, 5, 7, 10, 13, 17, 23, 31]


@pytest.mark.parametrize("name", list(CASES), ids=str)
def test_e17_rounding_ablation(benchmark, table, name):
    nest = CASES[name]

    def ablation():
        rows = []
        for M in SMALL_M:
            sol = SESSION.tiling(nest, M, exact=True)
            floored = TileShape(
                nest=nest,
                blocks=tuple(
                    max(1, min(L, math.floor(f + 1e-12)))
                    for f, L in zip(sol.fractional_blocks, nest.bounds)
                ),
            )
            descent = multi_seed_tile(nest, M)
            exact = best_rectangle(nest, M)
            bound = pow_fraction(M, sol.exponent)
            rows.append((M, floored, sol.tile, descent, exact, bound))
        return rows

    rows = benchmark(ablation)
    t = table(
        f"e17_{name}",
        ["M", "floor", "round&grow", "multi-seed", "exhaustive", "M^k_hat"],
    )
    for M, floored, grown, descent, exact, bound in rows:
        t.add(
            M,
            floored.volume,
            grown.volume,
            descent.volume,
            exact.volume,
            f"{bound:.1f}",
        )
        # Ordering: floor <= round&grow <= multi-seed <= exhaustive <= bound.
        assert floored.volume <= grown.volume
        assert grown.volume <= descent.volume
        assert descent.volume <= exact.volume
        assert exact.volume <= bound + 1e-9


def test_e17_aggregate_gap_summary(benchmark, table):
    """Average fraction of the fractional bound each strategy recovers."""

    def summarise():
        sums = {"floor": 0.0, "grow": 0.0, "descent": 0.0, "exact": 0.0}
        count = 0
        for nest in CASES.values():
            for M in SMALL_M:
                sol = SESSION.tiling(nest, M, exact=True)
                bound = pow_fraction(M, sol.exponent)
                floored = TileShape(
                    nest=nest,
                    blocks=tuple(
                        max(1, min(L, math.floor(f + 1e-12)))
                        for f, L in zip(sol.fractional_blocks, nest.bounds)
                    ),
                )
                sums["floor"] += floored.volume / bound
                sums["grow"] += sol.tile.volume / bound
                sums["descent"] += multi_seed_tile(nest, M).volume / bound
                sums["exact"] += best_rectangle(nest, M).volume / bound
                count += 1
        return {k: v / count for k, v in sums.items()}, count

    means, count = benchmark(summarise)
    t = table("e17_summary", ["strategy", "mean volume / M^k_hat"])
    for key, label in [
        ("floor", "floor only"),
        ("grow", "round-and-grow (default)"),
        ("descent", "multi-seed descent"),
        ("exact", "exhaustive optimum"),
    ]:
        t.add(label, f"{means[key]:.3f}")
    # The default must recover most of the exhaustive optimum's quality.
    assert means["grow"] >= 0.8 * means["exact"]
    assert means["floor"] <= means["grow"]
