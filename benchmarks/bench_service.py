"""E18: the service façade — in-process vs HTTP request throughput.

Measures end-to-end requests/second for the same warm analyze workload
through the service surfaces:

* ``Session.batch()`` — the in-process façade (plan-cache lookup plus
  versioned Result envelope per query);
* ``repro-tile serve`` — the asyncio HTTP endpoint, driven in-process
  over a keep-alive loopback connection, three ways:
  ``/v1/analyze`` per-request with the response cache **off**
  (every request runs the full parse → session → serialize path),
  ``/v1/analyze`` per-request with the response cache **on**
  (the steady-state hot path: verbatim repeats answered on the event
  loop), and ``/v1/batch`` amortised.

All surfaces answer from the same warm plan cache, so the gaps isolate
transport and caching layers.  Results land in
``benchmarks/results/BENCH_service.json`` (and, in any mode, in
``$REPRO_BENCH_DIR`` for the CI regression gate in
``check_regression.py``).
"""

import json
import os
import random
import socket
import threading
import time
from pathlib import Path

from repro.api import AnalyzeRequest, Session
from repro.library.problems import fully_connected, matmul, nbody, syrk
from repro.obs import trace as obs_trace
from repro.serve import make_server

RESULTS = Path(__file__).parent / "results"

_SIZES = [16, 64, 256, 1024, 3000]
_CACHES = [2**12, 2**14, 2**16]

#: Total HTTP requests per timed measurement (smoke repeats its small
#: workload until it gets here, so smoke numbers are stable enough for
#: the regression gate rather than a 16-request timing blip).
_MIN_TIMED_REQUESTS = 400


def _workload(count: int) -> list[AnalyzeRequest]:
    """Structure-shared analyze queries (the steady-state service mix)."""
    rng = random.Random("bench-service")
    makers = [
        lambda s: matmul(s(), s(), s()),
        lambda s: syrk(s(), s()),
        lambda s: fully_connected(s(), s(), s()),
        lambda s: nbody(s(), s()),
    ]
    out = []
    for idx in range(count):
        nest = makers[idx % len(makers)](lambda: rng.choice(_SIZES))
        out.append(AnalyzeRequest(nest=nest, cache_words=rng.choice(_CACHES)))
    return out


class _KeepAliveClient:
    """Minimal pipelining-free HTTP/1.1 client: one connection, NODELAY.

    urllib opens (and tears down) a connection per request, which
    benchmarks the TCP handshake more than the server; production
    clients keep connections alive, so this does too.
    """

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buf = b""

    def post(self, path: str, payload: bytes) -> tuple[int, bytes]:
        head = (
            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        self.sock.sendall(head + payload)
        return self._read_response()

    def _read_response(self) -> tuple[int, bytes]:
        while b"\r\n\r\n" not in self._buf:
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self._buf += chunk
        head, _, rest = self._buf.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        while len(rest) < length:
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            rest += chunk
        body, self._buf = rest[:length], rest[length:]
        return status, body

    def close(self) -> None:
        self.sock.close()


def _serve(session: Session, **kwargs):
    """(server, thread, client) for one bench leg."""
    server = make_server(port=0, session=session, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = _KeepAliveClient("127.0.0.1", server.server_address[1])
    return server, thread, client


def _stop(server, thread, client) -> None:
    client.close()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _write_bench_json(name: str, payload: dict, smoke: bool) -> None:
    """Results for humans (committed) and for the CI gate (env-directed)."""
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if out_dir:
        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / name).write_text(json.dumps(payload, indent=2) + "\n")
    if not smoke:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / name).write_text(json.dumps(payload, indent=2) + "\n")


def test_e18_service_throughput_json(table, smoke):
    n_requests = 16 if smoke else 400
    passes = max(1, _MIN_TIMED_REQUESTS // n_requests)
    requests = _workload(n_requests)
    wire = [json.dumps(r.to_json()).encode() for r in requests]

    session = Session(workers=0)
    session.batch(requests)  # warm every structure once

    # -- in-process façade ---------------------------------------------------
    t0 = time.perf_counter()
    for _ in range(passes):
        results = session.batch(requests)
    t_session = (time.perf_counter() - t0) / passes
    assert all(r.schema_version == 1 for r in results)

    # -- HTTP per-request, full solver path (response cache off) -------------
    server, thread, client = _serve(session, response_cache=0)
    try:
        t0 = time.perf_counter()
        for _ in range(passes):
            for payload in wire:
                status, raw = client.post("/v1/analyze", payload)
                assert status == 200, raw
        t_http_nocache = (time.perf_counter() - t0) / passes
    finally:
        _stop(server, thread, client)

    # -- HTTP per-request, steady state (response cache on) ------------------
    server, thread, client = _serve(session, response_cache=4096)
    try:
        for payload in wire:  # populate the response cache
            client.post("/v1/analyze", payload)
        t0 = time.perf_counter()
        for _ in range(passes):
            for payload in wire:
                status, raw = client.post("/v1/analyze", payload)
                assert status == 200, raw
        t_http = (time.perf_counter() - t0) / passes
        body = json.loads(raw)
        assert body["meta"]["cache_hit"] is True

        # -- observability overhead on the same cached path ------------------
        # Alternate many short tracing-off/on segments and keep the best
        # of each mode: a scheduler hiccup contaminates one tiny segment,
        # not a whole mode's measurement, and alternation cancels drift.
        t_obs_off = t_obs_on = float("inf")
        try:
            for _ in range(max(9, passes)):
                obs_trace.set_enabled(False)
                t0 = time.perf_counter()
                for payload in wire:
                    client.post("/v1/analyze", payload)
                t_obs_off = min(t_obs_off, time.perf_counter() - t0)
                obs_trace.set_enabled(True)
                t0 = time.perf_counter()
                for payload in wire:
                    client.post("/v1/analyze", payload)
                t_obs_on = min(t_obs_on, time.perf_counter() - t0)
        finally:
            obs_trace.set_enabled(True)
        obs_relative_throughput = t_obs_off / t_obs_on

        # -- HTTP batch, amortised -------------------------------------------
        batch_payload = json.dumps(
            {"requests": [r.to_json() for r in requests]}
        ).encode()
        t0 = time.perf_counter()
        status, raw = client.post("/v1/batch", batch_payload)
        t_http_batch = time.perf_counter() - t0
        batch_body = json.loads(raw)
        assert status == 200 and batch_body["count"] == n_requests
    finally:
        _stop(server, thread, client)

    rps_session = n_requests / t_session
    rps_http = n_requests / t_http
    rps_http_nocache = n_requests / t_http_nocache
    rps_http_batch = n_requests / t_http_batch

    t = table("e18_service", ["surface", "req/s", "ms/request"])
    t.add("Session.batch (in-process)", f"{rps_session:,.0f}",
          f"{t_session * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/analyze (no response cache)", f"{rps_http_nocache:,.0f}",
          f"{t_http_nocache * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/analyze (response cache)", f"{rps_http:,.0f}",
          f"{t_http * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/batch (amortised)", f"{rps_http_batch:,.0f}",
          f"{t_http_batch * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/analyze (cache, tracing off)",
          f"{n_requests / t_obs_off:,.0f}",
          f"{t_obs_off * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/analyze (cache, tracing on)",
          f"{n_requests / t_obs_on:,.0f}",
          f"{t_obs_on * 1000 / n_requests:.3f}")

    # Transport and caching must not change answers: spot-check parity.
    assert batch_body["results"][0]["payload"] == results[0].payload

    payload = {
        "experiment": "service_throughput",
        "requests": n_requests,
        "timed_passes": passes,
        "session_batch": {
            "seconds": round(t_session, 4),
            "requests_per_second": round(rps_session, 1),
        },
        "http_analyze": {
            "seconds": round(t_http, 4),
            "requests_per_second": round(rps_http, 1),
        },
        "http_analyze_nocache": {
            "seconds": round(t_http_nocache, 4),
            "requests_per_second": round(rps_http_nocache, 1),
        },
        "http_batch": {
            "seconds": round(t_http_batch, 4),
            "requests_per_second": round(rps_http_batch, 1),
        },
        "http_overhead_ms_per_request": round(
            (t_http_nocache - t_session) * 1000 / n_requests, 4
        ),
        # Cached-path throughput with tracing on, relative to tracing off
        # (>= 0.95 means observability costs under 5% on the hot path).
        "obs_relative_throughput": round(obs_relative_throughput, 4),
        "obs_seconds": {
            "tracing_off": round(t_obs_off, 4),
            "tracing_on": round(t_obs_on, 4),
        },
        "planner_stats": session.stats.as_dict(),
    }
    _write_bench_json("BENCH_service.json", payload, smoke)
    if not smoke:
        assert obs_relative_throughput >= 0.90, payload
        # Sanity floors: a warm in-process façade is kHz-class, the
        # response-cached HTTP path is the fastest HTTP surface (this is
        # the ≥10x-over-the-0.9k-baseline headline), and amortised batch
        # beats per-request HTTP when both pay the solver path.
        assert rps_session >= 500, payload
        assert rps_http >= 5000, payload
        assert t_http_batch <= t_http_nocache, payload


def test_e18_http_parity_with_session(smoke):
    """The HTTP surface returns byte-identical payloads to the façade.

    Checked on both per-request paths — fresh (response-cache miss) and
    response-cache hit — so the byte-splicing fast path is pinned to the
    façade's serialization, not just to itself.
    """
    requests = _workload(4 if smoke else 12)
    session = Session(workers=0)
    direct = session.batch(requests)
    server, thread, client = _serve(session, response_cache=256)
    try:
        for request, expected in zip(requests, direct):
            payload = json.dumps(request.to_json()).encode()
            expected_bytes = json.dumps(expected.to_json()["payload"]).encode()
            for attempt in ("fresh", "response-cache hit"):
                status, raw = client.post("/v1/analyze", payload)
                assert status == 200, (attempt, raw)
                body = json.loads(raw)
                assert body["payload"] == expected.payload, attempt
                assert body["meta"]["cache_hit"] is True
                # Byte-level: the payload substring is spliced verbatim.
                assert expected_bytes in raw, (attempt, raw)
    finally:
        _stop(server, thread, client)
