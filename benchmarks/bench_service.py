"""E18: the service façade — in-process vs HTTP request throughput.

Measures end-to-end requests/second for the same warm analyze workload
through the two service surfaces:

* ``Session.batch()`` — the in-process façade (plan-cache lookup plus
  versioned Result envelope per query);
* ``repro-tile serve`` — the stdlib HTTP endpoint, driven in-process
  over a loopback socket (``/v1/analyze`` per-request and ``/v1/batch``
  amortised).

Both answer from the same warm plan cache, so the gap isolates the
transport: HTTP framing, JSON body parse, threading.  Results land in
``benchmarks/results/BENCH_service.json`` so later scaling PRs (async
workers, sharding) have a baseline to beat.
"""

import json
import random
import threading
import time
import urllib.request
from pathlib import Path

from repro.api import AnalyzeRequest, Session
from repro.library.problems import fully_connected, matmul, nbody, syrk
from repro.serve import make_server

RESULTS = Path(__file__).parent / "results"

_SIZES = [16, 64, 256, 1024, 3000]
_CACHES = [2**12, 2**14, 2**16]


def _workload(count: int) -> list[AnalyzeRequest]:
    """Structure-shared analyze queries (the steady-state service mix)."""
    rng = random.Random("bench-service")
    makers = [
        lambda s: matmul(s(), s(), s()),
        lambda s: syrk(s(), s()),
        lambda s: fully_connected(s(), s(), s()),
        lambda s: nbody(s(), s()),
    ]
    out = []
    for idx in range(count):
        nest = makers[idx % len(makers)](lambda: rng.choice(_SIZES))
        out.append(AnalyzeRequest(nest=nest, cache_words=rng.choice(_CACHES)))
    return out


def _post(url: str, blob: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(blob).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.load(resp)


def test_e18_service_throughput_json(table, smoke):
    n_requests = 16 if smoke else 400
    requests = _workload(n_requests)
    wire = [r.to_json() for r in requests]

    session = Session(workers=0)
    session.batch(requests)  # warm every structure once

    # -- in-process façade ---------------------------------------------------
    t0 = time.perf_counter()
    results = session.batch(requests)
    t_session = time.perf_counter() - t0
    assert all(r.schema_version == 1 for r in results)

    # -- HTTP, same warm session behind the handler --------------------------
    server = make_server(port=0, session=session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        t0 = time.perf_counter()
        for blob in wire:
            body = _post(base + "/v1/analyze", blob)
            assert body["schema_version"] == 1
        t_http = time.perf_counter() - t0

        t0 = time.perf_counter()
        body = _post(base + "/v1/batch", {"requests": wire})
        t_http_batch = time.perf_counter() - t0
        assert body["count"] == n_requests
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    rps_session = n_requests / t_session
    rps_http = n_requests / t_http
    rps_http_batch = n_requests / t_http_batch

    t = table("e18_service", ["surface", "req/s", "ms/request"])
    t.add("Session.batch (in-process)", f"{rps_session:,.0f}",
          f"{t_session * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/analyze (per-request)", f"{rps_http:,.0f}",
          f"{t_http * 1000 / n_requests:.3f}")
    t.add("HTTP /v1/batch (amortised)", f"{rps_http_batch:,.0f}",
          f"{t_http_batch * 1000 / n_requests:.3f}")

    # Transport overhead must not change answers: spot-check parity.
    assert body["results"][0]["payload"] == results[0].payload

    if not smoke:
        payload = {
            "experiment": "service_throughput",
            "requests": n_requests,
            "session_batch": {
                "seconds": round(t_session, 4),
                "requests_per_second": round(rps_session, 1),
            },
            "http_analyze": {
                "seconds": round(t_http, 4),
                "requests_per_second": round(rps_http, 1),
            },
            "http_batch": {
                "seconds": round(t_http_batch, 4),
                "requests_per_second": round(rps_http_batch, 1),
            },
            "http_overhead_ms_per_request": round(
                (t_http - t_session) * 1000 / n_requests, 4
            ),
            "planner_stats": session.stats.as_dict(),
        }
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "BENCH_service.json").write_text(json.dumps(payload, indent=2) + "\n")
        # Sanity floors: a warm in-process façade is kHz-class, and the
        # amortised HTTP batch path beats per-request HTTP.
        assert rps_session >= 500, payload
        assert t_http_batch <= t_http, payload


def test_e18_http_parity_with_session(smoke):
    """The HTTP surface returns byte-identical payloads to the façade."""
    requests = _workload(4 if smoke else 12)
    session = Session(workers=0)
    direct = session.batch(requests)
    server = make_server(port=0, session=session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        for request, expected in zip(requests, direct):
            body = _post(base + "/v1/analyze", request.to_json())
            assert body["payload"] == expected.payload
            assert body["meta"]["cache_hit"] is True
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
