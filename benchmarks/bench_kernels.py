"""E12: numpy kernel timing — blocked (LP tile) vs baseline wall-time.

The repro band notes kernel timing needs a numpy/C backend; per-tile
compute here is BLAS/einsum.  Absolute times are numpy-bound and not
comparable to the paper's machines; what must reproduce is the *shape*:
LP-blocked kernels track the BLAS baseline within a small factor (BLAS
blocks internally!) and beat pathological blockings, and the general
tiled executor's overhead stays bounded.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.kernels.einsum_exec import execute_tiled, execute_untiled
from repro.kernels.naive import allocate_arrays
from repro.kernels.tiled import (
    blocked_matmul,
    blocked_nbody,
    blocked_pointwise_conv,
    naive_matmul,
    naive_nbody,
    naive_pointwise_conv,
)
from repro.library.problems import matmul, nbody, pointwise_conv

#: Tilings served by the façade; one plan cache for the module.
SESSION = Session()

# A cache budget matching a typical 256 KiB L2 in float64 words.
M = 2**15


@pytest.fixture(scope="module")
def matmul_data():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((768, 768))
    B = rng.standard_normal((768, 768))
    return A, B


def test_e12_matmul_lp_blocked(benchmark, matmul_data, table):
    A, B = matmul_data
    nest = matmul(*A.shape, B.shape[1])
    sol = SESSION.tiling(nest, M, "aggregate")
    b1, b2, b3 = sol.tile.blocks
    C = benchmark(lambda: blocked_matmul(A, B, b1, b2, b3))
    np.testing.assert_allclose(C, A @ B, rtol=1e-8)
    t = table("e12_matmul_blocks", ["kernel", "blocks"])
    t.add("lp-blocked", sol.tile.blocks)


def test_e12_matmul_blas_baseline(benchmark, matmul_data):
    A, B = matmul_data
    benchmark(lambda: naive_matmul(A, B))


def test_e12_matmul_pathological_strips(benchmark, matmul_data):
    # Deliberately bad blocking: full-width strips thrash the cache.
    A, B = matmul_data
    benchmark(lambda: blocked_matmul(A, B, 1, 768, 768))


def test_e12_nbody_blocked(benchmark):
    rng = np.random.default_rng(1)
    P = rng.standard_normal(2**13)
    Q = rng.standard_normal(2**13)
    nest = nbody(len(P), len(Q))
    sol = SESSION.tiling(nest, M, "aggregate")
    b1, b2 = sol.tile.blocks
    F = benchmark(lambda: blocked_nbody(P, Q, b1, b2))
    np.testing.assert_allclose(F, naive_nbody(P, Q), rtol=1e-8)


def test_e12_nbody_naive(benchmark):
    rng = np.random.default_rng(1)
    P = rng.standard_normal(2**13)
    Q = rng.standard_normal(2**13)
    benchmark(lambda: naive_nbody(P, Q))


def test_e12_conv_blocked(benchmark):
    rng = np.random.default_rng(2)
    image = rng.standard_normal((28, 28, 64, 8))
    filt = rng.standard_normal((128, 64))
    nest = pointwise_conv(8, 64, 128, 28, 28)
    sol = SESSION.tiling(nest, M, "aggregate")
    bc = sol.tile.blocks[1]
    bk = sol.tile.blocks[2]
    out = benchmark(lambda: blocked_pointwise_conv(image, filt, bc=bc, bk=bk))
    np.testing.assert_allclose(out, naive_pointwise_conv(image, filt), rtol=1e-8)


def test_e12_conv_naive(benchmark):
    rng = np.random.default_rng(2)
    image = rng.standard_normal((28, 28, 64, 8))
    filt = rng.standard_normal((128, 64))
    benchmark(lambda: naive_pointwise_conv(image, filt))


def test_e12_general_executor_overhead(benchmark, table):
    """The generic einsum-tiled executor vs one-shot einsum on matmul."""
    nest = matmul(384, 384, 384)
    arrays = allocate_arrays(nest, rng=np.random.default_rng(3))
    sol = SESSION.tiling(nest, M, "aggregate")

    def run_tiled():
        work = {k: (v.copy() if k == "C" else v) for k, v in arrays.items()}
        execute_tiled(nest, work, sol.tile)
        return work["C"]

    C_tiled = benchmark(run_tiled)
    work = {k: (v.copy() if k == "C" else v) for k, v in arrays.items()}
    execute_untiled(nest, work)
    np.testing.assert_allclose(C_tiled, work["C"], rtol=1e-8)
    t = table("e12_executor", ["tile", "num tiles"])
    t.add(sol.tile.blocks, sol.tile.num_tiles)
