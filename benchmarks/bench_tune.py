"""E18: the autotuner — tuned tiles close the integer-rounding gap.

The claim of ``repro.tune``: at small or skewed bounds the
analytically-rounded Theorem-3 tile can sit well above the
communication lower bound, and a small simulator-in-the-loop integer
search recovers a measurably better plan — *certified*, because every
measured traffic is compared against the Theorem bound (certificate
ratio ``measured / bound >= 1`` always, equality = provably optimal).

The bench tunes a catalog of small/skewed instances (matmul, pointwise
convolution, n-body, tensor contractions, MTTKRP, attention) through
``Session.tune`` — the same façade path the CLI and the HTTP service
use — and emits ``benchmarks/results/BENCH_tune.json`` with seed vs
tuned certificate ratios per problem.  Assertions pin the subsystem's
two contractual facts:

* tuned traffic (hence ratio) is never worse than the seed's, on every
  problem;
* tuning finds a *strict* improvement on at least three of the
  small/skewed-bound cases (the motivating regime).
"""

import json
import time
from pathlib import Path

from repro.api import Session, TuneRequest
from repro.library.problems import (
    attention_scores,
    matmul,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
)

RESULTS = Path(__file__).parent / "results"

#: (label, nest, cache_words) — the small/skewed-bound regime on purpose:
#: bounds a few times the tile side, odd sizes, thin dimensions.
CASES = [
    ("matmul_cube_small", matmul(24, 24, 24), 128),
    ("matmul_skewed_thin", matmul(40, 40, 6), 96),
    ("matmul_tall", matmul(64, 8, 8), 64),
    ("nbody_small", nbody(50, 50), 32),
    ("nbody_skewed", nbody(200, 8), 16),
    ("conv_pointwise_small", pointwise_conv(4, 8, 8, 6, 6), 256),
    ("contraction_small", tensor_contraction((8, 8), (8,), (8, 8)), 256),
    ("mttkrp_small", mttkrp(12, 12, 12, 4), 128),
    ("attention_tiny_head", attention_scores(1, 2, 16, 16, 8), 64),
]


def test_e18_tuned_vs_seed_certificate_ratios(table, smoke):
    cases = CASES[:3] if smoke else CASES
    max_evaluations = 12 if smoke else 64
    session = Session(workers=0)

    rows = []
    t = table(
        "e18_tune",
        ["case", "M", "seed tile", "tuned tile", "seed ratio", "tuned ratio", "improvement"],
    )
    t0 = time.perf_counter()
    for label, nest, cache_words in cases:
        result = session.tune(
            TuneRequest(
                nest=nest,
                cache_words=cache_words,
                strategy="exhaustive",
                max_evaluations=max_evaluations,
            )
        )
        report = result.detail
        # Contract 1: tuning never loses to the analytic rounding.
        assert report.tuned_traffic_words <= report.seed_traffic_words, label
        # Contract 2: the certificate is sound (bound holds for any plan).
        assert report.tuned_ratio >= 1.0, label
        t.add(
            label,
            cache_words,
            "x".join(map(str, report.seed_blocks)),
            "x".join(map(str, report.tuned_blocks)),
            f"{report.seed_ratio:.3f}",
            f"{report.tuned_ratio:.3f}",
            f"{report.improvement:.3f}x",
        )
        rows.append(
            {
                "case": label,
                "problem": nest.name,
                "bounds": list(nest.bounds),
                "cache_words": cache_words,
                "strategy": report.strategy,
                "evaluations": report.evaluations_used,
                "seed_tile": list(report.seed_blocks),
                "tuned_tile": list(report.tuned_blocks),
                "seed_traffic_words": report.seed_traffic_words,
                "tuned_traffic_words": report.tuned_traffic_words,
                "lower_bound_words": report.lower_bound_words,
                "seed_certificate_ratio": round(report.seed_ratio, 4),
                "tuned_certificate_ratio": round(report.tuned_ratio, 4),
                "improvement": round(report.improvement, 4),
            }
        )
    elapsed = time.perf_counter() - t0

    strict = [r for r in rows if r["tuned_traffic_words"] < r["seed_traffic_words"]]
    t.add("strict improvements", "", "", "", "", "", f"{len(strict)}/{len(rows)}")

    if not smoke:
        payload = {
            "experiment": "tune_certificate_ratio",
            "what": "tuned vs analytically-rounded tile, measured LRU traffic "
            "over the Theorem lower bound (certificate ratio)",
            "strategy": "exhaustive",
            "max_evaluations": max_evaluations,
            "cases": rows,
            "strict_improvements": len(strict),
            "mean_seed_ratio": round(
                sum(r["seed_certificate_ratio"] for r in rows) / len(rows), 4
            ),
            "mean_tuned_ratio": round(
                sum(r["tuned_certificate_ratio"] for r in rows) / len(rows), 4
            ),
            "seconds": round(elapsed, 3),
            "planner_stats": session.stats.as_dict(),
        }
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "BENCH_tune.json").write_text(json.dumps(payload, indent=2) + "\n")
        # The motivating regime must show real wins, not just parity.
        assert len(strict) >= 3, payload


def test_e18_strategies_share_the_invariants(table, smoke):
    """Coordinate descent and random restarts obey the same contracts."""
    nest, cache_words = matmul(24, 24, 6), 96
    budget = 10 if smoke else 32
    session = Session(workers=0)
    t = table("e18_strategies", ["strategy", "evaluations", "tuned ratio"])
    for strategy in ("exhaustive", "coordinate", "random"):
        report = session.tune(
            TuneRequest(
                nest=nest,
                cache_words=cache_words,
                strategy=strategy,
                max_evaluations=budget,
            )
        ).detail
        assert report.tuned_traffic_words <= report.seed_traffic_words, strategy
        assert report.tuned_ratio >= 1.0, strategy
        assert report.evaluations_used <= budget, strategy
        t.add(strategy, report.evaluations_used, f"{report.tuned_ratio:.3f}")
