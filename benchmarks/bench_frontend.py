"""E19: program-level ingestion throughput — parse, split, plan, warm.

Measures end-to-end bands/second through ``repro.frontend``: text →
``Program`` → band split → per-band plans out of one shared planner.
Three numbers matter:

* **cold** bands/s — fresh ``Session`` per pass, every canonical
  structure pays its LP solve;
* **warm** bands/s — one session across passes, every band answered
  from the plan cache (the steady-state serving mix);
* **cross-band hit rate** — within a *single cold* program, the share
  of band queries answered by an earlier band's structure solve (the
  frontend's intrinsic reuse, independent of any serving warmth).

Results land in ``benchmarks/results/BENCH_frontend.json`` (and, in
any mode, in ``$REPRO_BENCH_DIR`` for the CI regression gate in
``check_regression.py``).
"""

import json
import os
import time
from pathlib import Path

from repro.api import ProgramRequest, Session

RESULTS = Path(__file__).parent / "results"

#: A serving mix with deliberate structural overlap: matmul-shaped
#: bands recur within and across programs, stencil bands recur across
#: sizes, so both reuse layers (cross-band and cross-request) show up.
_PROGRAMS = [
    {
        "name": "share",
        "bounds": {"i": 24, "j": 24, "k": 24},
        "statements": [
            "C[i,j] += A[i,k] * B[k,j]",
            "V[i] = C[i,j] + U[j]",
            "D[i,j] += C[i,k] * E[k,j]",
        ],
    },
    {
        "name": "pipeline",
        "bounds": {"i": 32, "j": 32, "k": 32},
        "statements": [
            "S[i,j] = A[i,j] + B[i,j]",
            "T[i,j] = S[i,j] * A[i,j]",
            "C[i,k] += T[i,j] * W[j,k]",
            "D[i,k] += C[i,j] * W2[j,k]",
        ],
    },
    {
        "name": "jacobi",
        "bounds": {"t": 8, "i": 64},
        "statements": ["A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] + F[i]"],
    },
    {
        "name": "heat",
        "bounds": {"t": 4, "i": 16, "j": 16, "k": 16},
        "statements": [
            "A[t,i,j,k] = A[t-1,i-1,j,k] + A[t-1,i+1,j,k] + A[t-1,i,j-1,k]"
            " + A[t-1,i,j+1,k] + A[t-1,i,j,k-1] + A[t-1,i,j,k+1] + F[i,j,k]"
        ],
    },
]

_CACHES = [256, 1024, 4096]


def _write_bench_json(name: str, payload: dict, smoke: bool) -> None:
    """Results for humans (committed) and for the CI gate (env-directed)."""
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if out_dir:
        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / name).write_text(json.dumps(payload, indent=2) + "\n")
    if not smoke:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / name).write_text(json.dumps(payload, indent=2) + "\n")


def _requests() -> list[dict]:
    return [
        {"program": program, "cache_words": cache}
        for cache in _CACHES
        for program in _PROGRAMS
    ]


def _run_pass(session: Session, blobs: list[dict]) -> int:
    bands = 0
    for blob in blobs:
        result = session.program(ProgramRequest.from_json(blob))
        assert result.ok, result.payload
        bands += result.payload["num_bands"]
    return bands


def test_e19_frontend_throughput(table, smoke):
    blobs = _requests()
    passes = 1 if smoke else 5

    # Cold: a fresh session per pass — every structure pays its solve.
    t_cold, cold_bands = float("inf"), 0
    for _ in range(max(passes, 1)):
        session = Session(workers=0)
        start = time.perf_counter()
        cold_bands = _run_pass(session, blobs)
        t_cold = min(t_cold, time.perf_counter() - start)

    # Warm: one session, repeat the mix — the plan cache answers.
    session = Session(workers=0)
    _run_pass(session, blobs)  # warm it
    t_warm, warm_bands = float("inf"), 0
    for _ in range(max(passes, 1)):
        start = time.perf_counter()
        warm_bands = _run_pass(session, blobs)
        t_warm = min(t_warm, time.perf_counter() - start)

    # Cross-band reuse inside one cold program (pure function of the
    # request; read off the deterministic payload, not live stats).
    share = Session(workers=0).program(
        ProgramRequest.from_json({"program": _PROGRAMS[0], "cache_words": 256})
    )
    sharing = share.payload["structure_sharing"]
    hit_rate = sharing["cross_band_structure_hits"] / share.payload["num_bands"]

    rps_cold = cold_bands / t_cold
    rps_warm = warm_bands / t_warm
    payload = {
        "experiment": "frontend_throughput",
        "requests": len(blobs),
        "bands_per_pass": warm_bands,
        "timed_passes": passes,
        "cold": {"seconds": round(t_cold, 4), "bands_per_second": round(rps_cold, 1)},
        "warm": {"seconds": round(t_warm, 4), "bands_per_second": round(rps_warm, 1)},
        "warm_over_cold": round(rps_warm / rps_cold, 2),
        "cross_band_hit_rate": round(hit_rate, 4),
        "planner_stats": session.stats.as_dict(),
    }
    _write_bench_json("BENCH_frontend.json", payload, smoke)

    t = table("e19_frontend", ["leg", "seconds", "bands/s"])
    t.add("cold", payload["cold"]["seconds"], payload["cold"]["bands_per_second"])
    t.add("warm", payload["warm"]["seconds"], payload["warm"]["bands_per_second"])
    t.save()

    assert cold_bands == warm_bands
    assert hit_rate > 0  # the share program reuses its matmul structure
    if not smoke:
        # Warm serving must beat cold re-solving; the frontend layer
        # (parse + split) must not swamp the cached plan path.
        assert rps_warm >= rps_cold, payload
        assert rps_warm >= 200, payload


def test_e19_einsum_twin_parity(smoke):
    """The einsum spelling pays no structural penalty: it lands on the
    same canonical structure (and plan) as the library twin."""
    session = Session(workers=0)
    einsum = session.program(
        ProgramRequest.from_json(
            {"einsum": "ik,kj->ij", "sizes": {"i": 64, "k": 64, "j": 64},
             "cache_words": 1024}
        )
    )
    (band,) = einsum.payload["bands"]
    from repro.library.problems import matmul

    library = session.analyze(matmul(64, 64, 64), cache_words=1024)
    assert band["plan"]["tile"] == library.payload["tile"]
    assert band["plan"]["canonical_key"] == library.payload["canonical_key"]
