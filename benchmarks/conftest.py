"""Shared helpers for the experiment-regeneration benchmarks.

Every benchmark regenerates one §6 series / theorem claim (experiment
ids E1-E15, see DESIGN.md).  Besides pytest-benchmark timing, each test
writes the regenerated table to ``benchmarks/results/<name>.txt`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be audited from
artefacts, and prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="import/API smoke mode: disable pytest-benchmark timing loops and "
        "let heavy benches shrink their instances and skip timing assertions",
    )


def pytest_configure(config):
    if config.getoption("--smoke"):
        # One plain run per test, no calibration loops: CI catches
        # import/API rot in seconds without timing noise.
        config.option.benchmark_disable = True


@pytest.fixture
def smoke(request) -> bool:
    """Whether --smoke was given; heavy benches consult this to shrink
    instances and to skip speedup floors (timing is meaningless under
    smoke) while still exercising every code path."""
    return request.config.getoption("--smoke")


class Table:
    """Tiny fixed-width table writer for experiment outputs."""

    def __init__(self, name: str, columns: list[str]):
        self.name = name
        self.columns = columns
        self.rows: list[list[str]] = []

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([str(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def fmt(row):
            return "  ".join(v.ljust(w) for v, w in zip(row, widths))
        lines = [f"== {self.name} ==", fmt(self.columns), fmt(["-" * w for w in widths])]
        lines += [fmt(r) for r in self.rows]
        return "\n".join(lines)

    def save(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text(self.render() + "\n")
        return path


@pytest.fixture
def table():
    """Factory fixture: ``tbl = table("e1_matmul", ["L3", "k_hat", ...])``.

    Saves and prints every created table at teardown.
    """
    created: list[Table] = []

    def factory(name: str, columns: list[str]) -> Table:
        t = Table(name, columns)
        created.append(t)
        return t

    yield factory
    for t in created:
        t.save()
        print()
        print(t.render())
