"""E14: §7 multiprocessor extension — rectangular grids win.

Reproduces the claim that the best way to split a projective nest over
P processors is a rectangular (grid) partition: sweeps P for matmul and
n-body, comparing the optimal grid's per-processor traffic against 1-D
splits and the distributed lower bound.
"""

from math import prod

import pytest

from repro.library.problems import matmul, nbody
from repro.parallel.distributed import (
    distributed_lower_bound,
    one_dimensional_split,
    simulate_grid,
)
from repro.parallel.grid import lp_grid, optimal_grid

M_LOCAL = 2**12


def test_e14_matmul_p_sweep(benchmark, table):
    nest = matmul(512, 512, 512)

    def sweep():
        rows = []
        for P in (1, 4, 8, 16, 64, 256):
            opt = simulate_grid(nest, P, M_LOCAL)
            bad = one_dimensional_split(nest, P, M_LOCAL)
            rows.append((P, opt, bad))
        return rows

    rows = benchmark(sweep)
    t = table(
        "e14_matmul_sweep",
        ["P", "grid", "words/proc", "1D words/proc", "bound", "grid/bound"],
    )
    for P, opt, bad in rows:
        t.add(
            P,
            "x".join(map(str, opt.grid)),
            opt.words_per_processor,
            bad.words_per_processor,
            f"{opt.lower_bound_words:.5g}",
            f"{opt.ratio:.2f}",
        )
        assert opt.words_per_processor <= bad.words_per_processor
        if P >= 16:
            # The grid advantage is strict and material at scale.
            assert bad.words_per_processor >= 1.5 * opt.words_per_processor


def test_e14_grid_matches_lp_relaxation(benchmark, table):
    """Exhaustive optimal grid tracks the log-space LP prediction."""
    nest = matmul(2**10, 2**10, 2**10)

    def both():
        rows = []
        for P in (8, 64, 512):
            exact = optimal_grid(nest, P)
            mu, t_val = lp_grid(nest, P)
            rows.append((P, exact, mu, t_val))
        return rows

    rows = benchmark(both)
    t = table("e14_lp_vs_exhaustive", ["P", "exhaustive grid", "LP mu (log2 p_i)"])
    for P, exact, mu, _ in rows:
        t.add(P, "x".join(map(str, exact.grid)), tuple(str(m) for m in mu))
        # Rounding the LP point must reproduce the exhaustive grid for
        # cube-shaped matmul (all mu integral here).
        lp_rounded = tuple(2 ** int(m) for m in mu)
        assert prod(lp_rounded) == P
        assert sorted(lp_rounded) == sorted(exact.grid)


def test_e14_nbody_sweep(benchmark, table):
    nest = nbody(2**13, 2**13)

    def sweep():
        return [(P, simulate_grid(nest, P, M_LOCAL)) for P in (4, 16, 64)]

    rows = benchmark(sweep)
    t = table("e14_nbody_sweep", ["P", "grid", "words/proc", "bound"])
    for P, rep in rows:
        t.add(P, "x".join(map(str, rep.grid)), rep.words_per_processor,
              f"{rep.lower_bound_words:.5g}")
        assert prod(rep.grid) == P


def test_e14_bound_scaling(benchmark, table):
    """The distributed bound scales as 1/P under balanced work."""
    nest = matmul(2**10, 2**10, 2**10)

    def bounds():
        return [(P, distributed_lower_bound(nest, P, M_LOCAL)) for P in (1, 4, 16, 64)]

    rows = benchmark(bounds)
    t = table("e14_bound_scaling", ["P", "bound words/proc"])
    for P, b in rows:
        t.add(P, f"{b:.6g}")
    assert rows[0][1] == pytest.approx(4 * rows[1][1])
    assert rows[1][1] == pytest.approx(4 * rows[2][1])
