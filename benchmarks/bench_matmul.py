"""E1-E5: the §6.1 matmul/matvec walk-through, regenerated end to end.

Each test reproduces one artefact of §6.1 exactly (rational golden
values) and benchmarks the pipeline that computes it.
"""

from fractions import Fraction as F

import pytest

from repro.api import Session
from repro.core.alpha_family import optimal_tile_family
from repro.core.bounds import (
    communication_lower_bound,
    subset_exponent_literal,
)
from repro.core.closed_forms import matmul_comm_lower_bound
from repro.core.hbl import solve_hbl
from repro.core.mplp import parametric_tile_exponent
from repro.library.problems import matmul

#: These are solver benchmarks: the façade's exact escape bypasses the
#: plan cache so the timings keep measuring the rational simplex.
SESSION = Session()

M = 2**16


def test_e1_large_bound_lp(benchmark, table):
    """E1: HBL LP optimum 3/2, s = (1/2,1/2,1/2), sqrt(M)-cube tile."""
    nest = matmul(2**12, 2**12, 2**12)
    sol = benchmark(lambda: solve_hbl(nest))
    assert sol.k == F(3, 2)
    assert sol.s == (F(1, 2), F(1, 2), F(1, 2))
    tiling = SESSION.tiling(nest, M, exact=True)
    assert tiling.tile.blocks == (256, 256, 256)

    t = table("e1_matmul_large", ["quantity", "paper", "measured"])
    t.add("k_HBL", "3/2", sol.k)
    t.add("s", "(1/2,1/2,1/2)", sol.s)
    t.add("tile", "sqrt(M)^3 = 256^3", tiling.tile.blocks)
    t.add("comm bound", "L^3/sqrt(M)", f"{communication_lower_bound(nest, M).hbl_words:.4g}")


def test_e2_small_l3_lower_bound(benchmark, table):
    """E2: row-deleted LP gives s_hat = (0,1,0); bound max(M, M L3) -> L1 L2."""
    nest = matmul(2**12, 2**12, 2**4)

    def pipeline():
        lit, sliced = subset_exponent_literal(nest, M, [2])
        lb = communication_lower_bound(nest, M)
        return lit, sliced, lb

    lit, sliced, lb = benchmark(pipeline)
    assert sliced.s == (0, 1, 0)  # the paper's s_hat
    assert lit == 1 + F(4, 16)  # max(1, 1 + beta3)
    assert lb.hbl_words == float(2**24)  # L1 * L2

    t = table("e2_matmul_small_l3", ["quantity", "paper", "measured"])
    t.add("s_hat (Q={x3})", "(0,1,0)", sliced.s)
    t.add("tile exponent", "1 + beta3", lit)
    t.add("comm bound", "L1*L2 = 2^24", int(lb.hbl_words))


@pytest.mark.parametrize(
    "L3_exp,expected_k",
    [
        (16, F(3, 2)),
        (10, F(3, 2)),
        (8, F(3, 2)),
        (6, F(11, 8)),
        (4, F(5, 4)),
        (1, F(17, 16)),
        (0, F(1)),
    ],
)
def test_e3_tiling_regimes(benchmark, table, L3_exp, expected_k):
    """E3: LP (6.3) case split at beta3 = 1/2: k = min(3/2, 1 + beta3)."""
    nest = matmul(2**12, 2**12, 2**L3_exp)
    sol = benchmark(lambda: SESSION.tiling(nest, M, exact=True))
    assert sol.exponent == expected_k

    t = table(f"e3_tiling_l3_2pow{L3_exp}", ["L3", "beta3", "paper k", "measured k", "tile"])
    beta3 = F(L3_exp, 16)
    paper_k = min(F(3, 2), 1 + beta3)
    t.add(2**L3_exp, beta3, paper_k, sol.exponent, sol.tile.blocks)
    assert sol.exponent == paper_k


def test_e4_alpha_family(benchmark, table):
    """E4: the alpha-parameterised family of optimal tiles (beta3 <= 1/2)."""
    nest = matmul(2**16, 2**16, 2**4)  # beta1 = beta2 = 1 -> paper's regime

    fam = benchmark(lambda: optimal_tile_family(nest, M))
    assert fam.exponent == F(5, 4)
    b3 = F(1, 4)
    t = table("e4_alpha_family", ["alpha", "lambda(alpha)", "in optimal face"])
    for alpha in (F(0), F(1, 4), F(1, 2), F(3, 4), F(1)):
        lam = (
            alpha / 2 + (1 - alpha) * (1 - b3),
            alpha / 2 + (1 - alpha) * b3,
            b3,
        )
        ok = fam.contains(lam)
        t.add(alpha, lam, ok)
        assert ok, alpha


def test_e5_closed_form_sweep(benchmark, table):
    """E5: max(L1L2L3/sqrt M, L1L2, L2L3, L1L3 [, M]) == general machinery."""
    sweeps = [
        (2**12, 2**12, 2**12),
        (2**12, 2**12, 2**8),
        (2**12, 2**12, 2**4),
        (2**12, 2**12, 1),
        (2**12, 2**6, 2**3),
        (2**6, 2**6, 2**6),
        (2**4, 2**4, 2**4),
    ]

    def sweep():
        return [
            (dims, communication_lower_bound(matmul(*dims), M).hbl_words)
            for dims in sweeps
        ]

    results = benchmark(sweep)
    t = table("e5_matmul_closed_form", ["L1", "L2", "L3", "closed form", "general", "match"])
    for dims, general in results:
        closed = matmul_comm_lower_bound(*dims, M)
        match = abs(general - closed) <= 1e-9 * closed
        t.add(*dims, f"{closed:.6g}", f"{general:.6g}", match)
        assert match, dims


def test_e5_piecewise_closed_form(benchmark, table):
    """E5b: the exact §6.1 piece list from the multiparametric machinery."""
    nest = matmul(4, 4, 4)
    pvf = benchmark(lambda: parametric_tile_exponent(nest))
    pieces = {(p.constant, p.coeffs) for p in pvf.pieces}
    expected = {
        (F(3, 2), (F(0), F(0), F(0))),
        (F(1), (F(1), F(0), F(0))),
        (F(1), (F(0), F(1), F(0))),
        (F(1), (F(0), F(0), F(1))),
        (F(0), (F(1), F(1), F(1))),
    }
    assert pieces == expected
    t = table("e5_matmul_pieces", ["piece (tile exponent)", "communication term"])
    names = ["b1", "b2", "b3"]
    for p, c in zip(pvf.pieces, pvf.communication_pieces()):
        t.add(p.render(names), c.render(names))
