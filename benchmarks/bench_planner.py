"""E17: the plan cache — structure sharing turns solves into lookups.

The service claim of the plan subsystem: a warm cache answers
structurally-shared queries (same projection pattern, arbitrary bounds
and cache sizes) an order of magnitude faster than per-query LP solves,
*exactly* (every warm answer is certified by the strong-duality guard).

This bench builds a compiler-shaped workload — >= 120 queries across a
handful of canonical structures, mixed bounds and cache sizes — and
measures:

* cold: per-query ``solve_tiling`` (what the pre-plan code paths did),
* cold+bound: ``solve_tiling`` + ``communication_lower_bound`` (the
  true per-query cost of what a plan contains),
* warm engine: ``repro.plan.plan_batch`` against the pre-warmed
  planner (the raw cache lookup path),
* warm service: ``repro.api.Session.batch`` — the full façade path,
  versioned Result envelope construction included,

and emits ``benchmarks/results/BENCH_planner.json`` with the measured
ratios plus cache-effectiveness counters and the persistence (solve
vs load) comparison, so future PRs can track the service's trajectory.
"""

import json
import os
import random
import time
from fractions import Fraction
from pathlib import Path

from repro.api import Session

# The cold baselines measure the raw per-query solvers the façade
# replaced; imported under explicit names to mark them as baselines.
from repro.core.bounds import communication_lower_bound as cold_lower_bound
from repro.core.tiling import solve_tiling as cold_solve
from repro.library.problems import (
    fully_connected,
    matmul,
    mttkrp,
    nbody,
    pointwise_conv,
    syrk,
)
from repro.plan import Planner, PlanRequest, plan_batch

RESULTS = Path(__file__).parent / "results"

_POW2 = [16, 64, 256, 1024, 4096]
_ODD = [12, 100, 500, 3000]


def _workload(rng: random.Random, count: int) -> list[PlanRequest]:
    """A compiler-batch-shaped query mix over five canonical structures."""

    def size() -> int:
        return rng.choice(_POW2 if rng.random() < 0.7 else _ODD)

    makers = [
        lambda: matmul(size(), size(), size()),
        lambda: syrk(size(), size()),
        lambda: fully_connected(size(), size(), size()),
        lambda: mttkrp(size(), size(), size(), rng.choice([8, 16, 32])),
        lambda: pointwise_conv(rng.choice([4, 8]), size(), size(), 28, 28),
        lambda: nbody(size(), size()),
    ]
    out = []
    for idx in range(count):
        nest = makers[idx % len(makers)]()
        out.append(PlanRequest(nest=nest, cache_words=rng.choice([2**12, 2**14, 2**16])))
    return out


def test_e17_warm_cache_speedup_json(table, smoke):
    rng = random.Random("bench-planner")
    n_queries = 12 if smoke else 120
    requests = _workload(rng, n_queries)

    session = Session(workers=0)
    session.batch(requests)  # warm the cache
    warm_stats_before = dict(session.stats.as_dict())

    # Smoke repeats the tiny warm workload so the CI regression gate
    # compares a stable number, not a 12-query timing blip.
    passes = 10 if smoke else 1

    t0 = time.perf_counter()
    for _ in range(passes):
        results = session.batch(requests)
    t_warm = (time.perf_counter() - t0) / passes

    t0 = time.perf_counter()
    for _ in range(passes):
        plan_batch(requests, planner=session.planner, max_workers=0)
    t_warm_engine = (time.perf_counter() - t0) / passes

    t0 = time.perf_counter()
    cold = [cold_solve(r.nest, r.cache_words, budget=r.budget) for r in requests]
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    for r in requests:
        cold_solve(r.nest, r.cache_words, budget=r.budget)
        cold_lower_bound(r.nest, r.cache_words)
    t_cold_bound = time.perf_counter() - t0

    # Exactness before speed: every warm plan matches the cold solve.
    for result, sol in zip(results, cold):
        plan = result.detail
        assert result.schema_version == 1
        assert plan.exponent == sol.exponent
        assert plan.tile.is_feasible(plan.cache_words, plan.budget)
        assert sum(plan.lambdas, Fraction(0)) == plan.exponent

    stats = session.stats.as_dict()
    structures = len(session.planner.cached_keys())
    speedup = t_cold / t_warm
    speedup_with_bound = t_cold_bound / t_warm
    speedup_engine = t_cold / t_warm_engine

    t = table("e17_planner", ["quantity", "value"])
    t.add("queries", n_queries)
    t.add("distinct structures", structures)
    t.add("cold solve_tiling", f"{t_cold * 1000 / n_queries:.3f} ms/query")
    t.add("cold + lower bound", f"{t_cold_bound * 1000 / n_queries:.3f} ms/query")
    t.add("warm engine (plan_batch)", f"{t_warm_engine * 1000 / n_queries:.3f} ms/query")
    t.add("warm service (Session.batch)", f"{t_warm * 1000 / n_queries:.3f} ms/query")
    t.add("engine speedup vs solve_tiling", f"{speedup_engine:.1f}x")
    t.add("service speedup vs solve_tiling", f"{speedup:.1f}x")
    t.add("service speedup vs solve+bound", f"{speedup_with_bound:.1f}x")

    payload = {
        "experiment": "planner_warm_cache",
        "queries": n_queries,
        "distinct_structures": structures,
        "cold": {
            "what": "per-query solve_tiling",
            "seconds": round(t_cold, 4),
            "ms_per_query": round(t_cold * 1000 / n_queries, 4),
        },
        "cold_with_bound": {
            "what": "per-query solve_tiling + communication_lower_bound",
            "seconds": round(t_cold_bound, 4),
            "ms_per_query": round(t_cold_bound * 1000 / n_queries, 4),
        },
        "warm_engine": {
            "what": "plan_batch on the warm planner (tile + exponent + bound)",
            "seconds": round(t_warm_engine, 4),
            "ms_per_query": round(t_warm_engine * 1000 / n_queries, 4),
        },
        "warm": {
            "what": "Session.batch on a warm session (engine + versioned envelope)",
            "seconds": round(t_warm, 4),
            "ms_per_query": round(t_warm * 1000 / n_queries, 4),
        },
        "speedup_engine_vs_solve_tiling": round(speedup_engine, 2),
        "speedup_vs_solve_tiling": round(speedup, 2),
        "speedup_vs_solve_plus_bound": round(speedup_with_bound, 2),
        "warm_batch_stats": {
            k: stats[k] - warm_stats_before[k] for k in stats
        },
        "planner_stats_total": stats,
    }
    payload["warm_queries_per_second"] = round(n_queries / t_warm, 1)
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if out_dir:
        # The CI regression gate reads fresh smoke numbers from here.
        Path(out_dir).mkdir(parents=True, exist_ok=True)
        (Path(out_dir) / "BENCH_planner.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    # The warm batch re-solved nothing (any mode).
    assert stats["structure_solves"] == warm_stats_before["structure_solves"]
    if not smoke:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "BENCH_planner.json").write_text(json.dumps(payload, indent=2) + "\n")
        assert n_queries >= 100
        assert speedup_engine >= 10.0, payload
        # The full service path adds envelope construction (~50us/query);
        # it must stay within 2x of the raw engine and >=7x over cold.
        assert speedup >= 7.0, payload
        assert t_warm <= 2.0 * t_warm_engine + 0.05, payload


def test_e17_structure_sharing_across_disguises(table, smoke):
    """matmul/syrk/fully_connected (and any loop order) share one entry."""
    planner = Planner()
    rng = random.Random("share")
    queries = 6 if smoke else 30
    for _ in range(queries):
        base = rng.choice([matmul(64, 64, 64), syrk(64, 64), fully_connected(64, 64, 64)])
        order = list(range(base.depth))
        rng.shuffle(order)
        nest = base.permuted(order).with_bounds(
            [rng.choice([16, 256, 2048]) for _ in range(base.depth)]
        )
        plan = planner.plan(nest, 2**14)
        assert plan.exponent == cold_solve(nest, 2**14).exponent
    stats = planner.stats.as_dict()
    t = table("e17_sharing", ["quantity", "value"])
    t.add("queries", queries)
    t.add("structure solves", stats["structure_solves"])
    t.add("structure hits", stats["structure_hits"])
    assert stats["structure_solves"] == 1
    assert stats["structure_hits"] == queries - 1


def test_e17_persistence_solve_vs_load(table, smoke, tmp_path):
    """JSON persistence: reloading beats re-solving by orders of magnitude."""
    path = tmp_path / "plans.json"
    structures = [matmul(4, 4, 4), mttkrp(4, 4, 4, 4), pointwise_conv(2, 2, 2, 2, 2)]
    if smoke:
        structures = structures[:1]

    first = Planner(cache_path=path)
    t0 = time.perf_counter()
    for nest in structures:
        first.plan(nest, 2**12)
    t_solve = time.perf_counter() - t0
    first.save()

    t0 = time.perf_counter()
    second = Planner(cache_path=path)
    t_load = time.perf_counter() - t0
    assert sorted(second.cached_keys()) == sorted(first.cached_keys())
    for nest in structures:
        assert second.plan(nest, 2**12).exponent == first.plan(nest, 2**12).exponent
    assert second.stats.structure_solves == 0

    t = table("e17_persistence", ["quantity", "value"])
    t.add("structures", len(structures))
    t.add("cold multiparametric solves", f"{t_solve:.3f} s")
    t.add("load from JSON", f"{t_load:.4f} s")
    if not smoke:
        assert t_load < t_solve
