"""E8: §6.3 n-body pairwise interactions — tile sizes, traffic, caveat."""

import pytest

from repro.api import Session
from repro.core.bounds import communication_lower_bound, tile_exponent
from repro.core.closed_forms import nbody_comm_lower_bound, nbody_max_tile_size
from repro.library.problems import nbody
from repro.machine.model import MachineModel
from repro.simulate.executor import best_order_traffic
from repro.util.rationals import pow_fraction

#: All tilings come through the service façade (shared plan cache).
SESSION = Session()

M = 2**10

SWEEP = [
    (2**8, 2**8),  # both large: tile M^2
    (2**4, 2**12),  # L1 small: tile L1*M
    (2**12, 2**4),  # L2 small
    (2**4, 2**4),  # everything fits: tile L1*L2 (§6.3 caveat)
    (2**10, 2**6),
]


@pytest.mark.parametrize("dims", SWEEP, ids=lambda d: "x".join(map(str, d)))
def test_e8_tile_size_formula(benchmark, table, dims):
    """min(M^2, L1 M, L2 M, L1 L2) == M^k_hat, exactly."""
    nest = nbody(*dims)
    k = benchmark(lambda: tile_exponent(nest, M))
    measured = pow_fraction(M, k)
    expected = nbody_max_tile_size(*dims, M)
    assert measured == float(expected)

    t = table("e8_nbody_tile_" + "x".join(map(str, dims)), ["quantity", "value"])
    t.add("dims", dims)
    t.add("paper tile size", expected)
    t.add("measured M^k", f"{measured:.6g}")
    t.add("k_hat", k)


def test_e8_traffic_sweep(benchmark, table):
    """Simulated traffic of the LP tiling tracks max(L1L2/M, L1, L2, M)."""
    machine = MachineModel(cache_words=M)

    def run():
        rows = []
        for dims in SWEEP:
            nest = nbody(*dims)
            sol = SESSION.tiling(nest, M, "aggregate")
            lb = communication_lower_bound(nest, M)
            rep = best_order_traffic(nest, sol.tile, machine=machine)
            rows.append((dims, lb, rep))
        return rows

    rows = benchmark(run)
    t = table(
        "e8_nbody_traffic",
        ["L1", "L2", "closed form", "bound.value", "simulated", "ratio"],
    )
    for dims, lb, rep in rows:
        closed = nbody_comm_lower_bound(*dims, M)
        ratio = rep.ratio_to(lb.value)
        t.add(*dims, f"{closed:.5g}", f"{lb.value:.5g}", rep.total_words, f"{ratio:.2f}")
        assert lb.hbl_words == pytest.approx(closed, rel=1e-12)
        assert ratio <= 8, dims


def test_e8_caveat_small_problem(benchmark, table):
    """§6.3's closing remark: when everything fits, the formula says M but
    the true cost is the total footprint — the bound object reports both."""
    nest = nbody(2**4, 2**4)

    lb = benchmark(lambda: communication_lower_bound(nest, M))
    assert lb.fits_in_cache()
    assert lb.hbl_words == float(M)  # the misleading term
    assert lb.value == nest.total_footprint()  # the honest floor

    t = table("e8_nbody_caveat", ["quantity", "value"])
    t.add("formula (M)", int(lb.hbl_words))
    t.add("actual floor (footprint)", lb.footprint_words)
    t.add("fits in cache", lb.fits_in_cache())
