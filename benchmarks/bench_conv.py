"""E7: §6.2 pointwise convolutions (eq. 6.5) on CNN-shaped workloads.

The paper's motivation: CNN layers have *small* channel counts, so the
classical lower bound is loose and the classical tiling infeasible.
This bench sweeps MobileNet-style pointwise-convolution layers through
the ``repro.api.Session`` façade (every layer shares one canonical
structure, so the whole sweep costs one multiparametric solve), and
compares each plan's
simulated traffic against the clamped classical (sqrt-M cube) tiling
and the lower bound.
"""

import pytest

from repro.api import Session
from repro.core.tiling import TileShape
from repro.library.problems import pointwise_conv
from repro.machine.model import MachineModel
from repro.simulate.executor import best_order_traffic

M = 2**15

# (B, C, K, W, H): batch, in-channels, out-channels, width, height —
# representative MobileNet-v1 pointwise stages (spatial sizes trimmed to
# keep the bench fast; shapes preserve the small-channel regime).
LAYERS = [
    (8, 32, 64, 28, 28),
    (8, 64, 128, 28, 28),
    (8, 128, 128, 14, 14),
    (8, 256, 512, 7, 7),
    (8, 16, 8, 56, 56),  # tiny channels: the classical bound's worst case
]

#: One session for the whole module: the layer sweep is the
#: structure-sharing showcase (5 layers, 1 canonical structure).
SESSION = Session(workers=0)
PLANS = {
    layer: result.detail
    for layer, result in zip(
        LAYERS,
        SESSION.batch([(pointwise_conv(*layer), M, "aggregate") for layer in LAYERS]),
    )
}


def _clamped_classical_tile(nest, cache_words):
    """The §3 tiling with the small-bound fix applied naively (clamp to L).

    The classical construction gives every loop the same M^(1/3)-ish
    share; clamping to the loop bounds keeps it feasible but wastes the
    freed capacity — exactly the gap the paper's LP closes.
    """
    from math import floor

    side = max(1, floor(cache_words ** (1.0 / 3.0)))
    blocks = tuple(min(side, L) for L in nest.bounds)
    return TileShape(nest=nest, blocks=blocks)


def test_e7_layer_sweep_shares_one_structure(table):
    """The rewired ad-hoc loop: Session.batch served 5 layers, 1 LP solve."""
    stats = SESSION.stats.as_dict()
    t = table("e7_conv_sharing", ["quantity", "value"])
    t.add("layers planned", len(LAYERS))
    t.add("structure solves", stats["structure_solves"])
    t.add("canonical key", next(iter(PLANS.values())).canonical_key)
    assert stats["structure_solves"] == 1
    assert len({plan.canonical_key for plan in PLANS.values()}) == 1


@pytest.mark.parametrize("layer", LAYERS, ids=lambda layer: "x".join(map(str, layer)))
def test_e7_conv_tiling_beats_classical(benchmark, table, layer):
    nest = PLANS[layer].nest
    machine = MachineModel(cache_words=M)

    def pipeline():
        plan = SESSION.planner.plan(nest, M, budget="aggregate")
        opt = best_order_traffic(nest, plan.tile, machine=machine)
        classical = best_order_traffic(
            nest, _clamped_classical_tile(nest, M), machine=machine
        )
        return plan, opt, classical

    plan, opt, classical = benchmark(pipeline)
    lb = plan.lower_bound
    t = table(
        "e7_conv_" + "x".join(map(str, layer)),
        ["quantity", "value"],
    )
    t.add("layer (B,C,K,W,H)", layer)
    t.add("k_hat", plan.exponent)
    t.add("tile", plan.tile.blocks)
    t.add("lower bound (words)", f"{lb.value:.6g}")
    t.add("LP tiling traffic", opt.total_words)
    t.add("clamped-classical traffic", classical.total_words)
    t.add("LP/bound ratio", f"{opt.ratio_to(lb.value):.2f}")
    t.add("classical/LP ratio", f"{classical.total_words / opt.total_words:.2f}")

    # Shape assertions: the LP tiling never loses to the clamped
    # classical tiling, and stays within a model-constant of the bound.
    assert opt.total_words <= classical.total_words * 1.001
    assert opt.ratio_to(lb.value) <= 16


def test_e7_small_channel_bound_correction(benchmark, table):
    """With C tiny, the classical L.../sqrt(M) bound underestimates badly;
    the arbitrary-bound machinery recovers the read-everything floor."""
    nest = pointwise_conv(8, 4, 512, 56, 56)  # C = 4

    lb = benchmark(lambda: SESSION.planner.plan(nest, M).lower_bound)
    classical = nest.num_operations / M**0.5

    t = table("e7_small_channel", ["quantity", "value"])
    t.add("ops", nest.num_operations)
    t.add("classical ops/sqrt(M)", f"{classical:.6g}")
    t.add("arbitrary-bound", f"{lb.value:.6g}")
    t.add("image size", nest.array_size(1))
    # The corrected bound must dominate the classical expression and at
    # least demand reading the image once.
    assert lb.value >= classical
    assert lb.value >= nest.array_size(1)
