"""E6: §6.2 tensor contractions — the gamma-reduction to the matmul LP."""

from fractions import Fraction as F

import pytest

from repro.api import Session
from repro.core.closed_forms import contraction_tile_exponent
from repro.library.problems import tensor_contraction

M = 2**16


CONFIGS = [
    # (left extents, shared extents, right extents, paper-form optimum)
    ((2**8, 2**8), (2**8,), (2**8, 2**8), F(3, 2)),  # all large -> 3/2
    ((2**12,), (2**4,), (2**12,), 1 + F(4, 16)),  # small shared group
    ((2**2, 2**2), (2**12,), (2**12,), 1 + F(4, 16)),  # small left group
    ((2**12,), (2**12,), (2**6,), 1 + F(6, 16)),  # small right group
    ((2**12, 2**12), (2**8,), (2**8,), F(3, 2)),  # boundary: B_shared = 1/2
]

#: Shared session: contraction group arities repeat across configs,
#: so the sweep reuses structures instead of re-running the simplex.
SESSION = Session(workers=0)


@pytest.mark.parametrize("left,shared,right,expected", CONFIGS)
def test_e6_gamma_reduction(benchmark, table, left, shared, right, expected):
    """The contraction optimum is min(3/2, 1 + min(group beta sums))."""
    nest = tensor_contraction(left, shared, right)
    plan = benchmark(lambda: SESSION.tiling(nest, M))
    k = plan.exponent
    assert k == expected
    assert contraction_tile_exponent(left, shared, right, M) == k

    t = table(
        f"e6_contraction_d{nest.depth}_{hash((left, shared, right)) & 0xFFFF:04x}",
        ["groups", "paper k", "measured k", "tile"],
    )
    t.add(f"{left}|{shared}|{right}", expected, k, plan.tile.blocks)


def test_e6_group_aggregation_invariant(benchmark, table):
    """Splitting one loop into several with the same product leaves k fixed.

    The gamma-reduction argument: only group beta *sums* matter.  The
    sweep goes through ``Session.batch`` — the façade that replaced the
    ad-hoc per-nest solver loops.
    """
    cases = [
        tensor_contraction((2**8,), (2**4,), (2**8,)),
        tensor_contraction((2**4, 2**4), (2**4,), (2**8,)),
        tensor_contraction((2**2, 2**2, 2**4), (2**2, 2**2), (2**4, 2**4)),
    ]

    def solve_all():
        results = SESSION.batch([(nest, M) for nest in cases])
        return [result.detail.exponent for result in results]

    ks = benchmark(solve_all)
    assert ks[0] == ks[1] == ks[2]

    t = table("e6_group_invariance", ["nest depth", "k"])
    for nest, k in zip(cases, ks):
        t.add(nest.depth, k)
