#!/usr/bin/env python
"""CI perf-regression gate: fresh smoke benches vs committed baselines.

Runs ``bench_service.py``, ``bench_planner.py`` and
``bench_frontend.py`` in ``--smoke`` mode
(several times, keeping the best number per metric — CI boxes are
noisy), then compares the gated throughput metrics against the
committed baselines in ``benchmarks/results/smoke/baseline_metrics.json``.
Any metric more than ``--tolerance`` (default 20%) below its baseline
fails the gate with exit code 1 and a per-metric report.

Usage::

    python benchmarks/check_regression.py                   # the gate
    python benchmarks/check_regression.py --update-baselines
    python benchmarks/check_regression.py --seed-regression 0.5
        # synthetic 2x slowdown: MUST exit 1 (CI proves the gate trips)
    python benchmarks/check_regression.py --out report.json

The benches write their smoke numbers to ``$REPRO_BENCH_DIR`` (see
``_write_bench_json`` in the bench files); this script owns that
directory for the duration of a run.  ``--keep-fresh DIR`` copies the
fresh bench JSONs out for artifacts, and ``--reuse DIR`` gates against
an existing directory without re-running the benches (CI uses this to
prove the seeded regression trips without paying for a second bench
run).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE_PATH = BENCH_DIR / "results" / "smoke" / "baseline_metrics.json"
BENCH_FILES = ("bench_service.py", "bench_planner.py", "bench_frontend.py")

#: (bench JSON file, metric name, path into the JSON[, tolerance]).
#: Every gated metric is higher-is-better; mixing in ratios (speedups)
#: alongside absolute req/s keeps the gate meaningful across machine
#: generations.  An optional fourth element pins a per-metric tolerance
#: that overrides ``--tolerance`` — used for ratios that must stay
#: near 1.0 regardless of how noisy the absolute numbers are.
GATED_METRICS = (
    ("BENCH_service.json", "service.http_analyze_rps",
     ("http_analyze", "requests_per_second")),
    ("BENCH_service.json", "service.http_analyze_nocache_rps",
     ("http_analyze_nocache", "requests_per_second")),
    ("BENCH_service.json", "service.session_batch_rps",
     ("session_batch", "requests_per_second")),
    # Tracing-on vs tracing-off throughput on the cached HTTP path:
    # observability must cost < 5%, whatever the machine.
    ("BENCH_service.json", "service.obs_relative_throughput",
     ("obs_relative_throughput",), 0.05),
    ("BENCH_planner.json", "planner.warm_queries_per_second",
     ("warm_queries_per_second",)),
    ("BENCH_planner.json", "planner.speedup_engine_vs_solve_tiling",
     ("speedup_engine_vs_solve_tiling",)),
    ("BENCH_frontend.json", "frontend.warm_bands_per_second",
     ("warm", "bands_per_second")),
    ("BENCH_frontend.json", "frontend.warm_over_cold",
     ("warm_over_cold",)),
)

#: metric name -> pinned tolerance (from GATED_METRICS' optional entry).
METRIC_TOLERANCES = {
    entry[1]: entry[3] for entry in GATED_METRICS if len(entry) > 3
}


def _metric(blob: dict, path: tuple[str, ...]) -> float:
    value = blob
    for key in path:
        value = value[key]
    return float(value)


def collect_metrics(bench_dir: Path) -> dict[str, float]:
    """Gated metrics from one directory of fresh bench JSONs."""
    out: dict[str, float] = {}
    for filename, name, path, *_ in GATED_METRICS:
        file_path = bench_dir / filename
        if not file_path.exists():
            raise FileNotFoundError(
                f"{file_path} missing — did the bench run fail?"
            )
        out[name] = _metric(json.loads(file_path.read_text()), path)
    return out


def run_benches(bench_dir: Path) -> None:
    """One ``--smoke`` pass of every gated bench, writing into bench_dir."""
    env = dict(os.environ)
    env["REPRO_BENCH_DIR"] = str(bench_dir)
    src = REPO_ROOT / "src"
    if src.is_dir():  # repo checkout without an installed package
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(src)
        )
    cmd = [
        sys.executable, "-m", "pytest", "-q", "--smoke",
        "-p", "no:cacheprovider",
        *(str(BENCH_DIR / name) for name in BENCH_FILES),
    ]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise RuntimeError(f"bench run failed with exit code {proc.returncode}")


def best_of(runs: list[dict[str, float]]) -> dict[str, float]:
    """Per-metric best across runs (all gated metrics are higher-is-better)."""
    return {name: max(run[name] for run in runs) for name in runs[0]}


def gate(
    fresh: dict[str, float], baseline: dict[str, float], tolerance: float
) -> tuple[list[str], dict]:
    """(failures, per-metric report) for fresh numbers vs the baseline.

    A metric missing from the baseline passes (new metrics enter the
    gate when baselines are next updated); a baseline metric missing
    from the fresh run fails (a silently dropped metric is itself a
    regression of the gate).  A metric with a pinned tolerance in
    ``METRIC_TOLERANCES`` gates at that tolerance instead of the
    run-wide ``tolerance``.
    """
    failures: list[str] = []
    report: dict[str, dict] = {}
    for name, base_value in baseline.items():
        if name not in fresh:
            failures.append(f"{name}: missing from the fresh run")
            report[name] = {"baseline": base_value, "fresh": None, "ok": False}
            continue
        fresh_value = fresh[name]
        metric_tolerance = METRIC_TOLERANCES.get(name, tolerance)
        floor = base_value * (1.0 - metric_tolerance)
        ok = fresh_value >= floor
        report[name] = {
            "baseline": base_value,
            "fresh": round(fresh_value, 2),
            "ratio": round(fresh_value / base_value, 3) if base_value else None,
            "floor": round(floor, 2),
            "tolerance": metric_tolerance,
            "ok": ok,
        }
        if not ok:
            failures.append(
                f"{name}: {fresh_value:.1f} < {floor:.1f} "
                f"(baseline {base_value:.1f}, tolerance {metric_tolerance:.0%})"
            )
    for name, fresh_value in fresh.items():
        if name not in baseline:
            report[name] = {"baseline": None, "fresh": round(fresh_value, 2), "ok": True}
    return failures, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop per metric (default 0.20)")
    parser.add_argument("--runs", type=int, default=3,
                        help="smoke passes; best number per metric wins (default 3)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="write the fresh best-of metrics as the new baseline")
    parser.add_argument("--seed-regression", type=float, default=None, metavar="FACTOR",
                        help="multiply fresh metrics by FACTOR before gating "
                             "(e.g. 0.5 = synthetic 2x slowdown; proves the gate trips)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON gate report here")
    parser.add_argument("--keep-fresh", metavar="DIR",
                        help="copy the fresh bench JSONs into DIR")
    parser.add_argument("--reuse", metavar="DIR",
                        help="gate against existing bench JSONs in DIR "
                             "instead of running the benches")
    args = parser.parse_args(argv)

    if not 0 <= args.tolerance < 1:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2

    try:
        if args.reuse:
            runs = [collect_metrics(Path(args.reuse))]
            fresh_dir = Path(args.reuse)
        else:
            runs = []
            with tempfile.TemporaryDirectory(prefix="bench-gate-") as tmp:
                fresh_dir = Path(tmp)
                for index in range(args.runs):
                    print(f"bench-gate: smoke run {index + 1}/{args.runs}", flush=True)
                    run_benches(fresh_dir)
                    runs.append(collect_metrics(fresh_dir))
                if args.keep_fresh:
                    keep = Path(args.keep_fresh)
                    keep.mkdir(parents=True, exist_ok=True)
                    for name in os.listdir(fresh_dir):
                        shutil.copy2(fresh_dir / name, keep / name)
    except (RuntimeError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fresh = best_of(runs)
    if args.seed_regression is not None:
        fresh = {name: value * args.seed_regression for name, value in fresh.items()}

    if args.update_baselines:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps({k: round(v, 2) for k, v in sorted(fresh.items())}, indent=2)
            + "\n"
        )
        print(f"bench-gate: baselines updated at {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"error: no baseline at {BASELINE_PATH}; run --update-baselines",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures, report = gate(fresh, baseline, args.tolerance)

    document = {
        "tolerance": args.tolerance,
        "runs": len(runs),
        "seed_regression": args.seed_regression,
        "metrics": report,
        "failures": failures,
    }
    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    for name in sorted(report):
        entry = report[name]
        flag = "ok  " if entry["ok"] else "FAIL"
        print(f"  {flag} {name}: fresh={entry['fresh']} baseline={entry['baseline']}")
    if failures:
        print(f"bench-gate: FAIL ({len(failures)} metric(s) regressed >"
              f" {args.tolerance:.0%})")
        return 1
    print("bench-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
