"""E10: §7's multiparametric claim — exact piecewise-linear f(beta).

Regenerates the closed forms for the catalog problems, counts pieces,
verifies the piecewise function against the LP on a beta grid, and
times the dual-vertex enumeration.
"""

from fractions import Fraction as F

import pytest

from repro.core.bounds import tile_exponent
from repro.core.mplp import parametric_tile_exponent
from repro.library.problems import (
    matmul,
    matvec,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
    ttm,
)

STRUCTURES = {
    "matmul": matmul(4, 4, 4),
    "matvec": matvec(4, 4),
    "nbody": nbody(4, 4),
    "contraction_2_1_2": tensor_contraction((4, 4), (4,), (4, 4)),
    "mttkrp": mttkrp(4, 4, 4, 4),
    "ttm": ttm(4, 4, 4, 4),
    "pointwise_conv": pointwise_conv(4, 4, 4, 4, 4),
}

# Known piece counts for the §6 problems (derived in the paper / by hand).
EXPECTED_PIECES = {
    "matmul": 5,  # 3/2, 1+b1, 1+b2, 1+b3, b1+b2+b3
    "matvec": 2,  # 1, b1+b2
    "nbody": 4,  # 2, 1+b1, 1+b2, b1+b2
}


@pytest.mark.parametrize("name", list(STRUCTURES), ids=str)
def test_e10_piece_enumeration(benchmark, table, name):
    nest = STRUCTURES[name]
    pvf = benchmark(lambda: parametric_tile_exponent(nest))
    t = table(f"e10_pieces_{name}", ["piece"])
    names = [f"b({nm})" for nm in nest.loops]
    for p in pvf.pieces:
        t.add(p.render(names))
    if name in EXPECTED_PIECES:
        assert len(pvf.pieces) == EXPECTED_PIECES[name], pvf.render()


@pytest.mark.parametrize("name", ["matmul", "nbody", "mttkrp"], ids=str)
def test_e10_grid_agreement(benchmark, table, name):
    """f(beta) == tiling-LP optimum on a dense rational beta grid."""
    nest = STRUCTURES[name]
    pvf = parametric_tile_exponent(nest)
    M = 2**12
    d = nest.depth
    grid_points = []
    for mask in range(3**d):
        betas = []
        m = mask
        for _ in range(d):
            betas.append([F(1, 6), F(1, 2), F(4, 3)][m % 3])
            m //= 3
        grid_points.append(betas)

    def check_all():
        mismatches = 0
        for betas in grid_points:
            if pvf.evaluate(betas) != tile_exponent(nest, M, betas=betas):
                mismatches += 1
        return mismatches

    mismatches = benchmark(check_all)
    assert mismatches == 0
    t = table(f"e10_grid_{name}", ["grid points", "mismatches"])
    t.add(len(grid_points), mismatches)


def test_e10_region_structure_matmul(benchmark, table):
    """The critical regions of §6.1: where each piece is active."""
    pvf = parametric_tile_exponent(STRUCTURES["matmul"])

    def regions():
        return {
            p.render(["b1", "b2", "b3"]): pvf.region_inequalities(p)
            for p in pvf.pieces
        }

    regs = benchmark(regions)
    t = table("e10_matmul_regions", ["active piece", "#region inequalities"])
    for name, ineqs in regs.items():
        t.add(name, len(ineqs))
    # The 1 + b3 piece's region must contain the inequality b3 <= 1/2
    # (vs the 3/2 piece) — the paper's regime boundary.
    piece = next(p for p in pvf.pieces if p.coeffs == (0, 0, 1))
    region = pvf.region_inequalities(piece)
    assert (F(1, 2), (F(0), F(0), F(-1))) in region
