"""Concurrent HTTP soak for the failure-hardened service surface.

Spins up the stdlib server in-process with a deliberately small
in-flight limit, then hammers it from many client threads for a fixed
wall-clock window with a mix of traffic:

* valid analyze/batch/simulate requests (warm and cold structures),
* requests carrying tiny ``deadline_ms`` budgets (may map to 504),
* malformed bodies and unknown paths (must map to 400/404),

so the server is continuously shedding load (429), finishing real work
(200), and rejecting garbage — all at once.  The pass criterion is the
resilience contract, not throughput: **every** response must be a
well-formed schema-v1 envelope with a status from the documented
catalogue, and no request may hang, reset the connection, or return an
unstructured 500.  Any violation fails the process (exit 1).

After the soak, the observability contract is checked too: the
``/v1/metrics`` scrape must be well-formed Prometheus text, counters
and histogram components must be monotonic across scrapes, and the
per-route ``repro_requests_total`` sums must agree with the health
payload's ``requests_by_route`` view (see ``docs/observability.md``).

Run directly (CI's chaos-smoke job uses ``--seconds 30``)::

    python benchmarks/soak_service.py --seconds 30 --threads 8 --max-inflight 4
"""

from __future__ import annotations

import argparse
import collections
import json
import random
import re
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.api import SCHEMA_VERSION, Session
from repro.serve import make_server

#: Statuses the resilience contract allows under fault-free soak load.
#: 500 is deliberately absent: a structured internal error would still
#: be an envelope, but the soak runs no injected faults, so any 500 is
#: a real regression.
ALLOWED_STATUSES = {200, 400, 404, 429, 503, 504}

RESULT_KINDS = {
    "analyze", "simulate", "sweep", "tune", "hierarchy", "distributed",
    "health", "error", "batch",
}


def _request_mix(rng: random.Random) -> tuple[str, bytes | None]:
    """One (path, body) draw from the soak traffic mix."""
    roll = rng.random()
    if roll < 0.40:  # plain analyze, rotating sizes: warm + cold structures
        size = rng.choice((16, 24, 32, 48, 64))
        body = {"problem": "matmul", "sizes": [size, size, size],
                "cache_words": rng.choice((64, 256, 1024))}
        return "/v1/analyze", json.dumps(body).encode()
    if roll < 0.55:  # tiny deadline: 200 when warm, structured 504 when not
        size = rng.choice((20, 28, 36))
        body = {"problem": "nbody", "sizes": [size, size],
                "cache_words": 64, "deadline_ms": rng.choice((1, 5, 10_000))}
        return "/v1/analyze", json.dumps(body).encode()
    if roll < 0.70:  # small ordered batch
        body = {"requests": [
            {"problem": "matmul", "sizes": [16, 16, 16], "cache_words": 64},
            {"problem": "nbody", "sizes": [24, 24], "cache_words": 64},
        ]}
        return "/v1/batch", json.dumps(body).encode()
    if roll < 0.80:  # trace simulation (the heavyweight request)
        body = {"problem": "nbody", "sizes": [48, 48], "cache_words": 64}
        return "/v1/simulate", json.dumps(body).encode()
    if roll < 0.87:  # health probe: must always land, even when shedding
        return "/v1/health", json.dumps({}).encode()
    if roll < 0.94:  # garbage body: structured 400
        return "/v1/analyze", b"{this is not json"
    return "/v2/nope", json.dumps({}).encode()  # unknown path: structured 404


def _check_envelope(status: int, body: dict) -> str | None:
    """Return a violation description, or None when the envelope is sound."""
    if status not in ALLOWED_STATUSES:
        return f"status {status} outside the documented catalogue"
    if body.get("schema_version") != SCHEMA_VERSION:
        return f"schema_version {body.get('schema_version')!r}"
    kind = body.get("kind")
    if kind not in RESULT_KINDS:
        return f"unknown kind {kind!r}"
    if kind in ("batch", "sweep"):
        if not isinstance(body.get("results"), list):
            return "batch envelope without a results list"
        return None
    payload = body.get("payload")
    if not isinstance(payload, dict):
        return "payload is not an object"
    if kind == "error" and payload.get("status") != status:
        return f"error payload status {payload.get('status')} != HTTP {status}"
    if status != 200 and kind != "error":
        return f"non-200 status {status} with kind {kind!r}"
    return None


def _soak_worker(base: str, stop_at: float, seed: int,
                 counts: collections.Counter, violations: list,
                 lock: threading.Lock) -> None:
    rng = random.Random(seed)
    while time.monotonic() < stop_at:
        path, data = _request_mix(rng)
        request = urllib.request.Request(
            base + path, data=data,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            try:
                with urllib.request.urlopen(request, timeout=60) as resp:
                    status, raw = resp.status, resp.read()
            except urllib.error.HTTPError as exc:
                status, raw = exc.code, exc.read()
        except Exception as exc:  # connection reset, timeout, ...: a hang/crash
            with lock:
                violations.append(f"{path}: transport failure {exc!r}")
                counts["transport-error"] += 1
            continue
        try:
            body = json.loads(raw)
            problem = _check_envelope(status, body)
        except (ValueError, AttributeError):
            problem = f"body is not JSON ({raw[:80]!r})"
        with lock:
            counts[status] += 1
            if problem is not None:
                counts["malformed"] += 1
                if len(violations) < 20:
                    violations.append(f"{path} -> {status}: {problem}")


#: One Prometheus text-format sample line: name{labels} value.
_PROM_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$'
)


def _parse_prom(text: str) -> tuple[dict[str, str], dict[str, float], list[str]]:
    """(family types, series -> value, violations) for one scrape."""
    types: dict[str, str] = {}
    series: dict[str, float] = {}
    problems: list[str] = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"malformed TYPE line: {line!r}")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = _PROM_SAMPLE.match(line)
        if match is None:
            problems.append(f"unparseable sample line: {line!r}")
            continue
        key = match.group("name") + (match.group("labels") or "")
        if key in series:
            problems.append(f"duplicate series: {key}")
        series[key] = float(match.group("value"))
    return types, series, problems


def _series_family(name: str, types: dict[str, str]) -> str | None:
    """The declared type owning one series (histogram suffixes included)."""
    if name in types:
        return types[name]
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)]
        if name.endswith(suffix) and base in types:
            return types[base]
    return None


def _route_total(series: dict[str, float], route: str) -> float:
    """Sum of repro_requests_total across statuses for one route."""
    return sum(
        value
        for key, value in series.items()
        if key.startswith("repro_requests_total{") and f'route="{route}"' in key
    )


def _check_metrics(base: str, health_routes: dict | None) -> list[str]:
    """The /v1/metrics contract: parseable, monotonic, health-consistent."""
    problems: list[str] = []

    def scrape() -> str:
        request = urllib.request.Request(base + "/v1/metrics", method="GET")
        with urllib.request.urlopen(request, timeout=30) as resp:
            ctype = resp.headers.get("Content-Type", "")
            if not ctype.startswith("text/plain"):
                problems.append(f"scrape content-type {ctype!r}")
            return resp.read().decode("utf-8")

    try:
        first = scrape()
        # One more warm analyze between scrapes: counters must move.
        request = urllib.request.Request(
            base + "/v1/analyze",
            data=json.dumps(
                {"problem": "matmul", "sizes": [16, 16, 16], "cache_words": 64}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            resp.read()
        second = scrape()
    except Exception as exc:
        return [f"metrics scrape failed: {exc!r}"]

    types1, series1, parse1 = _parse_prom(first)
    types2, series2, parse2 = _parse_prom(second)
    problems += parse1 + parse2
    for family, expected in (
        ("repro_requests_total", "counter"),
        ("repro_request_seconds", "histogram"),
        ("repro_server_requests_total", "counter"),
    ):
        if types1.get(family) != expected:
            problems.append(f"scrape lacks {expected} family {family}")
    # Counters and histogram components never vanish or go backwards.
    for key, value in series1.items():
        family = _series_family(key.partition("{")[0], types1)
        if family not in ("counter", "histogram"):
            continue
        after = series2.get(key)
        if after is None:
            problems.append(f"series vanished between scrapes: {key}")
        elif after < value:
            problems.append(f"{key} went backwards: {value} -> {after}")
    # The between-scrapes analyze shows up as exactly one more request.
    before = _route_total(series1, "/v1/analyze")
    after = _route_total(series2, "/v1/analyze")
    if after != before + 1:
        problems.append(
            f"/v1/analyze served total moved {before} -> {after}, expected +1"
        )
    # The registry's per-route view agrees with the health payload's.
    if health_routes is not None:
        for route in ("/v1/analyze", "/v1/batch", "/v1/simulate"):
            expected_count = float(health_routes.get(route, 0))
            got = _route_total(series1, route)
            if got != expected_count:
                problems.append(
                    f"repro_requests_total for {route} is {got}, "
                    f"health saw {expected_count}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="soak duration (default 30)")
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="server in-flight limit; small values force "
                             "continuous load shedding (default 4)")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size for cold structure solves "
                             "(default 0 = solve in the handler thread)")
    parser.add_argument("--response-cache", type=int, default=256,
                        help="full-request response cache entries "
                             "(default 256; 0 = off)")
    args = parser.parse_args(argv)

    server = make_server(
        port=0, session=Session(), max_inflight=args.max_inflight,
        workers=args.workers, response_cache=args.response_cache,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"

    counts: collections.Counter = collections.Counter()
    violations: list[str] = []
    lock = threading.Lock()
    stop_at = time.monotonic() + args.seconds
    workers = [
        threading.Thread(
            target=_soak_worker,
            args=(base, stop_at, seed, counts, violations, lock),
            daemon=True,
        )
        for seed in range(args.threads)
    ]
    t0 = time.monotonic()
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=args.seconds + 90)
    elapsed = time.monotonic() - t0

    # The health payload is part of the soak contract: worker-pool and
    # cache counters must reflect the configuration we ran with.
    health_problems: list[str] = []
    health_routes: dict | None = None
    try:
        with urllib.request.urlopen(
            f"{base}/v1/health", timeout=30
        ) as resp:
            health = json.load(resp)
        stats = health["payload"]["server"]
        if stats["workers"]["configured"] != args.workers:
            health_problems.append(
                f"health reports workers={stats['workers']['configured']}, "
                f"expected {args.workers}")
        if args.workers and stats["workers"]["pool_started"] and not stats["workers"]["pool_alive"]:
            health_problems.append("health reports a dead worker pool")
        if stats["response_cache"]["capacity"] != args.response_cache:
            health_problems.append(
                f"health reports response cache capacity "
                f"{stats['response_cache']['capacity']}, expected {args.response_cache}")
        if args.response_cache and not stats["response_cache"]["hits"]:
            health_problems.append("soak produced zero response-cache hits")
        health_routes = stats["requests_by_route"]
    except Exception as exc:
        health_problems.append(f"final health probe failed: {exc!r}")

    # The metrics endpoint is part of the contract too: no traffic runs
    # between the health probe above and these scrapes, so the
    # registry's counters must line up with health's route counts.
    metrics_problems = _check_metrics(base, health_routes)

    server.shutdown()
    server.server_close()
    thread.join(timeout=10)

    total = sum(v for k, v in counts.items() if isinstance(k, int))
    print(f"soak: {total} responses in {elapsed:.1f}s "
          f"({args.threads} threads, max_inflight={args.max_inflight}, "
          f"workers={args.workers}, response_cache={args.response_cache})")
    for key in sorted(counts, key=str):
        print(f"  {key}: {counts[key]}")
    if any(w.is_alive() for w in workers):
        print("FAIL: a client thread never finished (hung request)")
        return 1
    if counts["malformed"] or counts["transport-error"]:
        print(f"FAIL: {counts['malformed']} malformed responses, "
              f"{counts['transport-error']} transport failures")
        for violation in violations:
            print(f"  {violation}")
        return 1
    if total == 0:
        print("FAIL: the soak produced no responses at all")
        return 1
    if health_problems:
        print("FAIL: health endpoint contract violated")
        for problem in health_problems:
            print(f"  {problem}")
        return 1
    if metrics_problems:
        print("FAIL: metrics endpoint contract violated")
        for problem in metrics_problems:
            print(f"  {problem}")
        return 1
    print("PASS: zero malformed responses, metrics contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
