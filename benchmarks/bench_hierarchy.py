"""E16 (extension): multi-level hierarchies — nested tilings meet every level's bound.

The paper's model is two-level; its first sentence scopes the problem
to "levels of a memory hierarchy".  This bench applies the machinery at
every boundary of a three-level hierarchy: nested tiles, per-level
analytic traffic, per-level lower bounds, and the ratio at each level.
"""

import pytest

from repro.api import Session
from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling
from repro.library.problems import matmul, mttkrp, pointwise_conv
from repro.machine.model import MachineModel
from repro.simulate.executor import best_order_traffic

#: One façade session for the module: single-level tilings share the
#: plan cache instead of paying a cold structure solve per capacity.
SESSION = Session()

HIERARCHY = MemoryHierarchy(capacities=(2**9, 2**13, 2**17), name="L1/L2/L3")

WORKLOADS = {
    "matmul": matmul(1024, 1024, 1024),
    "matmul_small_k": matmul(2048, 2048, 16),
    "pointwise_conv": pointwise_conv(8, 16, 64, 28, 28),
    "mttkrp": mttkrp(256, 256, 256, 16),
}


@pytest.mark.parametrize("name", list(WORKLOADS), ids=str)
def test_e16_per_level_attainability(benchmark, table, name):
    nest = WORKLOADS[name]

    def pipeline():
        ht = solve_hierarchical_tiling(nest, HIERARCHY, budget="aggregate")
        rows = []
        for lvl in ht.levels:
            machine = MachineModel(cache_words=lvl.capacity)
            traffic = best_order_traffic(nest, lvl.tile, machine=machine)
            rows.append((lvl, traffic))
        return ht, rows

    ht, rows = benchmark(pipeline)
    t = table(f"e16_{name}", ["level M", "blocks", "bound", "traffic", "ratio"])
    for lvl, traffic in rows:
        ratio = traffic.ratio_to(lvl.lower_bound.value)
        t.add(
            lvl.capacity,
            lvl.tile.blocks,
            f"{lvl.lower_bound.value:.5g}",
            traffic.total_words,
            f"{ratio:.2f}",
        )
        assert ratio <= 16, (name, lvl.capacity)
    # Nesting invariant.
    for inner, outer in zip(ht.levels, ht.levels[1:]):
        assert all(a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks))


def test_e16_nesting_cost(benchmark, table):
    """Nesting constraints cost nothing when levels are power-aligned:
    each level's nested tile volume equals its independent optimum."""

    nest = matmul(2**11, 2**11, 2**11)

    def pipeline():
        ht = solve_hierarchical_tiling(nest, HIERARCHY)
        singles = [SESSION.tiling(nest, c) for c in HIERARCHY.capacities]
        return ht, singles

    ht, singles = benchmark(pipeline)
    t = table("e16_nesting_cost", ["level M", "nested volume", "independent volume"])
    for lvl, single in zip(ht.levels, singles):
        t.add(lvl.capacity, lvl.tile.volume, single.tile.volume)
        assert lvl.tile.volume == single.tile.volume
