"""E11: model validation — LP tilings meet their bounds in simulation.

For every catalog problem: derive the tiling, simulate its traffic in
the machine model, and report the ratio to the communication lower
bound, against the untiled baseline.  The paper's claim reproduced here
is *attainability*: the ratio stays at a small model constant while the
baseline's ratio grows with problem/cache scale.
"""

import pytest

from repro.api import Session
from repro.core.bounds import communication_lower_bound
from repro.library.problems import (
    batched_matmul,
    fully_connected,
    matmul,
    matvec,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
    ttm,
)
from repro.machine.model import MachineModel
from repro.simulate.executor import best_order_traffic, simulate_untiled_traffic

#: Tilings served by the façade; one plan cache for the module.
SESSION = Session()

M = 2**12

WORKLOADS = {
    "matmul": matmul(256, 256, 256),
    "matmul_small_k": matmul(512, 512, 8),
    "matvec": matvec(1024, 1024),
    "nbody": nbody(4096, 4096),
    "contraction": tensor_contraction((32, 32), (32,), (32, 32)),
    "pointwise_conv": pointwise_conv(8, 16, 32, 16, 16),
    "fully_connected": fully_connected(64, 256, 256),
    "mttkrp": mttkrp(64, 64, 64, 16),
    "ttm": ttm(64, 64, 64, 16),
    "batched_matmul": batched_matmul(8, 64, 64, 64),
}


@pytest.mark.parametrize("name", list(WORKLOADS), ids=str)
def test_e11_attainability(benchmark, table, name):
    nest = WORKLOADS[name]
    machine = MachineModel(cache_words=M)

    def pipeline():
        sol = SESSION.tiling(nest, M, "aggregate")
        lb = communication_lower_bound(nest, M)
        tiled = best_order_traffic(nest, sol.tile, machine=machine)
        naive = simulate_untiled_traffic(nest, machine=machine)
        return sol, lb, tiled, naive

    sol, lb, tiled, naive = benchmark(pipeline)
    tiled_ratio = tiled.ratio_to(lb.value)
    naive_ratio = naive.ratio_to(lb.value)

    t = table(f"e11_{name}", ["quantity", "value"])
    t.add("bounds", nest.bounds)
    t.add("tile", sol.tile.blocks)
    t.add("lower bound", f"{lb.value:.6g}")
    t.add("tiled traffic", tiled.total_words)
    t.add("untiled traffic", naive.total_words)
    t.add("tiled/bound", f"{tiled_ratio:.2f}")
    t.add("untiled/bound", f"{naive_ratio:.2f}")

    # Attainability: constant-factor gap for the LP tiling.
    assert tiled_ratio <= 16, (name, tiled.summary())
    # The tiling never loses to the naive order.
    assert tiled.total_words <= naive.total_words * 1.001


def test_e11_gap_grows_with_cache(benchmark, table):
    """The naive baseline's gap widens as sqrt(M); the tiling's stays flat."""
    nest = matmul(512, 512, 512)

    def sweep():
        rows = []
        for logM in (8, 10, 12, 14, 16):
            cache = 2**logM
            machine = MachineModel(cache_words=cache)
            sol = SESSION.tiling(nest, cache, "aggregate")
            lb = communication_lower_bound(nest, cache)
            tiled = best_order_traffic(nest, sol.tile, machine=machine)
            naive = simulate_untiled_traffic(nest, machine=machine)
            rows.append((cache, tiled.ratio_to(lb.value), naive.ratio_to(lb.value)))
        return rows

    rows = benchmark(sweep)
    t = table("e11_gap_vs_cache", ["M", "tiled/bound", "untiled/bound"])
    for cache, tiled_ratio, naive_ratio in rows:
        t.add(cache, f"{tiled_ratio:.2f}", f"{naive_ratio:.2f}")
    tiled_ratios = [r[1] for r in rows]
    naive_ratios = [r[2] for r in rows]
    # Shape: naive ratio grows by >= 2x across the sweep; tiled stays within
    # a fixed constant band.
    assert naive_ratios[-1] >= naive_ratios[0] * 2
    assert max(tiled_ratios) <= 16
