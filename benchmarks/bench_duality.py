"""E9: Theorem-3 tightness — exact primal/dual equality, at scale.

Certifies the paper's central theorem over the full problem catalog, a
cache-size sweep, and a corpus of random projective structures, all in
exact rational arithmetic, and times the certificate pipeline.
"""

import random

from repro.core.duality import theorem3_certificate
from repro.core.loopnest import ArrayRef, LoopNest
from repro.library.problems import catalog

CACHES = [2, 16, 256, 2**12, 2**20]


def _random_nest(rng: random.Random, d: int, n: int) -> LoopNest:
    supports = []
    for _ in range(n):
        size = rng.randint(0, d)
        supports.append(sorted(rng.sample(range(d), size)))
    covered = set().union(*map(set, supports)) if supports else set()
    for loop in range(d):
        if loop not in covered:
            supports[rng.randrange(n)] = sorted(set(supports[rng.randrange(n)]) | {loop})
    covered = set().union(*map(set, supports))
    for loop in range(d):
        if loop not in covered:
            supports[0] = sorted(set(supports[0]) | {loop})
    bounds = tuple(2 ** rng.randint(0, 12) for _ in range(d))
    return LoopNest(
        name=f"rand{d}x{n}",
        loops=tuple(f"x{i}" for i in range(d)),
        bounds=bounds,
        arrays=tuple(
            ArrayRef(f"A{j}", tuple(s), is_output=(j == 0)) for j, s in enumerate(supports)
        ),
    )


def test_e9_catalog_tightness(benchmark, table):
    problems = catalog()

    def certify_all():
        return {
            name: [theorem3_certificate(nest, M) for M in CACHES]
            for name, nest in problems.items()
        }

    certs = benchmark(certify_all)
    t = table("e9_catalog_tightness", ["problem", "M sweep", "all tight", "k at M=2^12"])
    for name, cert_list in certs.items():
        tight = all(c.tight for c in cert_list)
        t.add(name, len(cert_list), tight, cert_list[3].primal_value)
        assert tight, name


def test_e9_random_corpus(benchmark, table):
    rng = random.Random(20200628)  # SPAA 2020 start date as seed
    corpus = [
        _random_nest(rng, d, n)
        for d in (2, 3, 4, 5)
        for n in (2, 3, 4)
        for _ in range(5)
    ]

    def certify():
        results = []
        for nest in corpus:
            M = rng.choice(CACHES)
            results.append(theorem3_certificate(nest, M))
        return results

    certs = benchmark(certify)
    gaps = [c for c in certs if not c.tight]
    t = table("e9_random_corpus", ["corpus size", "tight", "gaps"])
    t.add(len(certs), len(certs) - len(gaps), len(gaps))
    assert not gaps, [c.summary() for c in gaps]


def test_e9_certificate_cost(benchmark, table):
    """Wall-time of one exact certificate on the deepest catalog problem."""
    nest = catalog()["pointwise_conv"]
    cert = benchmark(lambda: theorem3_certificate(nest, 2**15))
    assert cert.tight
    t = table("e9_certificate_cost", ["problem", "d", "n", "tight"])
    t.add(nest.name, nest.depth, nest.num_arrays, cert.tight)
