"""E19: hierarchy-native serving — nested plans, certified and tuned.

The claim of the hierarchy surface: a whole memory hierarchy costs one
canonical-structure solve (ever), one cached mpLP piece evaluation per
level, and **one** trace pass to price every boundary — so serving and
tuning a multi-level plan is barely more expensive than a single-level
analyze + simulate.  The bench drives a catalog of (nest, capacity
stack) cases through ``Session.hierarchy`` — the same façade path the
CLI and ``/v1/hierarchy`` use — and emits
``benchmarks/results/BENCH_hierarchy.json``.

Assertions pin the subsystem's contractual facts on every case:

* every boundary's certificate ratio is >= 1 (the Theorem bound holds
  for any schedule, and the simulator must agree);
* the tuned nested tiling's *total* boundary traffic never exceeds the
  analytic seed's;
* level tiles are nested (level-l blocks inside level-(l+1) blocks);
* a repeat of a structurally identical nest at a *different* capacity
  stack is a plan-cache warm hit (no new simplex run).
"""

import json
import time
from pathlib import Path

from repro.api import HierarchyRequest, Session

RESULTS = Path(__file__).parent / "results"

#: (label, request) — small/skewed instances; capacity stacks include a
#: nearly-equal adjacent pair and a level above the full footprint.
CASES = [
    ("matmul_cube", {"problem": "matmul", "sizes": [24, 24, 24],
                     "capacities": [48, 192, 768]}),
    ("matmul_skewed_thin", {"problem": "matmul", "sizes": [40, 40, 6],
                            "capacities": [32, 96, 288]}),
    ("matmul_adjacent_caps", {"problem": "matmul", "sizes": [16, 16, 16],
                              "capacities": [300, 301]}),
    ("nbody_small", {"problem": "nbody", "sizes": [50, 50],
                     "capacities": [16, 64, 256]}),
    ("nbody_huge_top", {"problem": "nbody", "sizes": [40, 40],
                        "capacities": [32, 8192]}),
    ("conv_pointwise", {"problem": "pointwise_conv", "sizes": [4, 8, 8, 6, 6],
                        "capacities": [64, 256, 1024]}),
    ("mttkrp_small", {"problem": "mttkrp", "sizes": [12, 12, 12, 4],
                      "capacities": [64, 512]}),
]


def test_e19_hierarchy_certified_per_boundary(table, smoke):
    cases = CASES[:3] if smoke else CASES
    tune_budget = 8 if smoke else 32
    session = Session(workers=0)

    rows = []
    t = table(
        "e19_hierarchy",
        ["case", "levels", "tiles", "seed total", "tuned total",
         "worst ratio", "ms"],
    )
    t0 = time.perf_counter()
    for label, blob in cases:
        request = HierarchyRequest.from_json({**blob, "tune_budget": tune_budget})
        result = session.hierarchy(request)
        report = result.detail
        assert report.tuned_total_traffic_words <= report.seed_total_traffic_words, label
        for boundary in report.boundaries:
            assert boundary.certificate_ratio >= 1.0, (label, boundary.cache_words)
        for inner, outer in zip(report.tiles, report.tiles[1:]):
            assert all(a <= b for a, b in zip(inner, outer)), label
        worst = max(b.certificate_ratio for b in report.boundaries)
        t.add(
            label,
            len(report.boundaries),
            " ⊆ ".join("x".join(map(str, tile)) for tile in report.tiles),
            report.seed_total_traffic_words,
            report.tuned_total_traffic_words,
            f"{worst:.3f}",
            f"{result.elapsed_ms:.1f}",
        )
        rows.append({
            "case": label,
            "problem": report.nest.name,
            "bounds": list(report.nest.bounds),
            "capacities": list(report.capacities),
            "budget": report.budget,
            "evaluations": report.evaluations_used,
            "tiles": [list(tile) for tile in report.tiles],
            "seed_total_traffic_words": report.seed_total_traffic_words,
            "tuned_total_traffic_words": report.tuned_total_traffic_words,
            "improvement": round(report.improvement, 4),
            "boundaries": [
                {
                    "cache_words": b.cache_words,
                    "traffic_words": b.traffic_words,
                    "lower_bound_words": b.lower_bound_words,
                    "certificate_ratio": round(b.certificate_ratio, 4),
                    "seed_certificate_ratio": round(b.seed_certificate_ratio, 4),
                }
                for b in report.boundaries
            ],
            "elapsed_ms": result.elapsed_ms,
        })
    elapsed = time.perf_counter() - t0

    if not smoke:
        strict = [
            r for r in rows
            if r["tuned_total_traffic_words"] < r["seed_total_traffic_words"]
        ]
        payload = {
            "experiment": "hierarchy_service",
            "what": "nested multi-level plans served and tuned through "
            "Session.hierarchy; per-boundary certificate ratios from one "
            "trace pass",
            "tune_budget": tune_budget,
            "cases": rows,
            "strict_improvements": len(strict),
            "seconds": round(elapsed, 3),
            "planner_stats": session.stats.as_dict(),
        }
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "BENCH_hierarchy.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        # The small/skewed regime must show real tuning wins somewhere.
        assert len(strict) >= 2, payload


def test_e19_warm_stack_is_cache_hit(table, smoke):
    """Structurally identical nests at different stacks never re-solve."""
    session = Session(workers=0)
    t = table("e19_warm_stacks", ["stack", "cache hit", "ms"])
    stacks = ([64, 512], [48, 192, 768], [100, 400, 1600])
    for idx, caps in enumerate(stacks):
        result = session.hierarchy(
            HierarchyRequest.from_json(
                {"problem": "matmul", "sizes": [20 + idx, 20, 20],
                 "capacities": caps}
            )
        )
        assert result.meta["cache_hit"] is (idx > 0)
        t.add(":".join(map(str, caps)), result.meta["cache_hit"],
              f"{result.elapsed_ms:.1f}")
    assert session.stats.structure_solves == 1
