"""E13: the "efficiently computable" claim — pipeline cost vs d and n.

The paper emphasises that for projective nests the HBL constraint list
collapses to d rows (§3), so bounds and tilings come from *small* LPs.
This bench times the full pipeline as depth and array count grow, and
the exponential-in-d subset scan for contrast (the thing Theorem 3
makes unnecessary).
"""

import pytest

from repro.api import Session
from repro.core.bounds import subset_scan, tile_exponent
from repro.core.duality import theorem3_certificate
from repro.core.loopnest import ArrayRef, LoopNest

#: Solver-scaling bench: the exact escape keeps the simplex in the loop.
SESSION = Session()


def _chain_nest(d: int) -> LoopNest:
    """Depth-d chain contraction: array j touches loops (j, j+1)."""
    arrays = [ArrayRef("Out", (0, d - 1), is_output=True)]
    for j in range(d - 1):
        arrays.append(ArrayRef(f"A{j}", (j, j + 1)))
    return LoopNest(
        name=f"chain{d}",
        loops=tuple(f"x{i}" for i in range(d)),
        bounds=tuple(2**6 for _ in range(d)),
        arrays=tuple(arrays),
    )


def _star_nest(n: int) -> LoopNest:
    """n arrays sharing loop 0, each owning one private loop."""
    arrays = [ArrayRef("Hub", (0,), is_output=True)]
    for j in range(n):
        arrays.append(ArrayRef(f"S{j}", (0, j + 1)))
    return LoopNest(
        name=f"star{n}",
        loops=tuple(f"x{i}" for i in range(n + 1)),
        bounds=tuple(2**6 for _ in range(n + 1)),
        arrays=tuple(arrays),
    )


M = 2**12


@pytest.mark.parametrize("d", [3, 5, 7, 9], ids=lambda d: f"d{d}")
def test_e13_pipeline_vs_depth(benchmark, d, table):
    nest = _chain_nest(d)

    def pipeline():
        sol = SESSION.tiling(nest, M, exact=True)
        cert = theorem3_certificate(nest, M)
        return sol, cert

    sol, cert = benchmark(pipeline)
    assert cert.tight
    t = table(f"e13_depth_{d}", ["d", "n", "k_hat", "tight"])
    t.add(nest.depth, nest.num_arrays, sol.exponent, cert.tight)


@pytest.mark.parametrize("n", [2, 4, 8, 12], ids=lambda n: f"n{n}")
def test_e13_pipeline_vs_arrays(benchmark, n, table):
    nest = _star_nest(n)

    def pipeline():
        sol = SESSION.tiling(nest, M, exact=True)
        cert = theorem3_certificate(nest, M)
        return sol, cert

    sol, cert = benchmark(pipeline)
    assert cert.tight
    t = table(f"e13_arrays_{n}", ["d", "n", "k_hat", "tight"])
    t.add(nest.depth, nest.num_arrays, sol.exponent, cert.tight)


@pytest.mark.parametrize("d", [3, 5, 7], ids=lambda d: f"d{d}")
def test_e13_subset_scan_exponential(benchmark, d, table):
    """The 2^d Theorem-2 enumeration the single LP replaces."""
    nest = _chain_nest(d)
    scan = benchmark(lambda: subset_scan(nest, M))
    assert len(scan) == 2**d
    full = tile_exponent(nest, M)
    assert min(scan.values()) == full
    t = table(f"e13_scan_{d}", ["d", "subsets", "min == LP"])
    t.add(d, len(scan), min(scan.values()) == full)
