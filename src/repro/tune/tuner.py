"""The autotuning entry point: analytic seed -> budgeted search -> report.

:func:`tune_tile` is the orchestration every service surface calls:

1. **Seed.** Ask the plan cache (:class:`~repro.plan.Planner`) for the
   Theorem-3 optimum and its :func:`~repro.core.tiling.integer_repair`
   rounding — the analytically best rectangle, and the baseline every
   tuned plan must beat or match.
2. **Search.** Run one strategy (:mod:`repro.tune.search`) over the
   candidate lattice (:mod:`repro.tune.space`), scoring candidates with
   the one-pass trace simulator (:mod:`repro.tune.evaluate`) at every
   capacity of the Pareto axis simultaneously.
3. **Certify.** Price the Theorem lower bound at each capacity through
   the same plan cache (piecewise evaluation — no LP solve when warm)
   and report certificate ratios ``measured / bound``; the ratio at the
   tuning capacity is the report's headline number.

The whole run is deterministic for a fixed request (the random strategy
is seeded), which is what makes ``Session.tune``, ``/v1/tune`` and
``repro-tile tune`` return byte-identical payloads.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.hierarchy import MemoryHierarchy
from ..core.loopnest import LoopNest
from ..core.tiling import BUDGETS, TileShape
from ..plan.planner import Planner, TilePlan
from .result import HierarchyBoundary, HierarchyReport, TuneReport, build_pareto
from .search import STRATEGIES, search_tiles

__all__ = ["default_capacities", "tune_hierarchy", "tune_tile"]


def default_capacities(cache_words: int) -> tuple[int, ...]:
    """The default Pareto axis: powers of two up to ``cache_words``.

    Starts at 4 (the smallest capacity the plan cache prices) and always
    includes ``cache_words`` itself, so the front spans "tiny cache" to
    "the cache being tuned for".
    """
    caps = {int(cache_words)}
    c = 4
    while c < cache_words:
        caps.add(c)
        c *= 2
    return tuple(sorted(caps))


def tune_tile(
    nest: LoopNest,
    cache_words: int,
    *,
    budget: str = "aggregate",
    strategy: str = "exhaustive",
    max_evaluations: int = 64,
    radius: int = 1,
    capacities: Sequence[int] | None = None,
    include_candidates: bool = False,
    planner: Planner | None = None,
    workers: int | None = None,
    use_native: bool | None = None,
    rng_seed: int = 0,
    events: dict | None = None,
) -> TuneReport:
    """Simulation-in-the-loop integer tile autotuning, certified.

    Parameters mirror the request schema (:class:`repro.api.TuneRequest`);
    ``planner`` shares a session's plan cache (seed plan and per-capacity
    bounds are cache hits on warm structures) and defaults to the
    process-wide :func:`repro.api.default_session`'s planner — like
    ``repro.analyze``, repeated top-level calls on structurally
    identical nests never re-run the simplex.  ``workers`` parallelises
    candidate evaluation like the plan engine parallelises structure
    solves.  ``include_candidates=True`` attaches every evaluation to
    the report (the bench and notebooks want the full table; the wire
    default keeps payloads small).

    Returns a :class:`~repro.tune.TuneReport` whose winning tile is
    never worse (in measured traffic at ``cache_words``) than the
    analytically-rounded seed.
    """
    if cache_words < 2:
        raise ValueError("tuning needs cache_words >= 2")
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if planner is None:
        # Deferred import: repro.api.session imports this module, so the
        # dependency can only run at call time (by which point the api
        # package is fully initialised).
        from ..api.session import default_session

        planner = default_session().planner

    seed_plan: TilePlan = planner.plan(nest, cache_words, budget, include_bound=True)
    caps = tuple(sorted(set(default_capacities(cache_words) if capacities is None
                            else (int(c) for c in capacities)) | {int(cache_words)}))
    if any(c < 2 for c in caps):
        raise ValueError("capacities must be >= 2")

    outcome = search_tiles(
        nest,
        cache_words,
        seed_plan.tile.blocks,
        strategy,
        budget_conv=budget,
        max_evaluations=max_evaluations,
        radius=radius,
        capacities=caps,
        workers=workers,
        use_native=use_native,
        rng_seed=rng_seed,
        events=events,
    )

    # The lower bound at every capacity of the axis, served through the
    # plan cache (always the paper-model per-array bound, like analyze).
    bounds_by_capacity = {}
    for capacity in caps:
        bound = planner.plan(nest, capacity, "per-array", include_bound=True).lower_bound
        assert bound is not None
        bounds_by_capacity[capacity] = bound.value

    seed_eval = outcome.evaluations[0]
    assert seed_eval.blocks == seed_plan.tile.blocks
    winning_plan = replace(
        seed_plan, tile=TileShape(nest=nest, blocks=outcome.best.blocks)
    )
    return TuneReport(
        plan=winning_plan,
        strategy=strategy,
        max_evaluations=max_evaluations,
        evaluations_used=outcome.evaluations_used,
        seed_blocks=seed_plan.tile.blocks,
        seed_traffic_words=seed_eval.traffic_at(cache_words),
        tuned_traffic_words=outcome.best.traffic_at(cache_words),
        lower_bound_words=bounds_by_capacity[int(cache_words)],
        accesses=seed_eval.accesses,
        pareto=build_pareto(outcome.evaluations, caps, bounds_by_capacity),
        candidates=outcome.evaluations if include_candidates else (),
    )


def tune_hierarchy(
    nest: LoopNest,
    hierarchy: "MemoryHierarchy | Sequence[int]",
    *,
    budget: str = "aggregate",
    strategy: str = "exhaustive",
    max_evaluations: int = 1,
    radius: int = 1,
    include_candidates: bool = False,
    planner: Planner | None = None,
    workers: int | None = None,
    use_native: bool | None = None,
    rng_seed: int = 0,
    events: dict | None = None,
) -> HierarchyReport:
    """Plan (and optionally tune) a nested tiling for a whole hierarchy.

    The orchestration behind ``Session.hierarchy``, ``/v1/hierarchy``
    and ``repro-tile hierarchy``:

    1. **Plan.**  :meth:`~repro.plan.Planner.plan_hierarchy` answers
       every level from the shared canonical structure (one cached mpLP
       piece evaluation per level; warm across capacity stacks) and
       repairs the integer tiles jointly so levels nest.
    2. **Measure / tune.**  Because the executed schedule is the
       *innermost* tile walk (outer levels only group its tiles), one
       :func:`~repro.simulate.nest_miss_curve` pass prices **every**
       boundary of a candidate at once.  The search minimises the total
       boundary traffic over innermost candidates capped componentwise
       by the next level's tile — candidates never un-nest the
       hierarchy.  ``max_evaluations=1`` measures the analytic seed
       only (the pure serving path).
    3. **Certify.**  Each boundary reports measured traffic against its
       Theorem bound (``certificate_ratio >= 1`` always), and the
       seed-first tie-break guarantees the tuned total never exceeds
       the seed total.

    Deterministic for a fixed request — all three service surfaces
    return byte-identical payloads.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    if planner is None:
        # Deferred import, same reason as tune_tile (api imports us).
        from ..api.session import default_session

        planner = default_session().planner
    if not isinstance(hierarchy, MemoryHierarchy):
        hierarchy = MemoryHierarchy(capacities=tuple(int(c) for c in hierarchy))

    hplan = planner.plan_hierarchy(nest, hierarchy, budget, include_bound=True)
    capacities = hplan.capacities
    seed = hplan.levels[0].tile.blocks
    ceiling = hplan.levels[1].tile.blocks if len(hplan.levels) > 1 else nest.bounds
    outcome = search_tiles(
        nest,
        capacities[0],
        seed,
        strategy,
        budget_conv=budget,
        max_evaluations=max_evaluations,
        radius=radius,
        capacities=capacities,
        workers=workers,
        use_native=use_native,
        rng_seed=rng_seed,
        ceiling=ceiling,
        objective_capacities=capacities,
        events=events,
    )
    seed_eval = outcome.evaluations[0]
    assert seed_eval.blocks == seed
    best = outcome.best
    boundaries = []
    for idx, level in enumerate(hplan.levels):
        plan = level
        if idx == 0 and best.blocks != level.tile.blocks:
            plan = replace(level, tile=TileShape(nest=nest, blocks=best.blocks))
        boundaries.append(
            HierarchyBoundary(
                plan=plan,
                seed_blocks=level.tile.blocks,
                traffic_words=best.traffic_at(level.cache_words),
                seed_traffic_words=seed_eval.traffic_at(level.cache_words),
            )
        )
    return HierarchyReport(
        strategy=strategy,
        max_evaluations=max_evaluations,
        evaluations_used=outcome.evaluations_used,
        accesses=seed_eval.accesses,
        canonical_key=hplan.canonical_key,
        boundaries=tuple(boundaries),
        candidates=outcome.evaluations if include_candidates else (),
    )
