"""``repro.tune`` — simulation-in-the-loop integer tile autotuning.

The paper's Theorem-3 tilings are rational and asymptotically optimal;
after integer rounding at small or skewed bounds the realised plan can
sit measurably above the communication lower bound.  This subsystem
closes that gap empirically: it seeds a budgeted integer search at the
analytic optimum (served by the plan cache), scores candidates with the
batched trace engine's one-pass multi-capacity simulation, and reports
a :class:`TuneReport` carrying the winning :class:`~repro.plan.TilePlan`,
the measured traffic, the Theorem lower bound and the certificate ratio
``measured / bound`` — plus a capacity→best-tile Pareto front from the
same evaluations.

* :mod:`repro.tune.space` — candidate generators (lattice neighbourhood,
  divisor-snapped, power-of-two) around the repaired analytic seed;
* :mod:`repro.tune.search` — budgeted strategies (exhaustive,
  coordinate descent, random restarts) over a shared memoised evaluator;
* :mod:`repro.tune.evaluate` — parallel candidate scoring via
  :func:`repro.simulate.nest_miss_curve` (all capacities in one pass);
* :mod:`repro.tune.tuner` — :func:`tune_tile`, the orchestration behind
  ``Session.tune``, ``/v1/tune`` and ``repro-tile tune``, and
  :func:`tune_hierarchy`, its multi-level sibling: one
  ``nest_miss_curve`` pass scores a nested candidate at *every* cache
  boundary at once, candidates stay inside the next level's tile
  (never un-nesting the hierarchy), and the objective is the total
  boundary traffic;
* :mod:`repro.tune.result` — the :class:`TuneReport` and
  :class:`HierarchyReport` wire shapes.
"""

from .evaluate import (
    TileEvaluation,
    best_evaluation,
    best_evaluation_multi,
    evaluate_candidates,
    evaluate_tile,
)
from .result import (
    HierarchyBoundary,
    HierarchyReport,
    ParetoPoint,
    TuneReport,
    build_pareto,
)
from .search import STRATEGIES, BudgetedEvaluator, SearchOutcome, search_tiles
from .space import GENERATORS, candidate_tiles, clamp_block
from .tuner import default_capacities, tune_hierarchy, tune_tile

__all__ = [
    "GENERATORS",
    "STRATEGIES",
    "BudgetedEvaluator",
    "HierarchyBoundary",
    "HierarchyReport",
    "ParetoPoint",
    "SearchOutcome",
    "TileEvaluation",
    "TuneReport",
    "best_evaluation",
    "best_evaluation_multi",
    "build_pareto",
    "candidate_tiles",
    "clamp_block",
    "default_capacities",
    "evaluate_candidates",
    "evaluate_tile",
    "search_tiles",
    "tune_hierarchy",
    "tune_tile",
]
