"""Search strategies over the integer tile lattice, budgeted.

Every strategy spends a shared *evaluation budget* (distinct tiles
actually simulated — repeats are memoised and free) and shares one
:class:`BudgetedEvaluator`, so strategies are comparable at equal cost:

* ``"exhaustive"`` — evaluate the whole candidate neighbourhood
  (:func:`repro.tune.space.candidate_tiles`), closest-to-seed first,
  until the budget runs out.  One flat batch: maximally parallel.
* ``"coordinate"`` — descent on *measured traffic*: sweep the
  dimensions, trying each dimension's axis values
  (:func:`repro.tune.space.axis_values`) with the others held fixed,
  move to the best improving tile, repeat to a fixpoint.
* ``"random"`` — seeded random restarts: sample feasible tiles with
  log-uniform blocks (snapped to divisors or powers of two half the
  time), batch-evaluate, keep the best.  Deterministic for a fixed
  ``rng_seed``, so every service surface returns the same report.

The seed tile is always evaluated first and ties break toward earlier
candidates, so the winner's measured traffic is *never worse than the
analytically-rounded seed's* — the tuned-vs-seed invariant the test
suite and the certificate report rely on.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..util.deadline import checkpoint
from .evaluate import TileEvaluation, best_evaluation_multi, evaluate_candidates
from .space import GENERATORS, axis_values, candidate_tiles, clamp_block

__all__ = ["STRATEGIES", "BudgetedEvaluator", "SearchOutcome", "search_tiles"]

#: Strategy names accepted by :func:`search_tiles` (and the request schema).
STRATEGIES = ("exhaustive", "coordinate", "random")

#: Random-restart strategies sample in batches of this many candidates.
_RANDOM_BATCH = 8


@dataclass
class BudgetedEvaluator:
    """Memoised, budget-capped batch evaluator shared by the strategies.

    ``evaluate`` simulates at most ``budget - spent`` *new* tiles of a
    batch (already-seen tiles are served from the memo and cost
    nothing) and returns the evaluations it has for the batch, in batch
    order.  ``evaluations`` preserves first-evaluation order — the
    deterministic record the report's candidate table is built from.
    """

    nest: LoopNest
    capacities: tuple[int, ...]
    budget: int
    workers: int | None = None
    use_native: bool | None = None
    evaluations: "OrderedDict[tuple[int, ...], TileEvaluation]" = field(
        default_factory=OrderedDict
    )
    #: Degradation events observed during evaluation (e.g. a pool crash
    #: survived serially); service surfaces surface these in result meta.
    events: dict = field(default_factory=dict)

    @property
    def spent(self) -> int:
        return len(self.evaluations)

    @property
    def remaining(self) -> int:
        return max(0, self.budget - self.spent)

    def evaluate(self, batch: Sequence[Sequence[int]]) -> list[TileEvaluation]:
        fresh: list[tuple[int, ...]] = []
        seen_in_batch: set[tuple[int, ...]] = set()
        for blocks in batch:
            key = tuple(int(b) for b in blocks)
            if key in self.evaluations or key in seen_in_batch:
                continue
            if len(fresh) >= self.remaining:
                break
            seen_in_batch.add(key)
            fresh.append(key)
        checkpoint("tune-batch")
        for evaluation in evaluate_candidates(
            self.nest, fresh, self.capacities,
            workers=self.workers, use_native=self.use_native,
            events=self.events,
        ):
            self.evaluations[evaluation.blocks] = evaluation
        return [
            self.evaluations[key]
            for blocks in batch
            if (key := tuple(int(b) for b in blocks)) in self.evaluations
        ]


@dataclass(frozen=True)
class SearchOutcome:
    """Everything a strategy run produced."""

    strategy: str
    best: TileEvaluation
    evaluations: tuple[TileEvaluation, ...]  # first-evaluation order

    @property
    def evaluations_used(self) -> int:
        return len(self.evaluations)


def _run_exhaustive(
    ev: BudgetedEvaluator,
    cache_words: int,
    budget_conv: str,
    seed: tuple[int, ...],
    radius: int,
    ceiling: tuple[int, ...],
) -> None:
    candidates = candidate_tiles(
        ev.nest, cache_words, seed, budget=budget_conv,
        radius=radius, generators=GENERATORS, limit=ev.budget, ceiling=ceiling,
    )
    ev.evaluate(candidates)


def _run_coordinate(
    ev: BudgetedEvaluator,
    cache_words: int,
    budget_conv: str,
    seed: tuple[int, ...],
    radius: int,
    ceiling: tuple[int, ...],
    objective: tuple[int, ...],
) -> None:
    nest = ev.nest
    current = seed
    current_traffic = ev.evaluations[seed].total_traffic(objective)
    improved = True
    while improved and ev.remaining:
        improved = False
        for i in range(nest.depth):
            variants = []
            for value in axis_values(nest, current, i, radius=radius):
                if value > ceiling[i]:
                    continue
                blocks = current[:i] + (value,) + current[i + 1:]
                if blocks != current and TileShape(
                    nest=nest, blocks=blocks
                ).is_feasible(cache_words, budget_conv):
                    variants.append(blocks)
            if not variants:
                continue
            for evaluation in ev.evaluate(variants):
                if evaluation.total_traffic(objective) < current_traffic:
                    current = evaluation.blocks
                    current_traffic = evaluation.total_traffic(objective)
                    improved = True
            if not ev.remaining:
                return


def _run_random(
    ev: BudgetedEvaluator,
    cache_words: int,
    budget_conv: str,
    seed: tuple[int, ...],
    rng_seed: int,
    ceiling: tuple[int, ...],
) -> None:
    nest = ev.nest
    rng = random.Random(rng_seed)
    misses_in_a_row = 0
    while ev.remaining and misses_in_a_row < 8:
        batch: list[tuple[int, ...]] = []
        for _ in range(4 * _RANDOM_BATCH):
            if len(batch) >= min(_RANDOM_BATCH, ev.remaining):
                break
            blocks = []
            for i, bound in enumerate(nest.bounds):
                raw = 2.0 ** rng.uniform(0.0, max(bound, 1).bit_length() - 1 or 1)
                value = clamp_block(raw, bound)
                snap = rng.random()
                if snap < 0.25:
                    value = min(axis_values(nest, seed, i), key=lambda v: abs(v - value))
                elif snap < 0.5:
                    value = clamp_block(1 << max(0, value.bit_length() - 1), bound)
                blocks.append(min(value, ceiling[i]))
            blocks = tuple(blocks)
            if TileShape(nest=nest, blocks=blocks).is_feasible(cache_words, budget_conv):
                batch.append(blocks)
        if not batch:
            misses_in_a_row += 1
            continue
        before = ev.spent
        ev.evaluate(batch)
        misses_in_a_row = misses_in_a_row + 1 if ev.spent == before else 0


def search_tiles(
    nest: LoopNest,
    cache_words: int,
    seed: Sequence[int],
    strategy: str = "exhaustive",
    *,
    budget_conv: str = "aggregate",
    max_evaluations: int = 64,
    radius: int = 1,
    capacities: Sequence[int] | None = None,
    workers: int | None = None,
    use_native: bool | None = None,
    rng_seed: int = 0,
    ceiling: Sequence[int] | None = None,
    objective_capacities: Sequence[int] | None = None,
    events: dict | None = None,
) -> SearchOutcome:
    """Run one strategy from the analytic seed; return every evaluation.

    ``capacities`` is the Pareto axis every evaluation is priced on (it
    always includes ``cache_words``); ``max_evaluations`` caps distinct
    simulated tiles including the seed.  The returned ``best`` minimises
    the *summed* measured traffic over ``objective_capacities``
    (defaulting to ``cache_words`` alone — the classic single-cache
    objective) — by construction never worse than the seed, which is
    always evaluated first.  ``ceiling`` upper-bounds every candidate
    componentwise (the multi-level tuner passes the next hierarchy
    level's tile so candidates never un-nest the hierarchy).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    if radius < 0:
        raise ValueError("radius must be >= 0")
    seed = tuple(int(b) for b in seed)
    if ceiling is not None and len(ceiling) != nest.depth:
        raise ValueError(f"ceiling must have {nest.depth} entries, got {len(ceiling)}")
    lid = tuple(nest.bounds) if ceiling is None else tuple(
        min(int(c), bound) for c, bound in zip(ceiling, nest.bounds)
    )
    if any(s > c for s, c in zip(seed, lid)):
        raise ValueError(f"seed {seed} exceeds the ceiling {lid}")
    objective = tuple(
        sorted({int(c) for c in (objective_capacities or (cache_words,))})
    )
    caps = {int(cache_words)}
    caps.update(objective)
    caps.update(int(c) for c in capacities or ())
    ev = BudgetedEvaluator(
        nest=nest,
        capacities=tuple(sorted(caps)),
        budget=max_evaluations,
        workers=workers,
        use_native=use_native,
        events=events if events is not None else {},
    )
    ev.evaluate([seed])  # the seed is always candidate #0
    if strategy == "exhaustive":
        _run_exhaustive(ev, cache_words, budget_conv, seed, radius, lid)
    elif strategy == "coordinate":
        _run_coordinate(ev, cache_words, budget_conv, seed, radius, lid, objective)
    else:
        _run_random(ev, cache_words, budget_conv, seed, rng_seed, lid)
    evaluations = tuple(ev.evaluations.values())
    return SearchOutcome(
        strategy=strategy,
        best=best_evaluation_multi(evaluations, objective),
        evaluations=evaluations,
    )
