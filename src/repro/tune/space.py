"""The integer tile search space: where candidates come from.

The analytic Theorem-3 optimum (after :func:`~repro.core.tiling.
integer_repair`) maximises tile *volume* under the footprint model, but
measured LRU traffic also depends on effects the model prices at
constant factors: ragged edge tiles when blocks do not divide the loop
bounds, the aggregate-vs-per-array budget gap, and conflict between
arrays sharing one cache.  Closing that gap is a small integer search —
the analytic optimum is the right *seed*, not the final answer (cf.
Demmel & Rusciano's HBL-parallelepiped refinements).

Three deterministic candidate generators, each anchored at the seed:

* :func:`neighborhood` — the tile lattice within ``radius`` steps of
  the seed per dimension (plus halving/doubling rungs), ordered by L1
  distance so evaluation budgets spend themselves closest-first;
* :func:`divisor_snapped` — seed blocks snapped to the nearest divisors
  of each loop bound (divisor tiles have no ragged remainder tiles);
* :func:`power_of_two` — seed blocks snapped to the neighbouring powers
  of two (alignment-friendly, and the shape autotuners try first).

All generators emit only blocks within ``1 <= b <= L`` and (through
:func:`candidate_tiles`) only tiles feasible for the requested cache
budget, so any candidate is a valid plan.  :func:`clamp_block` is the
shared clamp for turning a fractional extent into a legal block size.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import BUDGETS, TileShape, clamp_block

__all__ = [
    "GENERATORS",
    "clamp_block",  # re-exported from repro.core.tiling: one clamp, one source
    "candidate_tiles",
    "divisor_snapped",
    "neighborhood",
    "power_of_two",
]

#: Generator names accepted by :func:`candidate_tiles`, in emission order.
GENERATORS = ("neighborhood", "divisor", "pow2")


def _divisors(n: int) -> list[int]:
    """All divisors of ``n``, ascending (``n <= ~10^6`` in practice)."""
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def _snap_values(sorted_values: Sequence[int], near: int, count: int = 2) -> list[int]:
    """Up to ``count`` values below and above ``near`` from a sorted list."""
    lo = [v for v in sorted_values if v <= near][-count:]
    hi = [v for v in sorted_values if v > near][:count]
    return lo + hi


def _axis_product(
    axes: Sequence[Sequence[int]], seed: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Cartesian product of per-dimension axes, nearest the seed first."""
    combos = sorted(
        itertools.product(*axes),
        key=lambda blocks: (sum(abs(b - s) for b, s in zip(blocks, seed)), blocks),
    )
    return iter(combos)


def neighborhood(
    nest: LoopNest, seed: Sequence[int], radius: int = 1
) -> Iterator[tuple[int, ...]]:
    """Lattice tiles within ``radius`` unit steps of the seed per dimension.

    Each axis also carries the halved and doubled seed block (clamped),
    so the neighbourhood can cross order-of-magnitude mistakes of the
    rounding in one move.  Ordered by L1 distance from the seed.
    """
    axes = []
    for s, bound in zip(seed, nest.bounds):
        values = {clamp_block(s + step, bound) for step in range(-radius, radius + 1)}
        values.add(clamp_block(s // 2, bound))
        values.add(clamp_block(s * 2, bound))
        axes.append(sorted(values))
    return _axis_product(axes, seed)


def divisor_snapped(nest: LoopNest, seed: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Seed blocks snapped to the nearest divisors of each loop bound.

    Divisor blocks tile the iteration space without ragged remainder
    tiles — the classic reason a slightly smaller tile beats the
    volume-maximal one on measured traffic.
    """
    axes = [
        sorted(set(_snap_values(_divisors(bound), s)))
        for s, bound in zip(seed, nest.bounds)
    ]
    return _axis_product(axes, seed)


def power_of_two(nest: LoopNest, seed: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Seed blocks snapped to the neighbouring powers of two (clamped)."""
    axes = []
    for s, bound in zip(seed, nest.bounds):
        below = 1 << (max(1, s).bit_length() - 1)  # largest power of two <= s
        values = {clamp_block(below, bound), clamp_block(below * 2, bound)}
        axes.append(sorted(values))
    return _axis_product(axes, seed)


def axis_values(nest: LoopNest, seed: Sequence[int], i: int, radius: int = 1) -> list[int]:
    """Candidate values for dimension ``i`` alone (coordinate-descent moves).

    The union of the three generators' per-dimension axes, ascending.
    """
    s, bound = seed[i], nest.bounds[i]
    values = {clamp_block(s + step, bound) for step in range(-radius, radius + 1)}
    values.add(clamp_block(s // 2, bound))
    values.add(clamp_block(s * 2, bound))
    values.update(_snap_values(_divisors(bound), s))
    below = 1 << (max(1, s).bit_length() - 1)
    values.update((clamp_block(below, bound), clamp_block(below * 2, bound)))
    return sorted(values)


def candidate_tiles(
    nest: LoopNest,
    cache_words: int,
    seed: Sequence[int],
    budget: str = "aggregate",
    radius: int = 1,
    generators: Iterable[str] = GENERATORS,
    limit: int | None = None,
    ceiling: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """The deduplicated, feasible candidate list — seed always first.

    Generators run in the order of ``generators``; within each, tiles
    closest to the seed come first, so truncating to ``limit`` keeps the
    most promising region.  Every returned tile satisfies the block
    bounds and is feasible for ``(cache_words, budget)``; the seed is
    included unconditionally when itself feasible.

    ``ceiling`` adds a per-dimension upper bound below the loop bounds —
    the multi-level tuner passes the next hierarchy level's tile so no
    candidate ever un-nests the hierarchy (level-0 blocks stay inside
    level-1 blocks).
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    unknown = [g for g in generators if g not in GENERATORS]
    if unknown:
        raise ValueError(f"unknown generators {unknown}; expected among {GENERATORS}")
    if ceiling is not None and len(ceiling) != nest.depth:
        raise ValueError(f"ceiling must have {nest.depth} entries, got {len(ceiling)}")
    caps = tuple(nest.bounds) if ceiling is None else tuple(
        min(int(c), bound) for c, bound in zip(ceiling, nest.bounds)
    )
    streams = {
        "neighborhood": lambda: neighborhood(nest, seed, radius=radius),
        "divisor": lambda: divisor_snapped(nest, seed),
        "pow2": lambda: power_of_two(nest, seed),
    }
    out: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()

    def push(blocks: tuple[int, ...]) -> bool:
        if blocks in seen:
            return False
        seen.add(blocks)
        if not all(1 <= b <= cap for b, cap in zip(blocks, caps)):
            return False
        if not TileShape(nest=nest, blocks=blocks).is_feasible(cache_words, budget):
            return False
        out.append(blocks)
        return True

    push(tuple(int(b) for b in seed))
    for name in generators:
        for blocks in streams[name]():
            if limit is not None and len(out) >= limit:
                return out
            push(blocks)
    return out
