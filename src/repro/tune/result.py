"""The tuning report: winner, certificate ratio, and the Pareto front.

A :class:`TuneReport` is the answer the autotuner serves: the winning
:class:`~repro.plan.TilePlan` (the analytic plan with its tile replaced
by the tuned winner), the measured traffic of seed and winner, the
Theorem lower bound, and the *certificate ratio* ``measured / bound`` —
an optimality certificate in the empirical sense: a ratio of 1.0 means
the plan provably cannot be beaten by any schedule on that cache, and
the gap to 1.0 bounds how much any further tuning could recover.  The
one-pass evaluation prices every capacity at once, so the report also
carries a capacity→best-tile Pareto front from the same evaluations.

Serialization follows the façade's wire conventions (Fractions as
``"p/q"`` strings, plain JSON types), so the payload is identical
across ``Session.tune``, ``/v1/tune`` and ``repro-tile tune``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..plan.planner import TilePlan
from .evaluate import TileEvaluation, best_evaluation

__all__ = [
    "HierarchyBoundary",
    "HierarchyReport",
    "ParetoPoint",
    "TuneReport",
    "build_pareto",
]


@dataclass(frozen=True)
class ParetoPoint:
    """Best evaluated tile at one cache capacity."""

    cache_words: int
    blocks: tuple[int, ...]
    traffic_words: int
    lower_bound_words: float
    certificate_ratio: float

    def to_json(self) -> dict:
        return {
            "cache_words": self.cache_words,
            "tile": list(self.blocks),
            "traffic_words": self.traffic_words,
            "lower_bound_words": self.lower_bound_words,
            "certificate_ratio": self.certificate_ratio,
        }

    @classmethod
    def from_json(cls, blob: Mapping) -> "ParetoPoint":
        return cls(
            cache_words=int(blob["cache_words"]),
            blocks=tuple(int(b) for b in blob["tile"]),
            traffic_words=int(blob["traffic_words"]),
            lower_bound_words=float(blob["lower_bound_words"]),
            certificate_ratio=float(blob["certificate_ratio"]),
        )


@dataclass(frozen=True)
class TuneReport:
    """One tuning run, certified against the Theorem lower bound.

    ``plan`` is the winning :class:`~repro.plan.TilePlan`: the analytic
    seed plan (exponent, lambdas and lower bound untouched — they
    certify the *bound*, not the tile) with ``tile`` replaced by the
    tuned winner.  ``seed_*`` keeps the analytically-rounded tile's
    measurements so the report always shows what tuning bought.
    """

    plan: TilePlan
    strategy: str
    max_evaluations: int
    evaluations_used: int
    seed_blocks: tuple[int, ...]
    seed_traffic_words: int
    tuned_traffic_words: int
    lower_bound_words: float
    accesses: int
    pareto: tuple[ParetoPoint, ...]
    candidates: tuple[TileEvaluation, ...] = ()

    @property
    def tuned_blocks(self) -> tuple[int, ...]:
        return self.plan.tile.blocks

    @property
    def seed_ratio(self) -> float:
        """Certificate ratio of the analytically-rounded seed tile."""
        return self.seed_traffic_words / self.lower_bound_words

    @property
    def tuned_ratio(self) -> float:
        """Certificate ratio ``measured / bound`` of the winner (>= 1)."""
        return self.tuned_traffic_words / self.lower_bound_words

    @property
    def improvement(self) -> float:
        """Seed-over-tuned traffic factor (1.0 = tuning found nothing)."""
        return self.seed_traffic_words / self.tuned_traffic_words

    def summary(self) -> str:
        return (
            f"{self.plan.nest.name}: M={self.plan.cache_words} "
            f"seed tile={list(self.seed_blocks)} ({self.seed_ratio:.3f}x bound) -> "
            f"tuned tile={list(self.tuned_blocks)} ({self.tuned_ratio:.3f}x bound) "
            f"[{self.strategy}, {self.evaluations_used} evaluations]"
        )

    def to_json(self) -> dict:
        """The wire payload (JSON-safe, deterministic for one request).

        ``cache_hit`` is session provenance, not part of the answer — it
        rides on the Result envelope's ``meta`` (like analyze payloads),
        so one request yields one payload whether the plan cache was
        cold or warm.
        """
        plan_json = self.plan.to_json()
        plan_json.pop("cache_hit", None)
        return {
            "plan": plan_json,
            "strategy": self.strategy,
            "max_evaluations": self.max_evaluations,
            "evaluations_used": self.evaluations_used,
            "accesses": self.accesses,
            "seed": {
                "tile": list(self.seed_blocks),
                "traffic_words": self.seed_traffic_words,
                "certificate_ratio": self.seed_ratio,
            },
            "tuned": {
                "tile": list(self.tuned_blocks),
                "traffic_words": self.tuned_traffic_words,
                "certificate_ratio": self.tuned_ratio,
            },
            "lower_bound_words": self.lower_bound_words,
            "improvement": self.improvement,
            "pareto": [point.to_json() for point in self.pareto],
            "candidates": [c.to_json() for c in self.candidates],
        }

    @classmethod
    def from_json(cls, blob: Mapping) -> "TuneReport":
        """Inverse of :meth:`to_json` (ratios are derived, not stored)."""
        return cls(
            plan=TilePlan.from_json(dict(blob["plan"])),
            strategy=str(blob["strategy"]),
            max_evaluations=int(blob["max_evaluations"]),
            evaluations_used=int(blob["evaluations_used"]),
            seed_blocks=tuple(int(b) for b in blob["seed"]["tile"]),
            seed_traffic_words=int(blob["seed"]["traffic_words"]),
            tuned_traffic_words=int(blob["tuned"]["traffic_words"]),
            lower_bound_words=float(blob["lower_bound_words"]),
            accesses=int(blob["accesses"]),
            pareto=tuple(ParetoPoint.from_json(p) for p in blob["pareto"]),
            candidates=tuple(
                TileEvaluation.from_json(c) for c in blob.get("candidates", ())
            ),
        )


@dataclass(frozen=True)
class HierarchyBoundary:
    """One cache boundary of a hierarchy run, certified.

    ``plan`` is this level's :class:`~repro.plan.TilePlan` with the
    *nested* integer tile (at the innermost level, the tuned winner);
    ``traffic_words`` is the measured one-pass traffic of the winning
    innermost walk across this boundary, ``seed_traffic_words`` the
    analytic seed walk's.  The certificate ratio compares measured
    traffic against the level's Theorem bound (``>= 1`` always — the
    bound holds for any schedule).
    """

    plan: TilePlan
    seed_blocks: tuple[int, ...]
    traffic_words: int
    seed_traffic_words: int

    @property
    def cache_words(self) -> int:
        return self.plan.cache_words

    @property
    def blocks(self) -> tuple[int, ...]:
        return self.plan.tile.blocks

    @property
    def lower_bound_words(self) -> float:
        assert self.plan.lower_bound is not None
        return self.plan.lower_bound.value

    @property
    def certificate_ratio(self) -> float:
        bound = self.lower_bound_words
        return self.traffic_words / bound if bound > 0 else float("inf")

    @property
    def seed_certificate_ratio(self) -> float:
        bound = self.lower_bound_words
        return self.seed_traffic_words / bound if bound > 0 else float("inf")

    def to_json(self) -> dict:
        plan_json = self.plan.to_json()
        plan_json.pop("cache_hit", None)
        # The nest rides once on the report envelope; repeating its
        # loops/bounds/arrays in every level's plan would grow the wire
        # payload linearly in redundant copies (from_json reinjects it).
        for key in ("name", "loops", "bounds", "arrays"):
            plan_json.pop(key, None)
        return {
            "cache_words": self.cache_words,
            "plan": plan_json,
            "tile": list(self.blocks),
            "seed_tile": list(self.seed_blocks),
            "traffic_words": self.traffic_words,
            "seed_traffic_words": self.seed_traffic_words,
            "lower_bound_words": self.lower_bound_words,
            "certificate_ratio": self.certificate_ratio,
            "seed_certificate_ratio": self.seed_certificate_ratio,
        }

    @classmethod
    def from_json(cls, blob: Mapping, nest_json: Mapping | None = None) -> "HierarchyBoundary":
        """Inverse of :meth:`to_json` (ratios are derived, not stored).

        ``nest_json`` reinjects the report-level nest the serializer
        stripped from each level's plan payload.
        """
        plan_blob = dict(blob["plan"])
        if nest_json is not None:
            plan_blob.update(dict(nest_json))
        return cls(
            plan=TilePlan.from_json(plan_blob),
            seed_blocks=tuple(int(b) for b in blob["seed_tile"]),
            traffic_words=int(blob["traffic_words"]),
            seed_traffic_words=int(blob["seed_traffic_words"]),
        )


@dataclass(frozen=True)
class HierarchyReport:
    """One hierarchy run: nested plans, per-boundary certificates, tuning.

    ``boundaries`` is innermost-first; all levels share one measured
    trace (the innermost tile walk — outer levels only group its tiles),
    so every boundary's traffic comes from the same one-pass curve.
    With ``evaluations_used == 1`` only the analytic seed was measured
    (``tuned == seed``): the report is then a pure serving answer.  The
    tuning objective is the *total* boundary traffic, and the seed-first
    tie-break guarantees ``tuned_total_traffic_words <=
    seed_total_traffic_words``.
    """

    strategy: str
    max_evaluations: int
    evaluations_used: int
    accesses: int
    canonical_key: str
    boundaries: tuple[HierarchyBoundary, ...]
    candidates: tuple[TileEvaluation, ...] = ()

    @property
    def nest(self):
        return self.boundaries[0].plan.nest

    @property
    def budget(self) -> str:
        return self.boundaries[0].plan.budget

    @property
    def capacities(self) -> tuple[int, ...]:
        return tuple(b.cache_words for b in self.boundaries)

    @property
    def seed_blocks(self) -> tuple[int, ...]:
        """The analytic nested innermost tile (candidate #0)."""
        return self.boundaries[0].seed_blocks

    @property
    def tuned_blocks(self) -> tuple[int, ...]:
        """The winning innermost tile (equals the seed when untuned)."""
        return self.boundaries[0].blocks

    @property
    def tiles(self) -> tuple[tuple[int, ...], ...]:
        """Per-level integer blocks, innermost first (nested)."""
        return tuple(b.blocks for b in self.boundaries)

    @property
    def seed_total_traffic_words(self) -> int:
        return sum(b.seed_traffic_words for b in self.boundaries)

    @property
    def tuned_total_traffic_words(self) -> int:
        return sum(b.traffic_words for b in self.boundaries)

    @property
    def improvement(self) -> float:
        """Seed-over-tuned total-traffic factor (1.0 = tuning found nothing)."""
        return self.seed_total_traffic_words / self.tuned_total_traffic_words

    @property
    def cache_hit(self) -> bool:
        return self.boundaries[0].plan.cache_hit

    def summary(self) -> str:
        caps = " < ".join(str(c) for c in self.capacities)
        rows = ", ".join(
            f"M={b.cache_words}: {b.traffic_words} ({b.certificate_ratio:.2f}x bound)"
            for b in self.boundaries
        )
        return (
            f"{self.nest.name} on {caps} words [{self.budget}]: "
            f"tile={list(self.tuned_blocks)} {rows} "
            f"[{self.strategy}, {self.evaluations_used} evaluations]"
        )

    def to_json(self) -> dict:
        """The wire payload — deterministic for one request, like tune.

        ``cache_hit`` is session provenance and rides on the Result
        envelope's ``meta``, never the payload.
        """
        return {
            "nest": self.nest.to_json(),
            "capacities": list(self.capacities),
            "budget": self.budget,
            "canonical_key": self.canonical_key,
            "strategy": self.strategy,
            "max_evaluations": self.max_evaluations,
            "evaluations_used": self.evaluations_used,
            "accesses": self.accesses,
            "seed": {
                "tile": list(self.seed_blocks),
                "total_traffic_words": self.seed_total_traffic_words,
            },
            "tuned": {
                "tile": list(self.tuned_blocks),
                "total_traffic_words": self.tuned_total_traffic_words,
            },
            "improvement": self.improvement,
            "boundaries": [b.to_json() for b in self.boundaries],
            "candidates": [c.to_json() for c in self.candidates],
        }

    @classmethod
    def from_json(cls, blob: Mapping) -> "HierarchyReport":
        """Inverse of :meth:`to_json` (totals and ratios are derived)."""
        return cls(
            strategy=str(blob["strategy"]),
            max_evaluations=int(blob["max_evaluations"]),
            evaluations_used=int(blob["evaluations_used"]),
            accesses=int(blob["accesses"]),
            canonical_key=str(blob["canonical_key"]),
            boundaries=tuple(
                HierarchyBoundary.from_json(b, nest_json=blob["nest"])
                for b in blob["boundaries"]
            ),
            candidates=tuple(
                TileEvaluation.from_json(c) for c in blob.get("candidates", ())
            ),
        )


def build_pareto(
    evaluations: Sequence[TileEvaluation],
    capacities: Sequence[int],
    bounds_by_capacity: Mapping[int, float],
) -> tuple[ParetoPoint, ...]:
    """Capacity→best-tile front over one run's evaluations.

    For each capacity, the evaluated tile with the least measured
    traffic there (the shared :func:`~repro.tune.evaluate.best_evaluation`
    tie-break: earliest evaluation — i.e. the seed — wins ties).
    """
    points = []
    for capacity in sorted({int(c) for c in capacities}):
        best = best_evaluation(evaluations, capacity)
        bound = float(bounds_by_capacity[capacity])
        traffic = best.traffic_at(capacity)
        points.append(
            ParetoPoint(
                cache_words=capacity,
                blocks=best.blocks,
                traffic_words=traffic,
                lower_bound_words=bound,
                certificate_ratio=traffic / bound if bound > 0 else float("inf"),
            )
        )
    return tuple(points)
