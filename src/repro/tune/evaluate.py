"""Candidate scoring: the batched trace engine in the tuning loop.

Evaluating a candidate tile means generating its word-level trace with
the vectorised generator and running the one-pass stack-distance
simulation (:func:`repro.simulate.nest_miss_curve`).  The pay-off of
the one-pass engine is that *every* cache capacity is priced by the
same run: one evaluation yields the exact LRU traffic (misses +
write-backs, the words crossing the cache boundary) at the tuning
capacity **and** at every capacity of the requested Pareto axis, so a
single tuning run produces a whole capacity→best-tile front for free.

Evaluations are embarrassingly parallel across candidates;
:func:`evaluate_candidates` fans them out to worker processes exactly
like the plan engine fans out structure solves (JSON-able payloads
only, serial fallback when no usable pool exists).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..obs import MetricsRegistry, merge_worker_delta
from ..simulate.multilevel import nest_miss_curve
from ..util import deadline, faults

__all__ = [
    "TileEvaluation",
    "best_evaluation",
    "best_evaluation_multi",
    "evaluate_tile",
    "evaluate_candidates",
]

#: Below this many candidates a process pool cannot pay for its own
#: startup (fork + numpy import per worker dwarfs a few tiny traces), so
#: smaller batches — coordinate descent's per-axis variants, random
#: restarts — always take the serial path.
MIN_PARALLEL_CANDIDATES = 8


@dataclass(frozen=True)
class TileEvaluation:
    """Measured LRU traffic of one tile at every requested capacity.

    ``traffic[c]`` is the exact words moved across a capacity-``c``
    cache boundary (misses + write-backs, word-granular lines — the
    paper's model) by the tiled execution's trace.
    """

    blocks: tuple[int, ...]
    accesses: int
    traffic: Mapping[int, int]

    def traffic_at(self, capacity: int) -> int:
        return self.traffic[int(capacity)]

    def total_traffic(self, capacities: Sequence[int]) -> int:
        """Summed traffic across several boundaries (multi-level objective).

        The words crossing *every* cache boundary of a hierarchy, priced
        from the same one-pass curve — what the multi-level tuner
        minimises and what the hierarchy report totals.
        """
        return sum(self.traffic[int(c)] for c in capacities)

    def to_json(self) -> dict:
        return {
            "tile": list(self.blocks),
            "accesses": self.accesses,
            "traffic": {str(c): int(w) for c, w in sorted(self.traffic.items())},
        }

    @classmethod
    def from_json(cls, blob: Mapping) -> "TileEvaluation":
        return cls(
            blocks=tuple(int(b) for b in blob["tile"]),
            accesses=int(blob["accesses"]),
            traffic={int(c): int(w) for c, w in blob["traffic"].items()},
        )


def evaluate_tile(
    nest: LoopNest,
    blocks: Sequence[int],
    capacities: Sequence[int],
    use_native: bool | None = None,
) -> TileEvaluation:
    """One candidate through the one-pass simulator, all capacities at once."""
    tile = TileShape(nest=nest, blocks=tuple(int(b) for b in blocks))
    curve = nest_miss_curve(nest, tile=tile, use_native=use_native)
    caps = np.asarray(sorted({int(c) for c in capacities}), dtype=np.int64)
    _, misses, writebacks = curve.sweep(caps)
    return TileEvaluation(
        blocks=tile.blocks,
        accesses=curve.accesses,
        traffic={
            int(c): int(m + w) for c, m, w in zip(caps.tolist(), misses, writebacks)
        },
    )


def _evaluate_worker(payload: tuple[dict, list[int], list[int], bool | None]) -> dict:
    """Worker entry point: JSON in, JSON out (start-method agnostic).

    Returns ``{"evaluation": ..., "metrics": ...}`` — the evaluation
    plus a metrics-registry snapshot the parent merges, so worker-side
    observations survive the process boundary losslessly.
    """
    if faults.active("worker-crash"):
        # Hard exit, not an exception: a real crashed worker (OOM kill,
        # segfault) takes the process down without unwinding, which is
        # exactly what produces BrokenProcessPool in the parent.
        os._exit(17)
    nest_json, blocks, capacities, use_native = payload
    nest = LoopNest.from_json(nest_json)
    registry = MetricsRegistry()
    started = time.perf_counter()
    evaluation = evaluate_tile(nest, blocks, capacities, use_native=use_native)
    registry.histogram("repro_worker_eval_seconds").observe(
        time.perf_counter() - started
    )
    registry.counter("repro_worker_evaluations_total").inc()
    return {"evaluation": evaluation.to_json(), "metrics": registry.snapshot()}


def evaluate_candidates(
    nest: LoopNest,
    candidates: Sequence[Sequence[int]],
    capacities: Sequence[int],
    workers: int | None = None,
    use_native: bool | None = None,
    events: dict | None = None,
) -> list[TileEvaluation]:
    """Evaluate many candidates, in order; parallel when it can pay.

    ``workers`` follows the plan-engine convention: ``0``/``1`` force
    the serial path, ``None`` lets the executor pick.  A pool is only
    attempted for :data:`MIN_PARALLEL_CANDIDATES` or more candidates
    (below that, pool startup costs more than the simulations), and any
    pool failure falls back to serial — the answers are identical either
    way.  Two failure classes are told apart:

    * the pool never starts (restricted sandbox, missing semaphores) —
      the silent serial fallback this module always had;
    * the pool **breaks mid-run** (a worker crashed) — completed
      evaluations are kept, the missing candidates are re-evaluated
      serially, and ``events["degraded"]`` is set so service surfaces
      can report ``degraded: true`` without perturbing fault-free
      payloads.
    """
    blocks_list = [tuple(int(b) for b in blocks) for blocks in candidates]
    if len(blocks_list) >= MIN_PARALLEL_CANDIDATES and workers not in (0, 1):
        nest_json = nest.to_json()
        payloads = [
            (nest_json, list(blocks), list(capacities), use_native)
            for blocks in blocks_list
        ]
        done: dict[int, TileEvaluation] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_evaluate_worker, p) for p in payloads]
                for idx, future in enumerate(futures):
                    blob = future.result()
                    merge_worker_delta(blob["metrics"])
                    done[idx] = TileEvaluation.from_json(blob["evaluation"])
                return [done[i] for i in range(len(blocks_list))]
        except BrokenProcessPool:
            # Mid-run crash: keep the survivors, finish the rest serially.
            if events is not None:
                events["degraded"] = True
                events.setdefault("degraded_reasons", []).append("tune-pool-crash")
            return [
                done.get(i)
                or evaluate_tile(
                    nest, blocks_list[i], capacities, use_native=use_native
                )
                for i in range(len(blocks_list))
            ]
        except (OSError, RuntimeError):
            pass
    out = []
    for blocks in blocks_list:
        deadline.checkpoint("tune-candidate")
        out.append(evaluate_tile(nest, blocks, capacities, use_native=use_native))
    return out


def best_evaluation(
    evaluations: Sequence[TileEvaluation], capacity: int
) -> TileEvaluation:
    """Minimum measured traffic at ``capacity``; ties keep the earliest entry.

    The one tie-break rule of the subsystem: evaluations are ordered
    seed-first, so "earliest wins" is exactly the documented
    never-worse-than-seed guarantee.  Shared by the search driver
    (overall winner) and the Pareto front (per-capacity winners).
    """
    return best_evaluation_multi(evaluations, (capacity,))


def best_evaluation_multi(
    evaluations: Sequence[TileEvaluation], capacities: Sequence[int]
) -> TileEvaluation:
    """Minimum *summed* traffic over ``capacities``; earliest wins ties.

    The multi-boundary generalisation of :func:`best_evaluation` (one
    capacity reduces to it exactly): the winner moves the fewest words
    across all the hierarchy's boundaries together, and the seed-first
    tie-break keeps the tuned-never-worse-than-seed guarantee for the
    *total* just as it does per capacity.
    """
    best = evaluations[0]
    best_total = best.total_traffic(capacities)
    for evaluation in evaluations[1:]:
        total = evaluation.total_traffic(capacities)
        if total < best_total:
            best, best_total = evaluation, total
    return best
