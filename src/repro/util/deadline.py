"""Cooperative per-request deadlines for the serving stack.

The exact-rational simplex has no preemption point the OS can use: a
cold canonical structure is one long pure-Python loop.  Instead the
solver loops poll :func:`checkpoint` at their natural boundaries (LP
pivot, mpLP basis enumeration, plan-batch request, tune candidate
batch), and a request that has outrun its budget raises
:class:`DeadlineExceeded` there — which the Session/HTTP layers convert
into a structured 504 envelope.

The ambient deadline travels in a :class:`contextvars.ContextVar`, so
it follows the request through nested calls without threading an
argument through every solver signature, and it is inherited only
within the requesting thread — concurrent HTTP handlers never see each
other's budgets.  The checkpoints double as trace *ticks*: when a
:mod:`repro.obs` request trace is ambient, the time since its previous
event is attributed to the checkpoint's stage name.  The idle fast path
(no deadline, no trace) is two ContextVar reads plus falsy checks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Iterator

from . import faults
from ..obs import trace as obs_trace

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceeded(RuntimeError):
    """A cooperative checkpoint observed an expired deadline.

    ``budget_ms`` is the original budget; ``where`` names the checkpoint
    that noticed (e.g. ``"lp-pivot"``) for the error envelope's detail.
    """

    def __init__(self, budget_ms: float, where: str = ""):
        at = f" at {where}" if where else ""
        super().__init__(f"deadline of {budget_ms:g} ms exceeded{at}")
        self.budget_ms = budget_ms
        self.where = where


class Deadline:
    """A monotonic-clock budget of ``budget_ms`` milliseconds from creation."""

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: float):
        budget_ms = float(budget_ms)
        if budget_ms <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_ms = budget_ms
        self._expires_at = time.monotonic() + budget_ms / 1000.0

    def remaining_ms(self) -> float:
        return max(0.0, (self._expires_at - time.monotonic()) * 1000.0)

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, where: str = "") -> None:
        if self.expired():
            raise DeadlineExceeded(self.budget_ms, where)


_current: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline governing the current context, if any."""
    return _current.get()


def activate(deadline: Deadline | None) -> Token:
    """Install ``deadline`` as the ambient deadline; pair with :func:`deactivate`.

    The token API exists for callers whose enter/exit spans separate
    methods (the HTTP handler installs in body parsing, clears in the
    response guard); everything else should use :func:`deadline_scope`.
    """
    return _current.set(deadline)


def deactivate(token: Token) -> None:
    _current.reset(token)


@contextmanager
def deadline_scope(budget: "Deadline | float | int | None") -> Iterator[Deadline | None]:
    """Run the block under a deadline (ms number or :class:`Deadline`).

    ``None`` is a no-op scope, so call sites can pass an optional
    ``deadline_ms`` straight through.  An already-ambient deadline is
    replaced for the duration of the block (innermost wins; the service
    layers only ever install one per request).
    """
    if budget is None:
        yield None
        return
    deadline = budget if isinstance(budget, Deadline) else Deadline(float(budget))
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def checkpoint(where: str = "") -> None:
    """Poll the ambient deadline; raise :class:`DeadlineExceeded` if spent.

    Also hosts the ``slow-lp`` injection point: with that fault armed,
    each checkpoint stalls a few milliseconds, so tests can force a
    deadline to expire mid-solve deterministically without a genuinely
    huge problem instance.
    """
    deadline = _current.get()
    trace = obs_trace.current_trace()
    if trace is not None and where:
        trace.tick(where)
    if deadline is None and not faults.any_active():
        return
    if faults.active("slow-lp"):
        time.sleep(0.005)
    if deadline is not None:
        deadline.check(where)
