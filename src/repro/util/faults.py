"""Deterministic fault injection for the resilience test suite.

Production code never *needs* this module: every injection point is a
cheap membership test that short-circuits to "no faults" in the common
case.  Tests (and the CI chaos-smoke job) arm faults either

* in-process, with the :func:`inject` context manager, or
* across process boundaries, via the ``REPRO_FAULTS`` environment
  variable (a comma-separated list of fault names) — the only channel
  that reaches process-pool workers, which inherit the parent
  environment at fork/spawn time.

The catalogue is closed: arming an unknown name raises immediately, so
a typo in a test arms nothing silently.

Injection points live next to the code they perturb:

``slow-lp``
    :func:`repro.util.deadline.checkpoint` sleeps a few milliseconds per
    LP pivot, so a tiny deadline reliably expires mid-simplex.
``worker-crash``
    Process-pool workers (:mod:`repro.plan.batch`,
    :mod:`repro.tune.evaluate`) hard-exit, producing a real
    ``BrokenProcessPool`` mid-run.
``corrupt-cache-read``
    :meth:`repro.plan.Planner.load` sees a truncated cache file.
``native-kernel``
    :func:`repro.machine.native.get_kernel` reports the native LRU
    kernel as failed, exercising the numpy degradation path.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ENV_VAR",
    "FAULTS",
    "InjectedFault",
    "active",
    "any_active",
    "inject",
]

#: Environment variable naming faults armed for this process *and* any
#: worker processes it spawns.
ENV_VAR = "REPRO_FAULTS"

#: The closed catalogue of injectable faults.
FAULTS = ("slow-lp", "worker-crash", "corrupt-cache-read", "native-kernel")

_lock = threading.Lock()
#: Faults armed in-process via :func:`inject` (multiset: nested arming
#: of the same fault stays active until the outermost scope exits).
_local: dict[str, int] = {}

# Parsing the env var on every `active()` call would put a string split
# on the LP pivot hot path; cache by raw value instead (the var rarely
# changes, and never mid-request).
_env_cache: tuple[str, frozenset[str]] = ("", frozenset())


class InjectedFault(RuntimeError):
    """Raised (or caused) by an armed injection point.

    ``point`` names the fault so error envelopes can say *which*
    injection fired.
    """

    def __init__(self, point: str):
        super().__init__(f"injected fault: {point}")
        self.point = point


def _validate(names: tuple[str, ...]) -> None:
    unknown = [n for n in names if n not in FAULTS]
    if unknown:
        raise ValueError(f"unknown fault(s) {unknown!r}; expected from {FAULTS}")


def _env_faults() -> frozenset[str]:
    global _env_cache
    raw = os.environ.get(ENV_VAR, "")
    cached_raw, cached = _env_cache
    if raw == cached_raw:
        return cached
    names = frozenset(part.strip() for part in raw.split(",") if part.strip())
    _env_cache = (raw, names)
    return names


def any_active() -> bool:
    """Fast path for hot loops: is *any* fault armed at all?"""
    return bool(_local) or bool(os.environ.get(ENV_VAR))


def active(point: str) -> bool:
    """Is fault ``point`` armed (in-process or via the environment)?"""
    if _local and _local.get(point, 0) > 0:
        return True
    if os.environ.get(ENV_VAR):
        return point in _env_faults()
    return False


@contextmanager
def inject(*points: str, env: bool = False) -> Iterator[None]:
    """Arm one or more faults for the duration of the ``with`` block.

    ``env=True`` additionally publishes the faults through
    :data:`ENV_VAR` so process-pool workers spawned inside the block
    inherit them; the previous value is restored on exit.
    """
    _validate(points)
    prior_env = os.environ.get(ENV_VAR)
    with _lock:
        for point in points:
            _local[point] = _local.get(point, 0) + 1
    if env:
        armed = set(points)
        if prior_env:
            armed |= {p.strip() for p in prior_env.split(",") if p.strip()}
        os.environ[ENV_VAR] = ",".join(sorted(armed))
    try:
        yield
    finally:
        with _lock:
            for point in points:
                count = _local.get(point, 0) - 1
                if count > 0:
                    _local[point] = count
                else:
                    _local.pop(point, None)
        if env:
            if prior_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = prior_env
