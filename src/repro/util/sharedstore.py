"""Sharded cross-process plan store: one solve, every process warm.

The planner's JSON persistence (``Planner.save``/``load``) is a
whole-cache snapshot: good for one process checkpointing itself, wrong
for a fleet — concurrent writers clobber each other's solves and a
reader pays a full-file parse per refresh.  :class:`SharedPlanStore`
promotes that format to a directory of **shards**, each a small JSON
file owning a stable subset of canonical keys (``sha256(key) mod
shards``), so that:

* writers merge-and-replace only the one shard their key hashes to,
  under an ``fcntl`` file lock, with the same ``mkstemp`` +
  ``os.replace`` atomicity as the planner cache — concurrent solvers
  never lose each other's entries;
* readers stat-cache each shard by ``(mtime_ns, size)`` and re-parse
  only shards that actually changed, so probing a warm store costs a
  ``stat()`` and a dict lookup, not JSON decoding;
* every shard carries the plan-cache schema ``version`` and a content
  ``checksum``: a version bump (or torn/corrupt bytes) **invalidates**
  the shard — it reads as empty and the next writer rebuilds it, so a
  new piece format can never poison a running fleet.

The store is deliberately dumb about values: it maps a canonical
structure key to its mpLP piece list (the planner's own JSON piece
encoding) and keeps counters; interpretation stays in
:mod:`repro.plan.planner`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..obs.trace import span as _span

__all__ = ["SharedPlanStore", "STORE_SCHEMA_VERSION"]

#: Tracks the planner's plan-cache schema: bump both together.
STORE_SCHEMA_VERSION = 1


def _checksum(entries: dict) -> str:
    """Content hash of a shard's entry map (canonical JSON, sha256)."""
    canon = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class SharedPlanStore:
    """A directory of versioned, lock-guarded JSON shards.

    Parameters
    ----------
    root:
        Directory holding the shards (created if missing).
    shards:
        Number of shard files; keys spread by ``sha256(key) % shards``.
    version:
        Schema version stamped into (and required of) every shard.
        Entries written under any other version are discarded on read
        and overwritten on the next put — versioned invalidation.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        shards: int = 8,
        version: int = STORE_SCHEMA_VERSION,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards = int(shards)
        self.version = int(version)
        self._lock = threading.Lock()
        #: shard index -> ((mtime_ns, size), parsed entries)
        self._read_cache: dict[int, tuple[tuple[int, int], dict]] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.put_failures = 0
        self.invalidated = 0

    # -- layout -------------------------------------------------------------

    def _shard_index(self, key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % self.shards

    def _shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:03d}.json"

    def _lock_path(self, index: int) -> Path:
        return self.root / f"shard-{index:03d}.lock"

    @contextlib.contextmanager
    def _shard_lock(self, index: int):
        """Exclusive cross-process lock for one shard's writers."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self._lock_path(index), "a+") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- reading ------------------------------------------------------------

    def _parse_shard(self, text: str) -> dict | None:
        """Entries of one shard, or None when the shard is untrustworthy."""
        try:
            blob = json.loads(text)
        except ValueError:
            return None
        if not isinstance(blob, dict) or not isinstance(blob.get("entries"), dict):
            return None
        if blob.get("version") != self.version:
            return None
        checksum = blob.get("checksum")
        if checksum is not None and checksum != _checksum(blob["entries"]):
            return None
        return blob["entries"]

    def _shard_entries(self, index: int) -> dict:
        """Current entries of one shard (stat-cached; invalid reads count)."""
        path = self._shard_path(index)
        try:
            stat = path.stat()
        except OSError:
            with self._lock:
                self._read_cache.pop(index, None)
            return {}
        stamp = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            cached = self._read_cache.get(index)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        try:
            text = path.read_text()
        except OSError:
            return {}
        entries = self._parse_shard(text)
        if entries is None:
            # Stale version or torn bytes: treat as empty; the next
            # writer rebuilds the shard under the current version.
            with self._lock:
                self.invalidated += 1
                self._read_cache[index] = (stamp, {})
            return {}
        with self._lock:
            self._read_cache[index] = (stamp, entries)
        return entries

    def get(self, key: str) -> list[dict] | None:
        """The stored piece list for ``key``, or None (counts hit/miss)."""
        with _span("shared-store-read"):
            entry = self._shard_entries(self._shard_index(key)).get(key)
            with self._lock:
                if entry is None:
                    self.misses += 1
                else:
                    self.hits += 1
            if entry is None:
                return None
            pieces = entry.get("pieces")
            return pieces if isinstance(pieces, list) else None

    def keys(self) -> list[str]:
        """All keys currently stored, across every shard."""
        out: list[str] = []
        for index in range(self.shards):
            out.extend(self._shard_entries(index))
        return out

    def __len__(self) -> int:
        return len(self.keys())

    # -- writing ------------------------------------------------------------

    def put(self, key: str, pieces: list[dict]) -> bool:
        """Merge one entry into its shard; best-effort (False on I/O error).

        Read-merge-write under the shard's file lock: concurrent putters
        serialize, each landing an internally-consistent shard via
        atomic replace, so no put ever erases another key.
        """
        index = self._shard_index(key)
        path = self._shard_path(index)
        try:
            with _span("shared-store-publish"), self._shard_lock(index):
                entries: dict = {}
                try:
                    current = self._parse_shard(path.read_text())
                except OSError:
                    current = None
                if current is not None:
                    entries = dict(current)
                elif path.exists():
                    # Unreadable or stale-version shard: rebuild it.
                    with self._lock:
                        self.invalidated += 1
                entries[key] = {"pieces": pieces}
                payload = {
                    "version": self.version,
                    "checksum": _checksum(entries),
                    "entries": entries,
                }
                fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(payload, handle, indent=1)
                        handle.write("\n")
                    os.replace(tmp, path)
                except OSError:
                    with contextlib.suppress(OSError):
                        os.unlink(tmp)
                    raise
        except OSError:
            with self._lock:
                self.put_failures += 1
            return False
        with self._lock:
            self.puts += 1
            self._read_cache.pop(index, None)
        return True

    # -- introspection ------------------------------------------------------

    def stats_dict(self) -> dict:
        """Counters for ``/v1/health`` and the soak's assertions."""
        with self._lock:
            return {
                "version": self.version,
                "shards": self.shards,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "put_failures": self.put_failures,
                "invalidated": self.invalidated,
            }
