"""Shared exact-arithmetic and enumeration utilities."""
