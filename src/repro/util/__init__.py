"""Shared exact-arithmetic, enumeration, and resilience utilities."""

from .deadline import Deadline, DeadlineExceeded, checkpoint, current_deadline, deadline_scope
from .faults import FAULTS, InjectedFault, inject

__all__ = [
    "FAULTS",
    "Deadline",
    "DeadlineExceeded",
    "InjectedFault",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
    "inject",
]
