"""Exact rational dense linear algebra (tiny systems only).

Used by vertex enumeration (:mod:`repro.core.mplp`,
:mod:`repro.core.alpha_family`) where candidate vertices are solutions
of square systems formed from tight constraints.  Everything is
``fractions.Fraction``; sizes never exceed a few dozen, so cubic
Gaussian elimination is ample.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = ["solve_square", "rank", "SingularMatrixError"]


class SingularMatrixError(ValueError):
    """Raised when a square solve meets a singular matrix."""


def solve_square(A: Sequence[Sequence[Fraction]], b: Sequence[Fraction]) -> list[Fraction]:
    """Solve ``A x = b`` exactly for square ``A``; raises if singular."""
    n = len(A)
    if any(len(row) != n for row in A) or len(b) != n:
        raise ValueError("shape mismatch in solve_square")
    # Augmented matrix, partial pivoting on exact nonzero entries.
    M = [[Fraction(v) for v in row] + [Fraction(b[i])] for i, row in enumerate(A)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if M[r][col] != 0), None)
        if pivot_row is None:
            raise SingularMatrixError(f"singular at column {col}")
        M[col], M[pivot_row] = M[pivot_row], M[col]
        inv = Fraction(1) / M[col][col]
        M[col] = [v * inv for v in M[col]]
        for r in range(n):
            if r != col and M[r][col] != 0:
                factor = M[r][col]
                M[r] = [rv - factor * cv for rv, cv in zip(M[r], M[col])]
    return [M[i][n] for i in range(n)]


def rank(A: Sequence[Sequence[Fraction]]) -> int:
    """Exact rank of a rectangular rational matrix."""
    if not A:
        return 0
    rows = [[Fraction(v) for v in row] for row in A]
    n_cols = len(rows[0])
    r = 0
    for col in range(n_cols):
        pivot_row = next((i for i in range(r, len(rows)) if rows[i][col] != 0), None)
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        inv = Fraction(1) / rows[r][col]
        rows[r] = [v * inv for v in rows[r]]
        for i in range(len(rows)):
            if i != r and rows[i][col] != 0:
                factor = rows[i][col]
                rows[i] = [iv - factor * rv for iv, rv in zip(rows[i], rows[r])]
        r += 1
        if r == len(rows):
            break
    return r
