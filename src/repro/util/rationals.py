"""Exact-rational helpers shared across the library.

The paper's quantities live in two numeric worlds:

* **Combinatorial data** — loop bounds ``L_i``, cache size ``M`` — are
  exact positive integers.
* **Log-space data** — ``beta_i = log_M L_i`` and the LP variables
  ``lambda_i = log_M b_i`` — are generally irrational reals.

All linear programs in this library are solved in exact rational
arithmetic, so log-space inputs must be rational.  We provide two ways
to obtain a rational ``beta``:

1. :func:`exact_log` — when ``L`` is an exact power ``M**(p/q)`` with
   ``M**(1/q)`` an integer, returns the exact ``Fraction(p, q)``.  All
   golden tests use such configurations (powers of a common base), so
   the paper's closed forms reproduce with zero error.
2. :func:`approx_log` — otherwise, a ``Fraction`` approximation of the
   real logarithm with at least ``digits`` correct decimal digits.

Because the value function of the tiling LP is piecewise linear with a
bounded Lipschitz constant in ``beta`` (coefficients are small
rationals), an approximation error ``eps`` in ``beta`` perturbs the LP
value by ``O(d * eps)``; callers that need exactness should arrange
power-of-base inputs.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Sequence

__all__ = [
    "F",
    "exact_log",
    "approx_log",
    "log_ratio",
    "beta_vector",
    "pow_fraction",
    "integer_nth_root",
    "is_power",
    "frac_to_float",
    "format_fraction",
    "format_affine",
]

#: Short alias used pervasively in the numeric core.
F = Fraction


def integer_nth_root(value: int, n: int) -> int:
    """Return ``floor(value ** (1/n))`` computed exactly with integers.

    Uses Newton iteration on integers; exact for arbitrarily large
    ``value`` (no float rounding).
    """
    if value < 0:
        raise ValueError("value must be nonnegative")
    if n <= 0:
        raise ValueError("n must be positive")
    if value in (0, 1) or n == 1:
        return value
    # Initial guess from floats, then correct with integer Newton steps.
    guess = int(round(value ** (1.0 / n))) + 1
    while guess**n > value:
        # Newton step for f(x) = x^n - value.
        guess = ((n - 1) * guess + value // guess ** (n - 1)) // n
    while (guess + 1) ** n <= value:
        guess += 1
    return guess


def is_power(value: int, base: int) -> int | None:
    """If ``value == base**k`` for an integer ``k >= 0``, return ``k``.

    Returns ``None`` when ``value`` is not an exact power of ``base``.
    """
    if value <= 0 or base <= 1:
        return None
    k = 0
    v = value
    while v % base == 0:
        v //= base
        k += 1
    return k if v == 1 else None


def exact_log(value: int, base: int, max_den: int = 64) -> Fraction | None:
    """Exact ``log_base(value)`` as a ``Fraction``, if one exists.

    Searches denominators ``q`` up to ``max_den``: returns ``p/q`` when
    ``value**q == base**p`` exactly.  Returns ``None`` if ``value`` is
    not an exact rational power of ``base``.
    """
    if value <= 0 or base <= 1:
        raise ValueError("need value > 0 and base > 1")
    if value == 1:
        return F(0)
    # Fast path: integer exponent.
    k = is_power(value, base)
    if k is not None:
        return F(k)
    # General rational exponent p/q: value^q = base^p.  Bound p via logs.
    lf = math.log(value) / math.log(base)
    for q in range(2, max_den + 1):
        p = round(lf * q)
        if p <= 0:
            continue
        if math.gcd(p, q) != 1:
            continue
        if value**q == base**p:
            return F(p, q)
    return None


def approx_log(value: int, base: int, digits: int = 15) -> Fraction:
    """Rational approximation of ``log_base(value)``.

    Correct to roughly ``digits`` decimal digits (bounded by float64
    precision of the underlying logarithms).
    """
    if value <= 0 or base <= 1:
        raise ValueError("need value > 0 and base > 1")
    ratio = math.log(value) / math.log(base)
    return F(ratio).limit_denominator(10**digits)


def log_ratio(value: int, base: int, digits: int = 15) -> Fraction:
    """``log_base(value)`` as a Fraction: exact when possible, else approximate."""
    exact = exact_log(value, base)
    if exact is not None:
        return exact
    return approx_log(value, base, digits=digits)


def beta_vector(bounds: Sequence[int], cache_words: int, digits: int = 15) -> list[Fraction]:
    """The vector ``beta_i = log_M L_i`` for loop bounds ``L`` and cache ``M``."""
    return [log_ratio(L, cache_words, digits=digits) for L in bounds]


@lru_cache(maxsize=1 << 16)
def pow_fraction(base: int, exponent: Fraction) -> float:
    """``base ** exponent`` for a rational exponent, as a float.

    Exact integer powers are computed with integer arithmetic first so
    that e.g. ``pow_fraction(2**20, F(3, 2))`` has no error beyond the
    final float conversion.  Exponents whose numerator/denominator are
    large (typically :func:`approx_log` outputs for non-power inputs)
    skip the exact path — materialising ``base**numerator`` there would
    be astronomically expensive for no precision gain.  Pure in both
    arguments, so results are memoised (plan-cache sweeps hit the same
    ``(M, k_hat)`` pairs constantly).
    """
    exponent = F(exponent)
    if exponent.denominator == 1 and abs(exponent.numerator) <= 4096:
        if exponent.numerator >= 0:
            return float(base ** exponent.numerator)
        return 1.0 / float(base ** (-exponent.numerator))
    if exponent.denominator <= 64 and 0 <= exponent.numerator <= 4096:
        power = base**exponent.numerator
        root = integer_nth_root(power, exponent.denominator)
        if root**exponent.denominator == power:
            return float(root)
    return float(base) ** float(exponent)


def frac_to_float(values: Iterable[Fraction]) -> list[float]:
    """Convert an iterable of Fractions to floats (convenience for numpy)."""
    return [float(v) for v in values]


def format_fraction(value: Fraction) -> str:
    """Human-readable rendering: integers plain, else ``p/q``."""
    value = F(value)
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def format_affine(constant: Fraction, coeffs: Sequence[Fraction], names: Sequence[str]) -> str:
    """Render ``constant + sum_i coeffs[i] * names[i]`` compactly.

    Used to pretty-print pieces of the multiparametric value function,
    e.g. ``1 + b3`` or ``3/2``.
    """
    parts: list[str] = []
    if constant != 0:
        parts.append(format_fraction(constant))
    for coeff, name in zip(coeffs, names):
        if coeff == 0:
            continue
        if coeff == 1:
            term = name
        elif coeff == -1:
            term = f"-{name}"
        else:
            term = f"{format_fraction(coeff)}*{name}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        elif parts:
            parts.append(f"- {term[1:]}")
        else:
            parts.append(term)
    return " ".join(parts) if parts else "0"
