"""Subset-enumeration helpers for the Theorem-2 minimisation over Q.

The arbitrary-bound lower bound (paper §4.2) minimises over all subsets
``Q`` of loop indices treated as "small".  ``d`` is the loop-nest depth
(rarely more than 8 in practice), so explicit enumeration is cheap; we
nevertheless provide a pruned enumerator keyed on which loops can
possibly contribute (``beta_j < k_HBL`` is a quick necessary condition
for membership to matter).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["all_subsets", "subsets_of", "powerset_size", "lex_tuples"]


def all_subsets(n: int) -> Iterator[tuple[int, ...]]:
    """All subsets of ``range(n)`` as sorted tuples, by increasing size."""
    for size in range(n + 1):
        yield from combinations(range(n), size)


def subsets_of(items: Sequence[T]) -> Iterator[tuple[T, ...]]:
    """All subsets of ``items`` as tuples, by increasing size."""
    for size in range(len(items) + 1):
        yield from combinations(items, size)


def powerset_size(n: int) -> int:
    """Number of subsets of an ``n``-element set (``2**n``)."""
    return 1 << n


def lex_tuples(extents: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Lexicographic enumeration of the integer box ``prod_i range(extents[i])``.

    Equivalent to ``itertools.product(*map(range, extents))`` but kept
    here so call sites document intent (tile-grid walking order).
    """
    if any(e < 0 for e in extents):
        raise ValueError("extents must be nonnegative")
    if not extents:
        yield ()
        return
    idx = [0] * len(extents)
    if any(e == 0 for e in extents):
        return
    while True:
        yield tuple(idx)
        for pos in range(len(extents) - 1, -1, -1):
            idx[pos] += 1
            if idx[pos] < extents[pos]:
                break
            idx[pos] = 0
        else:
            return
