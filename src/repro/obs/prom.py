"""Prometheus text-exposition rendering (format version 0.0.4), by hand.

The repo's stdlib-only rule applies to observability too: this renders
a :class:`~repro.obs.metrics.MetricsRegistry` — plus ad-hoc live stat
dicts from the planner/shared-store/server — into the plain-text format
every Prometheus-compatible scraper speaks.  Histograms emit cumulative
``_bucket{le=...}`` series (so p50/p95/p99 are derivable server-side via
``histogram_quantile``), ``_sum`` and ``_count``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_counters", "render_registry"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels(pairs: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return "{" + rendered + "}" if rendered else ""


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_registry(registry: MetricsRegistry) -> str:
    """The full registry as exposition text (trailing newline included)."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry:
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_labels(metric.labels)} {_number(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for index, bound in enumerate(metric.bounds):
                cumulative += metric.bucket_counts[index]
                pairs = (*metric.labels, ("le", _number(bound)))
                lines.append(f"{metric.name}_bucket{_labels(pairs)} {cumulative}")
            pairs = (*metric.labels, ("le", "+Inf"))
            lines.append(f"{metric.name}_bucket{_labels(pairs)} {metric.count}")
            lines.append(
                f"{metric.name}_sum{_labels(metric.labels)} {_number(metric.sum)}")
            lines.append(
                f"{metric.name}_count{_labels(metric.labels)} {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def render_counters(name: str, label: str, values: Mapping[str, float],
                    help_text: str = "") -> str:
    """One counter family from a plain ``{label_value: count}`` stats dict.

    The planner/shared-store/server keep their own lightweight counters
    (predating the registry); this exposes them without migrating them.
    """
    lines = []
    if help_text:
        lines.append(f"# HELP {name} {_escape(help_text)}")
    lines.append(f"# TYPE {name} counter")
    for key in sorted(values):
        lines.append(f"{name}{_labels(((label, key),))} {_number(float(values[key]))}")
    return "\n".join(lines) + "\n"
