"""``repro.obs`` — metrics registry, request tracing, Prometheus text.

The observability substrate for the plan/tune/serve stack (see
``docs/observability.md``): a dependency-free mergeable
:class:`MetricsRegistry`, a per-request :class:`RequestTrace` riding a
ContextVar next to the ambient deadline, and a hand-rolled Prometheus
renderer behind ``GET /v1/metrics``.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_worker_delta,
    reset_global_registry,
)
from .prom import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prom import render_counters, render_registry
from .trace import (
    RequestTrace,
    coerce_trace_id,
    current_trace,
    enabled,
    harvest,
    mint_trace_id,
    set_enabled,
    span,
    tick,
    trace_scope,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "RequestTrace",
    "coerce_trace_id",
    "current_trace",
    "enabled",
    "global_registry",
    "harvest",
    "merge_worker_delta",
    "mint_trace_id",
    "render_counters",
    "render_registry",
    "reset_global_registry",
    "set_enabled",
    "span",
    "tick",
    "trace_scope",
]
