"""A dependency-free, process-local, *mergeable* metrics registry.

The serving stack runs across an event loop, handler threads, and
process-pool workers, so one global mutable registry per process is the
wrong end state on its own — worker processes would silently count into
registries nobody scrapes.  The design here mirrors how degradation
events already travel (``meta.degraded``): each worker builds a tiny
local :class:`MetricsRegistry`, takes a :meth:`~MetricsRegistry.snapshot`
(plain JSON types, safe across the pickle/JSON pool boundary), and the
parent :meth:`~MetricsRegistry.merge`\\ s the delta into the registry the
``/v1/metrics`` route renders.

Three metric kinds, deliberately small:

* :class:`Counter` — monotonic float ``inc()``.
* :class:`Gauge` — last-write-wins ``set()``.
* :class:`Histogram` — bounded buckets (cumulative-``le`` style like
  Prometheus), plus sum/count/max, with :meth:`Histogram.percentile`
  deriving p50/p95/p99 by linear interpolation inside the bucket that
  crosses the target rank.

Everything is guarded by one registry-wide lock; observations are a
dict lookup plus a few float adds, cheap enough for the cached HTTP
path (the bench gate pins instrumentation overhead <5%).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "reset_global_registry",
]

#: Seconds; spans 0.5 ms .. 10 s, enough for a cached splice (~0.1 ms)
#: and a cold mpLP storm alike.  The implicit +Inf bucket catches the rest.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (last write wins, including across merges)."""

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Cumulative-bucket histogram with derivable percentiles.

    ``bounds`` are upper bucket edges in ascending order; an implicit
    +Inf bucket always exists at the end, so no observation is dropped.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count",
                 "max", "_lock")
    kind = "histogram"

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock,
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """Rank-``q`` estimate (``0 < q <= 1``) by in-bucket interpolation.

        The overflow (+Inf) bucket reports the observed maximum — the
        honest answer when the target rank lands beyond the last bound.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("percentile q must be in (0, 1]")
        with self._lock:
            counts = list(self.bucket_counts)
            total = self.count
            observed_max = self.max
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(counts):
            upper = self.bounds[index] if index < len(self.bounds) else None
            if cumulative + bucket_count >= target:
                if upper is None:  # landed in +Inf: report the observed max
                    return observed_max
                if bucket_count == 0:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
            if upper is not None:
                lower = upper
        return observed_max


class MetricsRegistry:
    """A named family of counters/gauges/histograms, keyed by labels.

    ``counter/gauge/histogram`` return a live metric object — call sites
    cache these to skip the key-building dict lookup on hot paths.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], Counter | Gauge | Histogram] = {}

    # -- accessors ----------------------------------------------------------

    def _get(self, factory, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1], self._lock, **kwargs)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        metric = self._get(Counter, name, labels)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} already registered as a {metric.kind}")
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        metric = self._get(Gauge, name, labels)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} already registered as a {metric.kind}")
        return metric

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        metric = self._get(Histogram, name, labels,
                           bounds=buckets or DEFAULT_LATENCY_BUCKETS)
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} already registered as a {metric.kind}")
        return metric

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            items = sorted(self._metrics.items())
        return iter(metric for _, metric in items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- snapshot / merge (the pool-worker delta protocol) ------------------

    def snapshot(self) -> dict:
        """Plain-JSON copy of every metric, suitable for the pool boundary."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        with self._lock:
            for (name, labels), metric in sorted(self._metrics.items()):
                if isinstance(metric, Counter):
                    out["counters"].append(
                        {"name": name, "labels": list(map(list, labels)),
                         "value": metric.value})
                elif isinstance(metric, Gauge):
                    out["gauges"].append(
                        {"name": name, "labels": list(map(list, labels)),
                         "value": metric.value})
                else:
                    out["histograms"].append(
                        {"name": name, "labels": list(map(list, labels)),
                         "bounds": list(metric.bounds),
                         "bucket_counts": list(metric.bucket_counts),
                         "sum": metric.sum, "count": metric.count,
                         "max": metric.max})
        return out

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` delta in: add counters and histogram
        buckets element-wise, last-write gauges.  Lossless for counts —
        the concurrency tests pin ``sum(merged buckets) == observations``.
        """
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **dict(entry["labels"])).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **dict(entry["labels"])).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            bounds = tuple(entry["bounds"])
            hist = self.histogram(entry["name"], buckets=bounds,
                                  **dict(entry["labels"]))
            if hist.bounds != bounds:
                raise ValueError(
                    f"histogram {entry['name']}: merge bounds {bounds} != "
                    f"registered bounds {hist.bounds}")
            with hist._lock:
                for index, bucket_count in enumerate(entry["bucket_counts"]):
                    hist.bucket_counts[index] += bucket_count
                hist.sum += entry["sum"]
                hist.count += entry["count"]
                if entry["max"] > hist.max:
                    hist.max = entry["max"]

    # -- human-facing summary (Session.metrics / repro-tile stats) ----------

    def summary(self) -> dict:
        """Compact JSON view: counters/gauges by flat name, histograms with
        count/sum and p50/p95/p99 already derived."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self:
            flat = metric.name
            if metric.labels:
                flat += "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
            if isinstance(metric, Counter):
                out["counters"][flat] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][flat] = metric.value
            else:
                out["histograms"][flat] = {
                    "count": metric.count,
                    "sum": round(metric.sum, 6),
                    "max": round(metric.max, 6),
                    "p50": round(metric.percentile(0.50), 6),
                    "p95": round(metric.percentile(0.95), 6),
                    "p99": round(metric.percentile(0.99), 6),
                }
        return out


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry the server scrapes and workers merge into."""
    return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (test isolation); returns the new one."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
    return _GLOBAL


def merge_worker_delta(delta: Mapping | None) -> None:
    """Fold one pool worker's snapshot into the global registry.

    The counted merge (``repro_worker_merges_total``) is the audit trail
    the ``/v1/metrics`` acceptance bar asks for: scrape-side you can
    check that every pool dispatch shipped its observations home.
    """
    if not delta:
        return
    registry = global_registry()
    registry.merge(delta)
    registry.counter("repro_worker_merges_total").inc()
