"""Per-request tracing: a ``trace_id`` plus a stage-attributed span tree.

A :class:`RequestTrace` travels in a :class:`contextvars.ContextVar`
alongside the ambient :class:`~repro.util.deadline.Deadline`, so the
solver layers need no new parameters: the deadline checkpoints that
already punctuate the hot loops (``lp-pivot``, ``mplp-enumeration``,
``plan-batch``, ``tune-candidate``, ...) double as trace *ticks* — the
wall time since the previous trace event is attributed to the stage
named by the checkpoint.  Coarser phases that are not polling loops
(cache probe, shared-store read/publish, simulation, serialization) open
explicit :func:`span`\\ s instead.

``trace_id`` is 16 lowercase hex characters, minted at the outermost
surface (HTTP server or ``Session``) or accepted from the caller via the
``X-Trace-Id`` header / ``trace_id`` envelope field; the result's
``meta.timings`` and the structured failure envelopes echo it, so one id
correlates the client's view, the server log, and the metrics.

Tracing can be disabled wholesale with :func:`set_enabled` — the bench
overhead leg measures exactly this on/off delta, and the CI gate pins it
under 5% on the cached path.
"""

from __future__ import annotations

import random
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Iterator

__all__ = [
    "RequestTrace",
    "activate",
    "coerce_trace_id",
    "current_trace",
    "deactivate",
    "enabled",
    "harvest",
    "mint_trace_id",
    "set_enabled",
    "span",
    "tick",
    "trace_scope",
]

#: Accepted inbound ids: hex-ish tokens up to 64 chars (W3C-trace-parent
#: friendly without importing its full grammar).  Anything else is
#: ignored and a fresh id is minted — a malformed header must never 400.
_TRACE_ID_RE = re.compile(r"^[0-9a-zA-Z][0-9a-zA-Z._-]{0,63}$")

#: Span-tree safety valve: a runaway loop opening spans keeps the stage
#: totals exact but stops growing the per-span list.
_MAX_SPANS = 256

_enabled = True


def enabled() -> bool:
    """Whether new traces are being created (observation kill switch)."""
    return _enabled


def set_enabled(flag: bool) -> None:
    global _enabled
    _enabled = bool(flag)


def mint_trace_id() -> str:
    """A fresh 16-hex id.  ``random`` beats ``uuid4`` ~10x on the cached
    HTTP path, and request ids need no cryptographic strength."""
    return "%016x" % random.getrandbits(64)


def coerce_trace_id(raw: object) -> str | None:
    """A caller-supplied id if it is shaped like one, else ``None``."""
    if isinstance(raw, str) and _TRACE_ID_RE.match(raw):
        return raw
    return None


class RequestTrace:
    """One request's id, stage totals, and (bounded) span list.

    ``stages`` maps stage name -> seconds; ``tick(where)`` attributes the
    time since the previous trace event to ``where``, so polling loops
    accumulate their true duration without per-iteration span objects.
    """

    __slots__ = ("trace_id", "started", "_last", "stages", "stage_counts",
                 "spans", "_depth")

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or mint_trace_id()
        self.started = time.perf_counter()
        self._last = self.started
        self.stages: dict[str, float] = {}
        self.stage_counts: dict[str, int] = {}
        self.spans: list[dict] = []
        self._depth = 0

    def tick(self, where: str) -> None:
        now = time.perf_counter()
        self.stages[where] = self.stages.get(where, 0.0) + (now - self._last)
        self.stage_counts[where] = self.stage_counts.get(where, 0) + 1
        self._last = now

    def add_span(self, name: str, started: float, ended: float, depth: int) -> None:
        duration = ended - started
        self.stages[name] = self.stages.get(name, 0.0) + duration
        self.stage_counts[name] = self.stage_counts.get(name, 0) + 1
        if len(self.spans) < _MAX_SPANS:
            self.spans.append({
                "name": name,
                "depth": depth,
                "start_ms": round((started - self.started) * 1000.0, 3),
                "ms": round(duration * 1000.0, 3),
            })

    def total_seconds(self) -> float:
        return time.perf_counter() - self.started

    def timings_ms(self) -> dict:
        """The compact ``meta.timings`` breakdown."""
        return {
            "total_ms": round(self.total_seconds() * 1000.0, 3),
            "stages": {name: round(seconds * 1000.0, 3)
                       for name, seconds in sorted(self.stages.items())},
        }

    def span_tree_lines(self) -> list[str]:
        """Indented one-line-per-span rendering for the slow-request log."""
        return [
            "%s%s %+0.3fms %0.3fms" % ("  " * entry["depth"], entry["name"],
                                       entry["start_ms"], entry["ms"])
            for entry in self.spans
        ]


_current: ContextVar[RequestTrace | None] = ContextVar("repro_trace", default=None)


def current_trace() -> RequestTrace | None:
    """The trace following the current request, if any."""
    return _current.get()


def activate(trace: RequestTrace | None) -> Token:
    """Install ``trace`` as the ambient trace; pair with :func:`deactivate`.

    Token API for callers whose enter/exit spans separate methods (the
    HTTP handler); everything else uses :func:`trace_scope`.
    """
    return _current.set(trace)


def deactivate(token: Token) -> None:
    _current.reset(token)


def tick(where: str) -> None:
    """Attribute time-since-last-event to ``where`` on the ambient trace.

    Called from ``deadline.checkpoint`` — one extra ContextVar read on
    the solver hot loops, a no-op when nothing is tracing.
    """
    trace = _current.get()
    if trace is not None:
        trace.tick(where)


class span:
    """``with span("plan-cache-probe"): ...`` — an explicit stage.

    Reads the ContextVar once at entry; a no-op (no allocation beyond
    the context manager itself) when no trace is active.
    """

    __slots__ = ("name", "_trace", "_start")

    def __init__(self, name: str):
        self.name = name
        self._trace = None
        self._start = 0.0

    def __enter__(self) -> "span":
        trace = _current.get()
        if trace is not None:
            self._trace = trace
            self._start = time.perf_counter()
            trace._depth += 1
            trace._last = self._start
        return self

    def __exit__(self, *exc_info) -> None:
        trace = self._trace
        if trace is not None:
            ended = time.perf_counter()
            trace._depth -= 1
            trace.add_span(self.name, self._start, ended, trace._depth)
            trace._last = ended
            self._trace = None


@contextmanager
def trace_scope(trace_id: str | None = None,
                reuse: bool = True) -> Iterator[RequestTrace | None]:
    """Run the block under a trace, creating one if none is ambient.

    With ``reuse=True`` (the default) an already-active trace — e.g. the
    one the HTTP server installed before calling into the Session — is
    *reused*, not replaced, so nested surfaces share one id and one
    stage map.  Only the scope that actually created the trace harvests
    its stage totals into the global registry on exit.
    """
    ambient = _current.get()
    if reuse and ambient is not None:
        yield ambient
        return
    if not _enabled:
        yield None
        return
    trace = RequestTrace(trace_id)
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
        _harvest(trace)


def _harvest(trace: RequestTrace) -> None:
    """Fold a finished trace's stage totals into the global registry."""
    from .metrics import global_registry

    registry = global_registry()
    for stage, seconds in trace.stages.items():
        registry.histogram("repro_stage_seconds", stage=stage).observe(seconds)


def harvest(trace: RequestTrace) -> None:
    """Public alias for call sites that own activation directly (serve)."""
    _harvest(trace)
