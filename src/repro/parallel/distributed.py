"""Distributed-memory traffic model and lower bounds (§7 extension).

Implements the memory-dependent distributed communication bound in the
style of [ITT04]/[Kni15]: with ``P`` processors each holding ``M_local``
words, a balanced execution gives every processor ``prod L / P``
operations, and the §4 tile-size bound caps the operations one
processor completes per ``M_local`` words received, yielding::

    words_per_processor >= (prod L / P) * M_local ** (1 - k_hat)

with ``k_hat`` the arbitrary-bound exponent — so the small-bound
corrections of the paper carry over to the distributed setting
unchanged.  :func:`simulate_grid` measures the footprint-based traffic
of an actual processor grid for comparison, and 1-D splits provide the
baseline the benchmarks contrast against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from ..core.bounds import tile_exponent
from ..core.loopnest import LoopNest
from ..util.rationals import pow_fraction
from .grid import GridCost, grid_cost, optimal_grid

__all__ = [
    "DistributedReport",
    "distributed_lower_bound",
    "simulate_grid",
    "one_dimensional_split",
]


@dataclass(frozen=True)
class DistributedReport:
    """Per-processor traffic of a grid execution vs the lower bound."""

    nest_name: str
    P: int
    grid: tuple[int, ...]
    words_per_processor: int
    lower_bound_words: float

    @property
    def ratio(self) -> float:
        if self.lower_bound_words <= 0:
            return float("inf")
        return self.words_per_processor / self.lower_bound_words

    def summary(self) -> str:
        g = "x".join(str(p) for p in self.grid)
        return (
            f"{self.nest_name} P={self.P} grid={g}: {self.words_per_processor} "
            f"words/proc (bound {self.lower_bound_words:.4g}, ratio {self.ratio:.2f})"
        )


def distributed_lower_bound(nest: LoopNest, P: int, M_local: int) -> float:
    """Memory-dependent per-processor communication lower bound (words).

    Composes the §4 exponent at the local memory size with balanced
    work; also floored by the balanced share of the largest array a
    processor cannot own (read-once floor divided by P).
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    if M_local < 2:
        raise ValueError("M_local must be >= 2")
    k_hat = tile_exponent(nest, M_local)
    from fractions import Fraction

    hbl = (nest.num_operations / P) * pow_fraction(M_local, Fraction(1) - k_hat)
    read_floor = nest.total_footprint() / P
    return max(hbl, read_floor)


def simulate_grid(
    nest: LoopNest, P: int, M_local: int, grid: tuple[int, ...] | None = None
) -> DistributedReport:
    """Traffic of a grid execution (optimal grid by default) vs the bound.

    The per-processor traffic is the §7 footprint model of
    :func:`repro.parallel.grid.grid_cost`: words a processor must
    receive beyond its balanced owned share.
    """
    cost: GridCost = grid_cost(nest, grid) if grid is not None else optimal_grid(nest, P)
    actual_P = prod(cost.grid)
    return DistributedReport(
        nest_name=nest.name,
        P=actual_P,
        grid=cost.grid,
        words_per_processor=cost.comm_words,
        lower_bound_words=distributed_lower_bound(nest, actual_P, M_local),
    )


def one_dimensional_split(nest: LoopNest, P: int, M_local: int, loop: int = 0) -> DistributedReport:
    """Baseline: split only one loop across all P processors."""
    if not 0 <= loop < nest.depth:
        raise ValueError("loop out of range")
    grid = tuple(P if i == loop else 1 for i in range(nest.depth))
    return simulate_grid(nest, P, M_local, grid=grid)
