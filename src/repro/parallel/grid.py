"""Processor-grid partitioning (the paper's §7 multiprocessor extension).

§7 argues the memory model generalises to P processors (after [Kni15],
[ITT04]) and that the best split hands each processor a *rectangular*
block of the iteration space.  This module makes that concrete:

* enumerate integer processor grids ``p_1 x ... x p_d`` with
  ``prod p_i = P``, each processor owning a ``ceil(L_i / p_i)`` block;
* cost a grid by its per-processor data requirement
  ``sum_j prod_{i in supp_j} ceil(L_i / p_i)`` (the §2 footprint of the
  owned block) or by the *communication* variant that credits each
  processor the ``1/P`` slice of each array it can own locally;
* :func:`optimal_grid` — exhaustive argmin over grids (exact);
* :func:`lp_grid` — the log-space LP relaxation (the continuous
  analogue of the tiling LP with the capacity rows replaced by a
  makespan objective), used to show the exhaustive optimum tracks the
  LP prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import prod
from typing import Iterator, Sequence

from ..core.loopnest import LoopNest
from ..core.lp import LinearProgram
from ..util.rationals import log_ratio

__all__ = ["GridCost", "factor_grids", "grid_cost", "optimal_grid", "lp_grid"]


@dataclass(frozen=True)
class GridCost:
    """Cost report for one processor grid."""

    grid: tuple[int, ...]
    block: tuple[int, ...]
    footprint_words: int
    comm_words: int

    def describe(self) -> str:
        g = "x".join(str(p) for p in self.grid)
        return (
            f"grid {g}: block {self.block}, footprint {self.footprint_words}, "
            f"comm {self.comm_words}"
        )


def factor_grids(P: int, d: int) -> Iterator[tuple[int, ...]]:
    """All ordered factorizations of ``P`` into ``d`` positive factors."""
    if P < 1 or d < 1:
        raise ValueError("need P >= 1 and d >= 1")
    if d == 1:
        yield (P,)
        return
    for first in range(1, P + 1):
        if P % first == 0:
            for rest in factor_grids(P // first, d - 1):
                yield (first, *rest)


def grid_cost(nest: LoopNest, grid: Sequence[int]) -> GridCost:
    """Per-processor footprint and communication for a grid.

    Each processor owns the iteration block ``ceil(L_i / p_i)``; it
    must access ``prod_{i in supp_j} block_i`` words of array ``j`` and
    can hold ``array_size / P`` of them locally under a balanced
    distribution, so its communication is the difference (floored at
    zero per array).
    """
    grid = tuple(int(p) for p in grid)
    if len(grid) != nest.depth:
        raise ValueError("grid length must equal nest depth")
    if any(p < 1 for p in grid):
        raise ValueError("grid entries must be positive")
    P = prod(grid)
    block = tuple(-(-L // p) for L, p in zip(nest.bounds, grid))
    footprint = 0
    comm = 0
    for j, arr in enumerate(nest.arrays):
        need = prod(block[i] for i in arr.support)
        footprint += need
        owned = nest.array_size(j) // P
        comm += max(0, need - owned)
    return GridCost(grid=grid, block=block, footprint_words=footprint, comm_words=comm)


def optimal_grid(nest: LoopNest, P: int, objective: str = "comm") -> GridCost:
    """Exhaustive best grid for ``P`` processors.

    ``objective``: ``"comm"`` (default) or ``"footprint"``.  Grids whose
    factors exceed the loop bounds waste processors (empty blocks); they
    are still legal but never optimal, and the enumeration includes
    them for completeness.
    """
    if objective not in ("comm", "footprint"):
        raise ValueError(f"unknown objective {objective!r}")
    best: GridCost | None = None
    for grid in factor_grids(P, nest.depth):
        cost = grid_cost(nest, grid)
        key = cost.comm_words if objective == "comm" else cost.footprint_words
        best_key = (
            None
            if best is None
            else (best.comm_words if objective == "comm" else best.footprint_words)
        )
        if best is None or key < best_key or (key == best_key and cost.grid < best.grid):
            best = cost
    assert best is not None
    return best


def lp_grid(nest: LoopNest, P: int) -> tuple[tuple[Fraction, ...], Fraction]:
    """Log-space LP relaxation of grid selection.

    Variables ``mu_i = log2 p_i``; minimise the makespan ``t`` of
    per-array block footprints::

        min t
        s.t. sum_{i in supp_j} (log2 L_i - mu_i) <= t   for each array j
             sum_i mu_i = log2 P
             0 <= mu_i <= log2 L_i

    Returns ``(mu, t)`` exactly (Fractions, base-2 logs).  Rounding mu
    to integer grid factors reproduces the exhaustive optimum's shape;
    the benchmarks compare the two.
    """
    logL = [log_ratio(L, 2) for L in nest.bounds]
    logP = log_ratio(P, 2)
    lp = LinearProgram(sense="min")
    for i in range(nest.depth):
        lp.add_variable(f"mu[{nest.loops[i]}]", lo=0, hi=logL[i])
    lp.add_variable("t", lo=None)
    for j, arr in enumerate(nest.arrays):
        if not arr.support:
            continue
        coeffs = {f"mu[{nest.loops[i]}]": -1 for i in arr.support}
        coeffs["t"] = -1
        lp.add_constraint(
            f"fp[{arr.name}]",
            coeffs,
            "<=",
            -sum((logL[i] for i in arr.support), start=Fraction(0)),
        )
    lp.add_constraint(
        "procs", {f"mu[{nest.loops[i]}]": 1 for i in range(nest.depth)}, "==", logP
    )
    lp.set_objective({"t": 1})
    report = lp.solve()
    if not report.is_optimal:
        raise RuntimeError(f"grid LP {report.status}: is P={P} larger than the iteration space?")
    mu = tuple(report.values[f"mu[{nest.loops[i]}]"] for i in range(nest.depth))
    return mu, report.objective
