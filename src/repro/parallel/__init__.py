"""Multiprocessor extension (§7): processor grids and distributed bounds."""

from .distributed import (
    DistributedReport,
    distributed_lower_bound,
    one_dimensional_split,
    simulate_grid,
)
from .grid import GridCost, factor_grids, grid_cost, lp_grid, optimal_grid

__all__ = [
    "GridCost",
    "factor_grids",
    "grid_cost",
    "optimal_grid",
    "lp_grid",
    "DistributedReport",
    "distributed_lower_bound",
    "simulate_grid",
    "one_dimensional_split",
]
