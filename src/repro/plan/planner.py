"""The plan cache: canonical structure -> parametric exponents, exactly.

Design
------
``solve_tiling`` spends essentially all of its time in the exact
rational simplex.  But the LP's *structure* (LP 5.1) depends only on
the nest's projection pattern; the bounds and cache size enter through
``beta_i = log_M L_i``.  The paper's §7 observation — the optimum is a
piecewise-linear function ``f(beta)``, the lower envelope of one affine
piece per vertex of the beta-independent dual polyhedron — makes the
expensive part *cacheable*: solve the multiparametric LP once per
canonical structure, then answer every query on that structure by
evaluating finitely many affine pieces.

Recovering the *primal* solution (the ``lambda_i`` the integer tile is
built from) reuses a second multiparametric fact: within one piece's
critical region the optimal vertex is an affine function of ``beta``.
The planner derives that affine map lazily — from the tight-constraint
set of one exact LP solve the first time a piece is hit — and guards
every reuse with an exact feasibility + strong-duality check (primal
feasible and objective equal to the dual value certifies optimality).
A failed guard falls back to the exact LP, so warm answers are *always*
certified optimal; the guard never trusts the cache.

Everything is exact Fraction arithmetic except a float pre-pass that
shortlists candidate minimal pieces (error ~1e-13 against a 1e-7
acceptance margin, then settled exactly).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from fractions import Fraction
from pathlib import Path
from typing import Iterable, Sequence

from ..core.bounds import CommunicationLowerBound, lower_bound_from_k_hat
from ..core.canonical import CanonicalForm, Canonicalization, canonicalize
from ..core.duality import (
    DualSolution,
    Theorem3Certificate,
    _complementary_slackness,
    theorem3_certificate,
)
from ..core.hierarchy import MemoryHierarchy
from ..core.integer import nested_integer_repair
from ..core.loopnest import LoopNest
from ..core.mplp import AffinePiece, PiecewiseValueFunction, parametric_tile_exponent
from ..core.tiling import (
    BUDGETS,
    TileShape,
    TilingSolution,
    build_tiling_lp,
    integer_repair,
    lvar,
)
from ..obs.trace import span as _span
from ..util import deadline as _deadline
from ..util import faults
from ..util.rationals import log_ratio, pow_fraction
from ..util.sharedstore import SharedPlanStore

__all__ = ["PlanRequest", "TilePlan", "HierarchyPlan", "Planner", "PlannerStats"]

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: The mpLP prune (:func:`repro.core.mplp.parametric_tile_exponent`)
#: certifies the piece set only on ``beta_i <= 64`` — i.e. every bound
#: up to ``M**64``.  Queries beyond that (practically unreachable) skip
#: the cache and solve the LP directly.
_BETA_CAP = Fraction(64)

#: Float shortlist margin: piece values are O(100) at most, so float
#: evaluation error is ~1e-12; any piece within this margin of the float
#: minimum is re-evaluated exactly.
_FLOAT_MARGIN = 1e-7

#: Optimal-basis maps remembered per piece (multiple bases meet inside
#: one critical region's closure; a short MRU list absorbs the churn).
_MAPS_PER_PIECE = 8

_SCHEMA_VERSION = 1

_log = logging.getLogger(__name__)


def _entries_checksum(entries: dict) -> str:
    """Content hash of the cache's entry map (canonical JSON, sha256)."""
    canon = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlanRequest:
    """One query: a nest, a cache size, and a budget convention."""

    nest: LoopNest
    cache_words: int
    budget: str = "per-array"

    def to_json(self) -> dict:
        """JSON-safe dict; lossless inverse of :meth:`from_json`."""
        return {
            "nest": self.nest.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "PlanRequest":
        return cls(
            nest=LoopNest.from_json(blob["nest"]),
            cache_words=int(blob["cache_words"]),
            budget=str(blob.get("budget", "per-array")),
        )


@dataclass(frozen=True)
class TilePlan:
    """A served plan: optimal tile + exponent + lower bound + provenance.

    ``exponent``/``lambdas`` match :class:`~repro.core.tiling.TilingSolution`
    semantics exactly (w.r.t. the effective cache when
    ``budget="aggregate"``); when the LP has multiple optimal vertices
    the plan may pick a different one than the simplex would, but the
    exponent and the guard-certified optimality are identical.
    """

    nest: LoopNest
    cache_words: int
    budget: str
    canonical_key: str
    exponent: Fraction
    lambdas: tuple[Fraction, ...]
    fractional_blocks: tuple[float, ...]
    tile: TileShape
    lower_bound: CommunicationLowerBound | None
    cache_hit: bool

    def tiling_solution(self) -> TilingSolution:
        """Adapter to the :func:`solve_tiling` result type."""
        return TilingSolution(
            nest=self.nest,
            cache_words=self.cache_words,
            budget=self.budget,
            lambdas=self.lambdas,
            exponent=self.exponent,
            fractional_blocks=self.fractional_blocks,
            tile=self.tile,
        )

    def to_json(self) -> dict:
        """JSON-line payload for the batch CLI; lossless (see :meth:`from_json`).

        Fractions are serialized as ``"p/q"`` strings; ``arrays``,
        ``lambdas`` and ``fractional_blocks`` carry everything needed to
        reconstruct the plan exactly.
        """
        out: dict = {
            **self.nest.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
            "canonical_key": self.canonical_key,
            "k_hat": str(self.exponent),
            "k_hat_float": float(self.exponent),
            "lambdas": [str(lam) for lam in self.lambdas],
            "fractional_blocks": list(self.fractional_blocks),
            "tile": list(self.tile.blocks),
            "tile_volume": self.tile.volume,
            "num_tiles": self.tile.num_tiles,
            "cache_hit": self.cache_hit,
        }
        if self.lower_bound is not None:
            out["lower_bound_words"] = self.lower_bound.value
            out["lower_bound_k_hat"] = str(self.lower_bound.k_hat)
        return out

    @classmethod
    def from_json(cls, blob: dict) -> "TilePlan":
        """Exact inverse of :meth:`to_json`.

        The lower bound is reassembled from its exponent with
        :func:`~repro.core.bounds.lower_bound_from_k_hat` (pure,
        deterministic arithmetic), so the round trip is lossless.
        """
        nest = LoopNest.from_json(blob)  # ignores the non-nest keys
        cache_words = int(blob["cache_words"])
        lower_bound = None
        if "lower_bound_k_hat" in blob:
            lower_bound = lower_bound_from_k_hat(
                nest, cache_words, Fraction(blob["lower_bound_k_hat"])
            )
        return cls(
            nest=nest,
            cache_words=cache_words,
            budget=str(blob["budget"]),
            canonical_key=str(blob["canonical_key"]),
            exponent=Fraction(blob["k_hat"]),
            lambdas=tuple(Fraction(lam) for lam in blob["lambdas"]),
            fractional_blocks=tuple(float(b) for b in blob["fractional_blocks"]),
            tile=TileShape(nest=nest, blocks=tuple(int(b) for b in blob["tile"])),
            lower_bound=lower_bound,
            # Result payloads move cache_hit to the envelope meta; accept
            # both spellings so those payloads reconstruct too.
            cache_hit=bool(blob.get("cache_hit", False)),
        )


@dataclass(frozen=True)
class HierarchyPlan:
    """Nested per-level plans for one (nest, capacity stack) query.

    ``levels`` holds one :class:`TilePlan` per hierarchy level, innermost
    (smallest capacity) first, with the tiles repaired *jointly* by
    :func:`~repro.core.integer.nested_integer_repair` so the hierarchy
    invariant holds: ``levels[l].tile.blocks[i] <=
    levels[l+1].tile.blocks[i]`` for every loop ``i``.  Every level's
    exponent, lambdas and lower bound carry the exact same semantics as
    a single-level :meth:`Planner.plan` answer at that capacity — a
    one-level hierarchy *is* that answer, tile included.
    """

    nest: LoopNest
    capacities: tuple[int, ...]
    budget: str
    canonical_key: str
    levels: tuple[TilePlan, ...]
    cache_hit: bool

    @property
    def innermost(self) -> TilePlan:
        return self.levels[0]

    def tiles(self) -> tuple[tuple[int, ...], ...]:
        """Per-level integer blocks, innermost first."""
        return tuple(level.tile.blocks for level in self.levels)

    def to_json(self) -> dict:
        """Lossless wire form (one analyze-shaped payload per level)."""
        return {
            "nest": self.nest.to_json(),
            "capacities": list(self.capacities),
            "budget": self.budget,
            "canonical_key": self.canonical_key,
            "levels": [level.to_json() for level in self.levels],
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "HierarchyPlan":
        return cls(
            nest=LoopNest.from_json(blob["nest"]),
            capacities=tuple(int(c) for c in blob["capacities"]),
            budget=str(blob["budget"]),
            canonical_key=str(blob["canonical_key"]),
            levels=tuple(TilePlan.from_json(dict(entry)) for entry in blob["levels"]),
            cache_hit=bool(blob.get("cache_hit", False)),
        )


@dataclass
class PlannerStats:
    """Counters exposed for benchmarks and cache-effectiveness tests."""

    queries: int = 0
    structure_hits: int = 0
    structure_solves: int = 0
    primal_map_hits: int = 0
    primal_lp_solves: int = 0
    evictions: int = 0
    #: Structures adopted from a cross-process shared store instead of solved.
    shared_hits: int = 0
    #: Callers that waited on another thread's in-flight solve of the same key.
    coalesced: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _PrimalMap:
    """``lambda(beta) = constant + matrix @ beta`` (exact, canonical order)."""

    constant: tuple[Fraction, ...]
    matrix: tuple[tuple[Fraction, ...], ...]

    def apply(self, betas: Sequence[Fraction]) -> tuple[Fraction, ...]:
        return tuple(
            c + sum((m * b for m, b in zip(row, betas) if m), start=_ZERO)
            for c, row in zip(self.constant, self.matrix)
        )


@dataclass
class _StructurePlan:
    """Everything cached for one canonical structure."""

    form: CanonicalForm
    pvf: PiecewiseValueFunction
    float_pieces: list[tuple[float, tuple[float, ...]]] = field(default_factory=list)
    #: piece index -> candidate primal maps, most recently successful
    #: first.  A piece can meet several optimal bases across its region
    #: (and on region boundaries), so a short list beats a single slot.
    primal_maps: dict[int, list[_PrimalMap]] = field(default_factory=dict)
    nest: LoopNest = None  # canonical nest (generic names, dummy bounds)

    def __post_init__(self) -> None:
        if self.nest is None:
            self.nest = self.form.to_nest()
        self.float_pieces = [
            (float(p.constant), tuple(float(c) for c in p.coeffs))
            for p in self.pvf.pieces
        ]


def _piece_to_json(piece: AffinePiece) -> dict:
    return {
        "c": str(piece.constant),
        "zeta": [str(z) for z in piece.source_zeta],
        "s": [str(s) for s in piece.source_s],
    }


def _piece_from_json(blob: dict) -> AffinePiece:
    zeta = tuple(Fraction(z) for z in blob["zeta"])
    return AffinePiece(
        constant=Fraction(blob["c"]),
        coeffs=zeta,
        source_zeta=zeta,
        source_s=tuple(Fraction(s) for s in blob["s"]),
    )


def _solve_affine_system(
    a_rows: list[list[Fraction]],
    b_rows: list[list[Fraction]],
    n_unknowns: int,
) -> list[list[Fraction]] | None:
    """Solve ``A x = B(beta)`` for affine unknowns by Gauss-Jordan.

    ``b_rows[i]`` is the affine vector ``(const, coeff_beta_0, ...)`` of
    equation i's right-hand side.  Returns one affine vector per
    unknown, or None when the system does not determine all unknowns
    (degenerate optimum that is not a simple vertex — callers then skip
    map caching and keep using the exact LP).
    """
    m = len(a_rows)
    a = [row[:] for row in a_rows]
    b = [row[:] for row in b_rows]
    for col in range(n_unknowns):
        pivot_row = next((i for i in range(col, m) if a[i][col] != 0), None)
        if pivot_row is None:
            return None
        a[col], a[pivot_row] = a[pivot_row], a[col]
        b[col], b[pivot_row] = b[pivot_row], b[col]
        pivot = a[col][col]
        if pivot != 1:
            a[col] = [v / pivot for v in a[col]]
            b[col] = [v / pivot for v in b[col]]
        for i in range(m):
            if i != col and a[i][col] != 0:
                factor = a[i][col]
                a[i] = [v - factor * w for v, w in zip(a[i], a[col])]
                b[i] = [v - factor * w for v, w in zip(b[i], b[col])]
    return b[:n_unknowns]


def _derive_primal_map(
    rows: Sequence[tuple[int, ...]],
    depth: int,
    lambdas: Sequence[Fraction],
    betas: Sequence[Fraction],
) -> _PrimalMap | None:
    """Affine map reproducing the vertex ``lambdas`` from its tight set.

    Classifies each coordinate as pinned-at-zero, pinned-at-beta, or
    free; free coordinates are solved from the tight array constraints.
    The map is only a *candidate* — every later application is verified
    exactly before use.
    """
    at_zero = [lambdas[i] == 0 for i in range(depth)]
    at_beta = [not at_zero[i] and lambdas[i] == betas[i] for i in range(depth)]
    free = [i for i in range(depth) if not at_zero[i] and not at_beta[i]]
    constant = [_ZERO] * depth
    matrix = [[_ZERO] * depth for _ in range(depth)]
    for i in range(depth):
        if at_beta[i]:
            matrix[i][i] = _ONE
    if free:
        tight = [row for row in rows if row and sum((lambdas[i] for i in row), start=_ZERO) == 1]
        a_rows = [[_ONE if i in row else _ZERO for i in free] for row in tight]
        b_rows = []
        for row in tight:
            affine = [_ONE] + [_ZERO] * depth
            for i in row:
                if at_beta[i]:
                    affine[1 + i] -= _ONE
            b_rows.append(affine)
        solved = _solve_affine_system(a_rows, b_rows, len(free))
        if solved is None:
            return None
        for pos, i in enumerate(free):
            constant[i] = solved[pos][0]
            matrix[i] = solved[pos][1:]
    return _PrimalMap(constant=tuple(constant), matrix=tuple(tuple(r) for r in matrix))


class Planner:
    """LRU-cached, optionally persistent, exact tiling-plan service.

    Parameters
    ----------
    capacity:
        Maximum number of canonical structures kept in memory (least
        recently used evicted first).
    cache_path:
        Optional JSON file.  When given and present, structures are
        loaded eagerly on construction; :meth:`save` writes the current
        cache back (primal maps are derived data and are not persisted).
    shared_store:
        Optional :class:`~repro.util.sharedstore.SharedPlanStore` (or a
        directory path for one).  Structure misses consult the store
        before solving, and fresh solves publish back, so concurrent
        planner processes warm each other.
    """

    def __init__(
        self,
        capacity: int = 128,
        cache_path: str | os.PathLike | None = None,
        shared_store: SharedPlanStore | str | os.PathLike | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.cache_path = Path(cache_path) if cache_path is not None else None
        if shared_store is not None and not isinstance(shared_store, SharedPlanStore):
            shared_store = SharedPlanStore(shared_store)
        self.shared_store = shared_store
        self.stats = PlannerStats()
        self._structures: OrderedDict[str, _StructurePlan] = OrderedDict()
        self._canon_memo: dict[tuple, Canonicalization] = {}
        # Beta memo: sweeps repeat the same (bound, cache) pairs
        # constantly and log_ratio is pure, so memoising it off the hot
        # path is free speedup.  (pow_fraction carries its own
        # lru_cache, so fractional-block evaluation needs no twin here.)
        self._log_memo: dict[tuple[int, int], Fraction] = {}
        self._lock = threading.RLock()
        # In-flight structure solves, for coalescing: canonical key ->
        # Event set when the leading solver finishes (or fails).
        self._solving: dict[str, threading.Event] = {}
        # Serialises whole save()/load() calls: concurrent Session users
        # sharing one planner must not interleave persistence I/O (the
        # structure lock above only protects in-memory state).
        self._io_lock = threading.Lock()
        if self.cache_path is not None and self.cache_path.exists():
            self.load(self.cache_path)

    # -- canonicalization (memoised per raw structure) ----------------------

    def canonicalization(self, nest: LoopNest) -> Canonicalization:
        """Memoised :func:`repro.core.canonical.canonicalize`."""
        memo_key = (nest.depth, tuple(arr.support for arr in nest.arrays))
        canon = self._canon_memo.get(memo_key)
        if canon is None:
            canon = canonicalize(nest)
            with self._lock:
                if len(self._canon_memo) < 1 << 16:
                    self._canon_memo[memo_key] = canon
        return canon

    def _betas(self, bounds: Sequence[int], base: int) -> list[Fraction]:
        memo = self._log_memo
        out = []
        for bound in bounds:
            key = (bound, base)
            value = memo.get(key)
            if value is None:
                value = log_ratio(bound, base)
                if len(memo) < 1 << 16:
                    memo[key] = value
            out.append(value)
        return out

    # -- structure cache ----------------------------------------------------

    def has_structure(self, key: str) -> bool:
        with self._lock:
            return key in self._structures

    def cached_keys(self) -> list[str]:
        with self._lock:
            return list(self._structures)

    def install_structure(
        self, key: str, pieces_json: Iterable[dict], publish: bool = True
    ) -> None:
        """Insert a pre-solved structure (parallel warmers, persistence).

        With ``publish`` (the default) the piece set is also offered to
        the shared store, so pool workers' solves warm sibling
        processes; persistence/adoption paths pass ``publish=False``.
        """
        form = CanonicalForm.from_key(key)
        pieces_json = list(pieces_json)
        pieces = tuple(sorted(
            (_piece_from_json(blob) for blob in pieces_json),
            key=lambda p: (p.constant, p.coeffs),
        ))
        pvf = PiecewiseValueFunction(nest=form.to_nest(), pieces=pieces, pruned=True)
        with self._lock:
            self._structures[key] = _StructurePlan(form=form, pvf=pvf)
            self._structures.move_to_end(key)
            self._evict()
        if publish and self.shared_store is not None:
            self.shared_store.put(key, pieces_json)

    def probe_structure(self, key: str) -> bool:
        """Is ``key`` answerable without a solve (memory or shared store)?

        A shared-store hit is adopted into the in-memory cache as a side
        effect, so a True answer means subsequent queries are warm.
        """
        return self.has_structure(key) or self._adopt_shared(key)

    def _adopt_shared(self, key: str) -> bool:
        """Pull one structure from the shared store, if present there."""
        if self.shared_store is None:
            return False
        pieces = self.shared_store.get(key)
        if pieces is None:
            return False
        try:
            self.install_structure(key, pieces, publish=False)
        except Exception:
            # A poisoned entry must degrade to a fresh solve, never an
            # unstructured failure; invalidation stats live in the store.
            _log.warning("discarding malformed shared-store entry %r", key)
            return False
        with self._lock:
            self.stats.shared_hits += 1
        return True

    def _evict(self) -> None:
        while len(self._structures) > self.capacity:
            self._structures.popitem(last=False)
            self.stats.evictions += 1

    def _structure(self, canon: Canonicalization) -> tuple[_StructurePlan, bool]:
        """The structure for ``canon``, coalescing concurrent misses.

        Exactly one thread per canonical key runs the multiparametric
        solve; concurrent callers for the same key wait on the leader's
        event (respecting their own deadlines) and then re-read the
        cache.  If the leader fails, its event is still set and one
        waiter takes over as the new leader.
        """
        key = canon.form.key()
        waited = False
        while True:
            with _span("plan-cache-probe"), self._lock:
                cached = self._structures.get(key)
                if cached is not None:
                    self._structures.move_to_end(key)
                    self.stats.structure_hits += 1
                    return cached, True
                event = self._solving.get(key)
                if event is None:
                    self._solving[key] = event = threading.Event()
                    break  # this thread leads the solve
                if not waited:
                    waited = True
                    self.stats.coalesced += 1
            while not event.wait(0.02):
                _deadline.checkpoint("structure-coalesce")
        try:
            if self._adopt_shared(key):
                with self._lock:
                    plan = self._structures.get(key)
                if plan is not None:
                    return plan, True
            # Solve outside the lock: multiparametric solves are the slow part.
            pvf = parametric_tile_exponent(canon.form.to_nest())
            plan = _StructurePlan(form=canon.form, pvf=pvf)
            with self._lock:
                self.stats.structure_solves += 1
                self._structures[key] = plan
                self._structures.move_to_end(key)
                self._evict()
            if self.shared_store is not None:
                self.shared_store.put(key, [_piece_to_json(p) for p in pvf.pieces])
            return plan, False
        finally:
            with self._lock:
                self._solving.pop(key, None)
            event.set()

    # -- exact piecewise evaluation -----------------------------------------

    def _evaluate(
        self, structure: _StructurePlan, betas: Sequence[Fraction]
    ) -> tuple[Fraction, int]:
        """Exact ``(f(beta), argmin piece index)`` with a float shortlist."""
        floats = [float(b) for b in betas]
        best_float = None
        values = []
        for const, coeffs in structure.float_pieces:
            value = const + sum(c * b for c, b in zip(coeffs, floats))
            values.append(value)
            if best_float is None or value < best_float:
                best_float = value
        threshold = best_float + _FLOAT_MARGIN * (1.0 + abs(best_float))
        best_exact: Fraction | None = None
        best_idx = 0
        for idx, value in enumerate(values):
            if value <= threshold:
                piece = structure.pvf.pieces[idx]
                exact = piece.constant
                for coeff, beta in zip(piece.coeffs, betas):
                    if coeff == 1:
                        exact += beta
                    elif coeff:
                        exact += coeff * beta
                if best_exact is None or exact < best_exact:
                    best_exact, best_idx = exact, idx
        assert best_exact is not None
        return best_exact, best_idx

    def _lp_solve(
        self, structure: _StructurePlan, betas: Sequence[Fraction]
    ) -> tuple[Fraction, tuple[Fraction, ...]]:
        """Authoritative exact LP solve on the canonical structure."""
        with self._lock:
            self.stats.primal_lp_solves += 1
        nest = structure.nest
        lp = build_tiling_lp(nest, cache_words=2, betas=list(betas))
        report = lp.solve(backend="exact")
        if not report.is_optimal:  # pragma: no cover - LP always feasible/bounded
            raise RuntimeError(f"tiling LP unexpectedly {report.status}")
        lambdas = tuple(report.values[lvar(i, nest)] for i in range(nest.depth))
        return report.objective, lambdas

    def _verified(
        self,
        structure: _StructurePlan,
        betas: Sequence[Fraction],
        lambdas: Sequence[Fraction],
        value: Fraction,
    ) -> bool:
        """Exact optimality certificate: feasible + objective == dual value."""
        total = _ZERO
        for lam, beta in zip(lambdas, betas):
            if lam < 0 or lam > beta:
                return False
            total += lam
        if total != value:
            return False
        for row in structure.form.rows:
            if row and sum((lambdas[i] for i in row), start=_ZERO) > 1:
                return False
        return True

    def _value_at(self, structure: _StructurePlan, betas: Sequence[Fraction]) -> Fraction:
        """Exact ``f(beta)`` only — honouring the ``_BETA_CAP`` guard."""
        if any(b > _BETA_CAP for b in betas):
            value, _ = self._lp_solve(structure, betas)
            return value
        value, _ = self._evaluate(structure, betas)
        return value

    def _solve_canonical(
        self, structure: _StructurePlan, betas: Sequence[Fraction]
    ) -> tuple[Fraction, tuple[Fraction, ...]]:
        """Exact optimum + vertex at ``betas``, via cache or LP fallback."""
        if any(b > _BETA_CAP for b in betas):
            # Outside the certified domain of the pruned piece set.
            return self._lp_solve(structure, betas)
        value, piece_idx = self._evaluate(structure, betas)
        return self._primal_for_piece(structure, betas, value, piece_idx)

    def _primal_for_piece(
        self,
        structure: _StructurePlan,
        betas: Sequence[Fraction],
        value: Fraction,
        piece_idx: int,
    ) -> tuple[Fraction, tuple[Fraction, ...]]:
        """Guarded primal recovery for a known minimizing piece."""
        maps = structure.primal_maps.get(piece_idx, ())
        for pos, cached_map in enumerate(maps):
            lambdas = cached_map.apply(betas)
            if self._verified(structure, betas, lambdas, value):
                with self._lock:
                    if pos:
                        maps.insert(0, maps.pop(pos))
                    self.stats.primal_map_hits += 1
                return value, lambdas
        value_lp, lambdas = self._lp_solve(structure, betas)
        candidate = _derive_primal_map(structure.form.rows, structure.form.depth, lambdas, betas)
        if candidate is not None and self._verified(
            structure, betas, candidate.apply(betas), value_lp
        ):
            with self._lock:
                maps = structure.primal_maps.setdefault(piece_idx, [])
                if candidate not in maps:
                    maps.insert(0, candidate)
                    del maps[_MAPS_PER_PIECE:]
        return value_lp, lambdas

    # -- the service entry points -------------------------------------------

    def plan(
        self,
        nest: LoopNest,
        cache_words: int,
        budget: str = "per-array",
        include_bound: bool = True,
    ) -> TilePlan:
        """Optimal tile + exponent (+ lower bound) for one query.

        Mirrors :func:`solve_tiling`'s budget semantics; the lower bound
        is always the paper-model (per-array) bound at the full cache
        size, matching :func:`repro.analyze`.
        """
        if cache_words < 2:
            raise ValueError("planning needs cache_words >= 2")
        if budget not in BUDGETS:
            raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
        if budget == "aggregate" and cache_words < nest.num_arrays:
            raise ValueError(
                f"aggregate budget needs cache_words >= {nest.num_arrays} "
                f"(one word per array), got {cache_words}"
            )
        with self._lock:
            self.stats.queries += 1
        canon = self.canonicalization(nest)
        structure, hit = self._structure(canon)
        depth = nest.depth
        effective_m = (
            cache_words if budget == "per-array" else max(1, cache_words // nest.num_arrays)
        )
        full_betas: list[Fraction] | None = None
        if effective_m < 2:
            # Degenerate effective cache: unit tile (see solve_tiling).
            exponent = _ZERO
            lambdas = tuple(_ZERO for _ in range(depth))
            fractional = tuple(1.0 for _ in range(depth))
            tile = TileShape(nest=nest, blocks=tuple(1 for _ in range(depth)))
        else:
            betas = self._betas(nest.bounds, effective_m)
            if effective_m == cache_words:
                full_betas = betas
            canon_betas = canon.to_canonical(tuple(betas))
            exponent, canon_lambdas = self._solve_canonical(structure, canon_betas)
            lambdas = canon.from_canonical(canon_lambdas)
            fractional = tuple(pow_fraction(effective_m, lam) for lam in lambdas)
            tile = integer_repair(nest, fractional, cache_words, budget)
        lower_bound = None
        if include_bound:
            if full_betas is not None:
                k_hat = exponent
            else:
                betas = self._betas(nest.bounds, cache_words)
                k_hat = self._value_at(structure, canon.to_canonical(tuple(betas)))
            lower_bound = lower_bound_from_k_hat(nest, cache_words, k_hat)
        return TilePlan(
            nest=nest,
            cache_words=cache_words,
            budget=budget,
            canonical_key=canon.form.key(),
            exponent=exponent,
            lambdas=lambdas,
            fractional_blocks=fractional,
            tile=tile,
            lower_bound=lower_bound,
            cache_hit=hit,
        )

    def plan_request(self, request: PlanRequest, include_bound: bool = True) -> TilePlan:
        return self.plan(
            request.nest, request.cache_words, request.budget, include_bound=include_bound
        )

    def plan_hierarchy(
        self,
        nest: LoopNest,
        hierarchy: "MemoryHierarchy | Sequence[int]",
        budget: str = "per-array",
        include_bound: bool = True,
    ) -> HierarchyPlan:
        """Nested plans for a whole memory hierarchy, one cache walk.

        Every level shares the nest's canonical structure, so the stack
        costs one multiparametric solve *ever* (the first level of the
        first query on a cold structure) and one cached piece evaluation
        per level afterwards — structurally identical nests at different
        capacity stacks are warm hits.  Tiles are repaired jointly by
        :func:`~repro.core.integer.nested_integer_repair`, so level-l
        blocks never exceed level-(l+1) blocks; everything else about
        each level (exponent, lambdas, lower bound) is exactly the
        single-level :meth:`plan` answer at that capacity.
        """
        if not isinstance(hierarchy, MemoryHierarchy):
            hierarchy = MemoryHierarchy(capacities=tuple(int(c) for c in hierarchy))
        capacities = hierarchy.capacities
        if budget == "aggregate" and capacities[0] < nest.num_arrays:
            raise ValueError(
                f"aggregate budget needs the innermost level >= {nest.num_arrays} "
                f"words (one per array), got {capacities[0]}"
            )
        plans = [
            self.plan(nest, capacity, budget, include_bound=include_bound)
            for capacity in capacities
        ]
        tiles = nested_integer_repair(
            nest, [plan.fractional_blocks for plan in plans], capacities, budget
        )
        levels = tuple(replace(plan, tile=tile) for plan, tile in zip(plans, tiles))
        return HierarchyPlan(
            nest=nest,
            capacities=capacities,
            budget=budget,
            canonical_key=plans[0].canonical_key,
            levels=levels,
            cache_hit=plans[0].cache_hit,
        )

    def certificate(self, nest: LoopNest, cache_words: int) -> Theorem3Certificate:
        """Cache-served Theorem-3 certificate — no LP solve on a warm hit.

        Every cached piece *is* a vertex ``(zeta, s)`` of the
        beta-independent dual polyhedron (see :mod:`repro.core.mplp`), so
        the minimizing piece at ``beta`` doubles as the optimal dual
        multipliers there; the primal vertex comes from the same
        guarded primal-map machinery :meth:`plan` uses.  The result is
        exactly what :func:`repro.core.duality.theorem3_certificate`
        would compute — strong duality holds by construction — at cache
        cost instead of two exact simplex runs.
        """
        if cache_words < 2:
            raise ValueError("certificates need cache_words >= 2")
        betas = tuple(self._betas(nest.bounds, cache_words))
        if any(b > _BETA_CAP for b in betas):
            # Outside the certified domain of the pruned piece set.
            return theorem3_certificate(nest, cache_words, betas=betas)
        canon = self.canonicalization(nest)
        structure, _ = self._structure(canon)
        canon_betas = canon.to_canonical(betas)
        value, piece_idx = self._evaluate(structure, canon_betas)
        value, canon_lambdas = self._primal_for_piece(structure, canon_betas, value, piece_idx)
        piece = structure.pvf.pieces[piece_idx]
        lambdas = canon.from_canonical(canon_lambdas)
        zeta = canon.from_canonical(piece.source_zeta)
        s = [_ZERO] * nest.num_arrays
        for row, orig in enumerate(canon.array_order):
            s[orig] = piece.source_s[row]
        s = tuple(s)
        return Theorem3Certificate(
            nest=nest,
            cache_words=cache_words,
            betas=betas,
            primal_value=value,
            dual_value=value,
            lambdas=lambdas,
            dual=DualSolution(zeta=zeta, s=s, objective=value),
            complementary_slackness=_complementary_slackness(nest, betas, lambdas, zeta, s),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike | None = None) -> Path:
        """Write the structure cache as JSON — crash-safe and serialised.

        The payload lands in a ``mkstemp`` sibling first and is moved
        over the target with :func:`os.replace` (an atomic rename on
        POSIX and Windows), so a crash mid-write can never leave a
        truncated or half-old cache file behind; readers see either the
        previous file or the complete new one.  Whole calls additionally
        hold the planner's I/O lock, so concurrent sessions sharing one
        planner cannot interleave their writes (last writer wins, with
        each write internally consistent).
        """
        target = Path(path) if path is not None else self.cache_path
        if target is None:
            raise ValueError("no cache path given")
        with self._io_lock:
            with self._lock:
                entries = {
                    key: {"pieces": [_piece_to_json(p) for p in plan.pvf.pieces]}
                    for key, plan in self._structures.items()
                }
            payload = {
                "version": _SCHEMA_VERSION,
                "checksum": _entries_checksum(entries),
                "entries": entries,
            }
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, indent=1)
                    handle.write("\n")
                os.replace(tmp, target)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return target

    def load(self, path: str | os.PathLike) -> int:
        """Load structures from JSON; returns the number installed.

        Serialised against concurrent :meth:`save` calls by the same
        I/O lock, so a load never reads a file mid-write through a
        non-atomic filesystem and never interleaves with this planner's
        own writer.

        A corrupt cache is **never fatal**: a truncated/empty file,
        wrong schema version, checksum mismatch, or malformed entry is
        quarantined to ``<path>.corrupt`` (for post-mortem) and the
        planner starts with an empty cache — the solves it would have
        warmed simply happen again.  Validation is two-phase (parse
        everything, then install), so a file that goes bad halfway never
        installs a partial structure set.  Caches written before the
        checksum field existed are accepted.
        """
        path = Path(path)
        with self._io_lock:
            text = path.read_text()
        if faults.active("corrupt-cache-read"):
            # Simulate a torn read / truncated file: keep half the bytes.
            text = text[: len(text) // 2]
        staged, reason = self._parse_cache(text, path)
        if reason is not None:
            self._quarantine(path, reason)
            return 0
        for key, pieces in staged:
            # Snapshot loads stay local: publishing a whole file to the
            # shared store belongs to whoever solved it, not every reader.
            self.install_structure(key, pieces, publish=False)
        return len(staged)

    def _parse_cache(
        self, text: str, path: Path
    ) -> tuple[list[tuple[str, list[dict]]], str | None]:
        """Validate a cache file's full content; never raises.

        Returns ``(staged_entries, None)`` on success or ``([], reason)``
        when the file cannot be trusted.
        """
        if not text.strip():
            return [], "empty file"
        try:
            blob = json.loads(text)
        except json.JSONDecodeError as exc:
            return [], f"invalid JSON: {exc}"
        if not isinstance(blob, dict):
            return [], "top level is not a JSON object"
        if blob.get("version") != _SCHEMA_VERSION:
            return [], f"unsupported plan-cache version {blob.get('version')!r}"
        entries = blob.get("entries", {})
        if not isinstance(entries, dict):
            return [], "entries is not a JSON object"
        checksum = blob.get("checksum")
        if checksum is not None and checksum != _entries_checksum(entries):
            return [], "checksum mismatch"
        staged: list[tuple[str, list[dict]]] = []
        for key, entry in entries.items():
            try:
                pieces = entry["pieces"]
                CanonicalForm.from_key(key)
                parsed = [_piece_from_json(piece) for piece in pieces]
                if not parsed:
                    raise ValueError("no pieces")
            except Exception as exc:
                return [], f"malformed entry {key!r}: {exc}"
            staged.append((key, pieces))
        return staged, None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt cache aside and continue with an empty cache."""
        corrupt = path.with_name(path.name + ".corrupt")
        moved = ""
        try:
            os.replace(path, corrupt)
            moved = f"; original preserved at {corrupt}"
        except OSError:
            pass
        _log.warning(
            "plan cache %s is unusable (%s); starting with an empty cache%s",
            path, reason, moved,
        )
