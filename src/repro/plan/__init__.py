"""Batched tiling-plan service (paper §7's compiler-pass use case, at scale).

A *plan* is the answer a compiler or autotuner wants from the paper's
machinery: the optimal tile, its exponent, and the communication lower
bound for one (loop nest, cache size) query.  Serving many such queries
— problem x sizes x cache levels — without re-running the rational
simplex per call is what this package does:

* :mod:`repro.core.canonical` reduces each query to a bounds-independent
  canonical structure (the LP depends only on the projection pattern);
* :class:`Planner` memoises one multiparametric solve per structure (an
  in-memory LRU with optional JSON-on-disk persistence) and substitutes
  bounds and cache size at lookup time, exactly;
* :func:`plan_batch` sweeps request lists, warming distinct structures
  in parallel worker processes and returning ordered results.
"""

from .batch import plan_batch, sweep_requests
from .planner import HierarchyPlan, Planner, PlannerStats, PlanRequest, TilePlan

__all__ = [
    "HierarchyPlan",
    "Planner",
    "PlannerStats",
    "PlanRequest",
    "TilePlan",
    "plan_batch",
    "sweep_requests",
]
