"""Parallel sweep engine: ordered batch planning over request lists.

The expensive, parallelisable unit of work is the *structure solve*
(multiparametric LP per canonical form, §7) — seconds for deep nests —
while per-query evaluation against a warm cache is tens of
microseconds.  :func:`plan_batch` therefore fans the distinct missing
structures out to worker processes, installs the returned piece sets
into the shared :class:`~repro.plan.planner.Planner`, and then serves
every request in order from the warm cache in the parent process.

Results are returned in request order, so callers can zip them back
against their inputs (the batch CLI emits them as JSON lines the same
way).
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Sequence

from ..core.canonical import CanonicalForm
from ..core.loopnest import LoopNest
from ..core.mplp import parametric_tile_exponent
from ..obs import MetricsRegistry, merge_worker_delta
from ..util import deadline, faults
from .planner import Planner, PlanRequest, TilePlan, _piece_to_json

__all__ = ["plan_batch", "sweep_requests"]


def _solve_structure(key: str) -> tuple[str, list[dict], dict]:
    """Worker entry point: one multiparametric solve per canonical key.

    Only strings and JSON-able dicts cross the process boundary, so the
    pool works under any start method (fork or spawn).  The third item
    is a metrics-registry snapshot of the worker's own observations —
    the parent merges it like ``meta.degraded`` travels, so no solve
    time is lost to process isolation.
    """
    if faults.active("worker-crash"):
        # Hard exit (no unwinding), like a real OOM kill or segfault:
        # this is what produces BrokenProcessPool in the parent.
        os._exit(17)
    registry = MetricsRegistry()
    started = time.perf_counter()
    form = CanonicalForm.from_key(key)
    pvf = parametric_tile_exponent(form.to_nest())
    registry.histogram("repro_worker_solve_seconds").observe(
        time.perf_counter() - started
    )
    registry.counter("repro_worker_structure_solves_total").inc()
    return key, [_piece_to_json(p) for p in pvf.pieces], registry.snapshot()


def _as_request(item: PlanRequest | tuple) -> PlanRequest:
    if isinstance(item, PlanRequest):
        return item
    if isinstance(item, LoopNest):
        raise TypeError("a bare LoopNest has no cache size; pass (nest, cache_words)")
    nest, cache_words, *rest = item
    if len(rest) > 1:
        raise TypeError(f"bad request tuple of length {2 + len(rest)}")
    return PlanRequest(nest=nest, cache_words=cache_words, budget=rest[0] if rest else "per-array")


def plan_batch(
    requests: Iterable[PlanRequest | tuple],
    planner: Planner | None = None,
    max_workers: int | None = None,
    include_bound: bool = True,
    events: dict | None = None,
) -> list[TilePlan]:
    """Serve a batch of plan queries, in request order.

    Parameters
    ----------
    requests:
        :class:`PlanRequest` objects, or ``(nest, cache_words)`` /
        ``(nest, cache_words, budget)`` tuples.
    planner:
        The cache to use (and warm).  A fresh private
        :class:`Planner` is created when omitted.
    max_workers:
        Worker processes for missing-structure solves.  ``0`` or ``1``
        disables the pool; ``None`` lets the executor pick.  The pool is
        only spun up when at least two distinct structures are missing —
        otherwise fork/pool overhead cannot pay for itself.
    events:
        Optional out-dict: ``events["degraded"]`` is set when a pool
        broke mid-run (worker crash) and the surviving structure solves
        were kept while the rest were re-solved serially.  A pool that
        never starts (restricted sandbox) is *not* degradation — the
        serial path is this module's documented fallback.
    """
    reqs = [_as_request(item) for item in requests]
    if planner is None:
        planner = Planner()
    missing: list[str] = []
    seen: set[str] = set()
    for req in reqs:
        key = planner.canonicalization(req.nest).form.key()
        # probe_structure also adopts shared-store entries, so a sibling
        # process's solve never re-runs here.
        if key not in seen and not planner.probe_structure(key):
            seen.add(key)
            missing.append(key)
    if len(missing) >= 2 and max_workers not in (0, 1):
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(_solve_structure, key) for key in missing]
                for future in futures:
                    key, pieces, delta = future.result()
                    planner.install_structure(key, pieces)
                    merge_worker_delta(delta)
        except BrokenProcessPool:
            # A worker crashed mid-run.  Structures installed before the
            # crash stay installed; the serial serving loop below solves
            # whatever is still missing on demand — slower, same answers.
            if events is not None:
                events["degraded"] = True
                events.setdefault("degraded_reasons", []).append("plan-pool-crash")
        except (OSError, RuntimeError):
            # No usable process pool (restricted sandbox, missing
            # semaphores, ...): the serial path below fills the cache.
            pass
    out = []
    for req in reqs:
        deadline.checkpoint("plan-batch")
        out.append(planner.plan_request(req, include_bound=include_bound))
    return out


def sweep_requests(
    builder,
    size_axes: Sequence[Sequence[int]],
    cache_sizes: Sequence[int],
    budget: str = "per-array",
) -> list[PlanRequest]:
    """Cartesian-product request list: ``sizes x cache sizes``.

    ``builder`` is a catalog-style constructor (``matmul``, ``nbody``,
    ...); ``size_axes`` gives the candidate values per constructor
    argument.  Ordering is row-major with cache size innermost, matching
    the ``--sweep`` CLI.
    """
    out = []
    for sizes in itertools.product(*size_axes):
        nest = builder(*sizes)
        for m in cache_sizes:
            out.append(PlanRequest(nest=nest, cache_words=int(m), budget=budget))
    return out
