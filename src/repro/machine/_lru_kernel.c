/* Native kernels for the batched trace-simulation engine.
 *
 * Compiled on demand by repro.machine.native (gcc -O2 -shared -fPIC) and
 * loaded through ctypes; every entry point has a pure-Python/numpy fallback,
 * so this file is an accelerator, never a requirement.
 *
 * Two kernels:
 *
 *   lru_process / lru_flush — single-capacity fully-associative LRU over
 *     line ids.  Lines are dense ids < num_lines, so residency lookup is a
 *     direct-indexed slot array; recency is an intrusive doubly-linked list
 *     threaded through fixed node arrays (no allocation per access).  State
 *     persists across calls so callers can stream the trace in chunks.
 *
 *   reuse_distances — exact LRU stack distances (Olken's algorithm) via a
 *     Fenwick tree over last-access positions: dist[t] = number of distinct
 *     *other* lines touched since the previous access to lines[t], or -1
 *     for a cold (first) access.  One O(log n) query + two O(log n) updates
 *     per access; the caller turns the distances into the full miss-rate
 *     curve (misses at capacity C = cold + #{dist >= C}).
 */

#include <stdint.h>

/* state layout: [0]=fill [1]=head(MRU) [2]=tail(LRU) [3]=hits [4]=misses
 * [5]=writebacks.  head/tail are -1 while the cache is empty. */

void lru_process(int64_t *state, int64_t capacity, int64_t *slot,
                 int64_t *node_line, int64_t *node_prev, int64_t *node_next,
                 uint8_t *node_dirty, const int64_t *lines,
                 const uint8_t *writes, int64_t n, uint8_t *miss_out)
{
    int64_t fill = state[0], head = state[1], tail = state[2];
    int64_t hits = state[3], misses = state[4], writebacks = state[5];

    for (int64_t t = 0; t < n; t++) {
        int64_t line = lines[t];
        uint8_t w = writes[t];
        int64_t node = slot[line];
        if (node >= 0) {
            hits++;
            miss_out[t] = 0;
            node_dirty[node] |= w;
            if (node != head) { /* unlink, splice at head */
                int64_t p = node_prev[node], nx = node_next[node];
                node_next[p] = nx;
                if (nx >= 0)
                    node_prev[nx] = p;
                else
                    tail = p;
                node_prev[node] = -1;
                node_next[node] = head;
                node_prev[head] = node;
                head = node;
            }
            continue;
        }
        misses++;
        miss_out[t] = 1;
        if (fill < capacity) {
            node = fill++;
        } else { /* evict LRU tail */
            node = tail;
            if (node_dirty[node])
                writebacks++;
            slot[node_line[node]] = -1;
            tail = node_prev[node];
            if (tail >= 0)
                node_next[tail] = -1;
            else
                head = -1; /* evicted the only resident line */
        }
        node_line[node] = line;
        node_dirty[node] = w;
        node_prev[node] = -1;
        node_next[node] = head;
        if (head >= 0)
            node_prev[head] = node;
        else
            tail = node;
        head = node;
        slot[line] = node;
    }
    state[0] = fill;
    state[1] = head;
    state[2] = tail;
    state[3] = hits;
    state[4] = misses;
    state[5] = writebacks;
}

/* End-of-run accounting: write back every resident dirty line. */
void lru_flush(int64_t *state, int64_t *slot, int64_t *node_line,
               uint8_t *node_dirty)
{
    int64_t fill = state[0];
    for (int64_t k = 0; k < fill; k++) {
        if (node_dirty[k])
            state[5]++;
        node_dirty[k] = 0;
        slot[node_line[k]] = -1;
    }
    state[0] = 0;
    state[1] = -1;
    state[2] = -1;
}

/* prev[t] = position of the previous access to lines[t], or -1 if cold
 * (precomputed by the caller).  bit is a zeroed Fenwick array of n+1
 * int32 counters; dist receives the stack distances (-1 for cold). */
void reuse_distances(const int64_t *prev, int64_t n, int32_t *bit,
                     int64_t *dist)
{
    int64_t active = 0; /* lines seen so far == set bits in the tree */
    for (int64_t t = 0; t < n; t++) {
        int64_t p = prev[t];
        if (p < 0) {
            dist[t] = -1;
            active++;
        } else {
            /* distinct other lines since p == active last-access marks
             * strictly after position p */
            int64_t before = 0;
            for (int64_t i = p + 1; i > 0; i -= i & (-i))
                before += bit[i];
            dist[t] = active - before;
            for (int64_t i = p + 1; i <= n; i += i & (-i))
                bit[i]--;
        }
        for (int64_t i = t + 1; i <= n; i += i & (-i))
            bit[i]++;
    }
}
