"""Cache replacement policies for the trace-driven validator.

Per-access policies:

* :class:`FullyAssociativeLRU` — the standard online policy; the
  Hong–Kung bounds hold for *any* policy, and LRU within a factor of 2
  (capacity) of optimal, so LP tilings should land within a small
  constant of the lower bound under LRU.
* :class:`DirectMappedCache` — a deliberately weak policy to show the
  *gap* a bad cache introduces (conflict misses the model ignores).
* :func:`simulate_belady` — the offline optimal (furthest-next-use)
  policy: the tightest realisable traffic for a fixed access order,
  bounding from below what any hardware could do with that schedule.

Batched engines (the fast path of the trace-driven validator):

* :class:`BatchLRU` — streaming LRU over numpy line chunks, bit-identical
  to :class:`FullyAssociativeLRU` + flush but one to two orders of
  magnitude faster (native kernel when available, tight Python loop
  otherwise); reports a per-chunk miss mask so callers can attribute
  traffic per array without touching individual accesses.
* :func:`miss_curve` — the stack-distance simulator: one pass over the
  trace yields exact hit/miss/write-back counts for **every** cache
  capacity simultaneously (:class:`MissCurve`), because an access hits a
  capacity-``C`` LRU iff its stack distance is below ``C`` and a write
  triggers one write-back iff the max distance since the previous write
  reaches ``C`` (see :mod:`repro.machine.stackdist`).

All policies work on line addresses; write-backs of dirty lines are
counted separately so reports can separate read and write traffic.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .stackdist import stack_distances, write_interval_maxima

__all__ = [
    "CacheStats",
    "FullyAssociativeLRU",
    "DirectMappedCache",
    "simulate_belady",
    "BatchLRU",
    "MissCurve",
    "miss_curve",
]


@dataclass
class CacheStats:
    """Aggregate counters for one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def words_moved(self, line_words: int = 1, count_writebacks: bool = True) -> int:
        """Total slow-memory traffic in words (fills + optional write-backs)."""
        moved = self.misses * line_words
        if count_writebacks:
            moved += self.writebacks * line_words
        return moved

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
        )


class FullyAssociativeLRU:
    """Fully-associative LRU cache over line addresses.

    ``capacity_lines`` whole lines; ``access`` returns True on hit.
    Dirty lines write back on eviction (write-allocate, write-back).
    """

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.stats = CacheStats()

    def access(self, line: int, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        if line in self._lines:
            self.stats.hits += 1
            self._lines.move_to_end(line)
            if is_write:
                self._lines[line] = True
            return True
        self.stats.misses += 1
        if len(self._lines) >= self.capacity:
            _, dirty = self._lines.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        self._lines[line] = is_write
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run accounting)."""
        for _, dirty in self._lines.items():
            if dirty:
                self.stats.writebacks += 1
        self._lines.clear()

    @property
    def resident_lines(self) -> int:
        return len(self._lines)


class DirectMappedCache:
    """Direct-mapped cache: line maps to set ``line % num_sets``.

    Included as a *negative control*: the paper's model assumes an
    ideal fully-associative cache; direct mapping adds conflict misses
    that inflate traffic above the analytic prediction.
    """

    def __init__(self, num_sets: int):
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.num_sets = num_sets
        self._sets: dict[int, tuple[int, bool]] = {}  # set -> (line, dirty)
        self.stats = CacheStats()

    def access(self, line: int, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        idx = line % self.num_sets
        occupant = self._sets.get(idx)
        if occupant is not None and occupant[0] == line:
            self.stats.hits += 1
            self._sets[idx] = (line, occupant[1] or is_write)
            return True
        self.stats.misses += 1
        if occupant is not None and occupant[1]:
            self.stats.writebacks += 1
        self._sets[idx] = (line, is_write)
        return False

    def flush(self) -> None:
        for _, (_, dirty) in self._sets.items():
            if dirty:
                self.stats.writebacks += 1
        self._sets.clear()


def simulate_belady(
    trace: Sequence[tuple[int, bool]], capacity_lines: int
) -> CacheStats:
    """Offline-optimal (Belady/MIN) simulation of a full line trace.

    ``trace`` is a sequence of ``(line, is_write)``.  Evicts the
    resident line whose next use is furthest in the future (never-used
    lines first), via a lazily-invalidated max-heap.  Returns the run's
    :class:`CacheStats` (with end-of-run dirty flushes included).
    """
    if capacity_lines < 1:
        raise ValueError("capacity_lines must be >= 1")
    n = len(trace)
    INF = n + 1
    # next_use[t] = next position after t accessing the same line.
    next_use = [INF] * n
    last_pos: dict[int, int] = {}
    for t in range(n - 1, -1, -1):
        line = trace[t][0]
        next_use[t] = last_pos.get(line, INF)
        last_pos[line] = t

    stats = CacheStats()
    resident: dict[int, bool] = {}  # line -> dirty
    heap: list[tuple[int, int]] = []  # (-next_use, line), lazily invalidated
    current_next: dict[int, int] = {}

    for t, (line, is_write) in enumerate(trace):
        stats.accesses += 1
        nxt = next_use[t]
        if line in resident:
            stats.hits += 1
            resident[line] = resident[line] or is_write
        else:
            stats.misses += 1
            if len(resident) >= capacity_lines:
                while True:
                    neg, victim = heapq.heappop(heap)
                    if victim in resident and current_next.get(victim) == -neg:
                        break
                dirty = resident.pop(victim)
                current_next.pop(victim, None)
                if dirty:
                    stats.writebacks += 1
            resident[line] = is_write
        current_next[line] = nxt
        heapq.heappush(heap, (-nxt, line))

    for dirty in resident.values():
        if dirty:
            stats.writebacks += 1
    return stats


# ---------------------------------------------------------------------------
# batched engines
# ---------------------------------------------------------------------------


class BatchLRU:
    """Streaming fully-associative LRU over numpy line chunks.

    Produces exactly the accounting of :class:`FullyAssociativeLRU`
    followed by :meth:`FullyAssociativeLRU.flush`, but consumes whole
    chunks of ``(lines, writes)`` arrays and returns the per-access miss
    mask of each chunk.  Lines must be dense nonnegative ids below
    ``num_lines`` (true for :class:`repro.simulate.trace.AddressMap`
    addresses), which lets the native kernel use a direct-indexed
    residency table.  Falls back to a tight ``OrderedDict`` loop when
    the native kernel is unavailable.
    """

    def __init__(self, capacity_lines: int, num_lines: int, use_native: bool | None = None):
        if capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1")
        if num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        self.capacity = capacity_lines
        self.num_lines = num_lines
        self.stats = CacheStats()
        from .native import get_kernel

        self._kernel = get_kernel() if use_native in (None, True) else None
        if use_native is True and self._kernel is None:
            raise RuntimeError("native kernel requested but unavailable")
        if self._kernel is not None:
            self._state = np.zeros(6, dtype=np.int64)
            self._state[1] = self._state[2] = -1
            self._slot = np.full(num_lines, -1, dtype=np.int64)
            # fill never exceeds the distinct-line count, so an oversized
            # cache (capacity >> address space) needs only num_lines nodes
            nodes = min(capacity_lines, num_lines)
            self._node_line = np.zeros(nodes, dtype=np.int64)
            self._node_prev = np.zeros(nodes, dtype=np.int64)
            self._node_next = np.zeros(nodes, dtype=np.int64)
            self._node_dirty = np.zeros(nodes, dtype=np.uint8)
        else:
            self._lines: OrderedDict[int, bool] = OrderedDict()

    def process(self, lines: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Feed one chunk; return its boolean miss mask."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes = np.ascontiguousarray(writes, dtype=np.uint8)
        n = len(lines)
        if len(writes) != n:
            raise ValueError("lines and writes must have equal length")
        self.stats.accesses += n
        if self._kernel is not None:
            return self._process_native(lines, writes, n)
        return self._process_python(lines, writes, n)

    def _process_native(self, lines: np.ndarray, writes: np.ndarray, n: int) -> np.ndarray:
        import ctypes

        from ..util import faults
        from .native import NativeKernelError, mark_unavailable

        i64p = ctypes.POINTER(ctypes.c_int64)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        miss = np.empty(n, dtype=np.uint8)
        try:
            if faults.active("native-kernel"):
                raise faults.InjectedFault("native-kernel")
            self._kernel.lru_process(
                self._state.ctypes.data_as(i64p),
                ctypes.c_int64(self.capacity),
                self._slot.ctypes.data_as(i64p),
                self._node_line.ctypes.data_as(i64p),
                self._node_prev.ctypes.data_as(i64p),
                self._node_next.ctypes.data_as(i64p),
                self._node_dirty.ctypes.data_as(u8p),
                lines.ctypes.data_as(i64p),
                writes.ctypes.data_as(u8p),
                ctypes.c_int64(n),
                miss.ctypes.data_as(u8p),
            )
        except (OSError, AttributeError, ctypes.ArgumentError, faults.InjectedFault) as exc:
            # Mid-stream failure: this instance's LRU state is suspect, so
            # demote the process and let a computation-level entry point
            # (nest_miss_curve, run_trace_simulation) redo the whole run
            # on the numpy path — partial state is never mixed.
            mark_unavailable(f"runtime kernel failure: {exc}")
            raise NativeKernelError(str(exc)) from exc
        self._sync_native_stats()
        return miss.view(bool)

    def _sync_native_stats(self) -> None:
        self.stats.hits = int(self._state[3])
        self.stats.misses = int(self._state[4])
        self.stats.writebacks = int(self._state[5])

    def _process_python(self, lines: np.ndarray, writes: np.ndarray, n: int) -> np.ndarray:
        cache = self._lines
        capacity = self.capacity
        move = cache.move_to_end
        popitem = cache.popitem
        hits = misses = writebacks = 0
        out: list[bool] = []
        record = out.append
        for line, w in zip(lines.tolist(), writes.tolist()):
            if line in cache:
                hits += 1
                move(line)
                if w:
                    cache[line] = True
                record(False)
            else:
                misses += 1
                if len(cache) >= capacity:
                    _, dirty = popitem(last=False)
                    if dirty:
                        writebacks += 1
                cache[line] = bool(w)
                record(True)
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.writebacks += writebacks
        return np.array(out, dtype=bool)

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run accounting)."""
        if self._kernel is not None:
            import ctypes

            i64p = ctypes.POINTER(ctypes.c_int64)
            u8p = ctypes.POINTER(ctypes.c_uint8)
            self._kernel.lru_flush(
                self._state.ctypes.data_as(i64p),
                self._slot.ctypes.data_as(i64p),
                self._node_line.ctypes.data_as(i64p),
                self._node_dirty.ctypes.data_as(u8p),
            )
            self._sync_native_stats()
            return
        for dirty in self._lines.values():
            if dirty:
                self.stats.writebacks += 1
        self._lines.clear()


@dataclass(frozen=True)
class MissCurve:
    """Exact LRU statistics for *every* cache capacity, from one pass.

    Built by :func:`miss_curve`.  Internally two sorted arrays: the
    finite stack distances (misses at capacity ``C`` are the cold misses
    plus the distances ``>= C``) and the per-write interval maxima
    (write-backs at ``C`` are the maxima ``>= C``).  Point queries are
    O(log n); :meth:`sweep` vectorises a whole capacity range.
    """

    accesses: int
    distinct_lines: int
    cold_misses: int
    finite_distances: np.ndarray  # sorted ascending
    write_maxima: np.ndarray  # sorted ascending, cold sentinel included

    def _clamp(self, capacity: int) -> int:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        # the cold sentinel accesses+1 exceeds every finite distance, so
        # clamping capacities there keeps oversized caches exact
        return min(int(capacity), self.accesses + 1)

    def misses_at(self, capacity: int) -> int:
        c = self._clamp(capacity)
        fd = self.finite_distances
        return self.cold_misses + len(fd) - int(np.searchsorted(fd, c, side="left"))

    def hits_at(self, capacity: int) -> int:
        return self.accesses - self.misses_at(capacity)

    def writebacks_at(self, capacity: int) -> int:
        c = self._clamp(capacity)
        wm = self.write_maxima
        return len(wm) - int(np.searchsorted(wm, c, side="left"))

    def stats_at(self, capacity: int) -> CacheStats:
        misses = self.misses_at(capacity)
        return CacheStats(
            accesses=self.accesses,
            hits=self.accesses - misses,
            misses=misses,
            writebacks=self.writebacks_at(capacity),
        )

    def sweep(
        self, capacities: Sequence[int] | np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(capacities, misses, writebacks)`` over a capacity range.

        Default range ``1 .. distinct_lines + 1`` covers the whole curve:
        beyond it every warm access hits and only cold misses remain.
        """
        if capacities is None:
            caps = np.arange(1, self.distinct_lines + 2, dtype=np.int64)
        else:
            caps = np.asarray(capacities, dtype=np.int64)
            if len(caps) and caps.min() < 1:
                raise ValueError("capacities must be >= 1")
        clamped = np.minimum(caps, self.accesses + 1)
        fd = self.finite_distances
        wm = self.write_maxima
        misses = self.cold_misses + len(fd) - np.searchsorted(fd, clamped, side="left")
        writebacks = len(wm) - np.searchsorted(wm, clamped, side="left")
        return caps, misses.astype(np.int64), writebacks.astype(np.int64)


def miss_curve(
    trace: "Sequence[tuple[int, bool]] | np.ndarray",
    writes: "np.ndarray | Sequence[bool] | None" = None,
    use_native: bool | None = None,
) -> MissCurve:
    """Stack-distance LRU simulation of a full trace, all capacities at once.

    ``trace`` is either a sequence of ``(line, is_write)`` pairs (the
    :func:`simulate_belady` convention) or a line array accompanied by a
    boolean ``writes`` array.  One O(n log n) pass replaces one LRU
    simulation *per capacity*; the result answers hit/miss/write-back
    queries for any capacity, bit-identical to
    :class:`FullyAssociativeLRU` + flush.
    """
    if writes is None:
        pairs = list(trace)
        lines = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        writes_arr = np.fromiter(
            (bool(p[1]) for p in pairs), dtype=bool, count=len(pairs)
        )
    else:
        lines = np.ascontiguousarray(trace, dtype=np.int64)
        writes_arr = np.asarray(writes, dtype=bool)
    if len(lines) != len(writes_arr):
        raise ValueError("trace lines and writes must have equal length")
    n = len(lines)
    if n == 0:
        return MissCurve(
            accesses=0,
            distinct_lines=0,
            cold_misses=0,
            finite_distances=np.empty(0, dtype=np.int64),
            write_maxima=np.empty(0, dtype=np.int64),
        )
    dist, order = stack_distances(lines, use_native=use_native)
    cold = dist == n + 1
    wmax = write_interval_maxima(dist, writes_arr, order)
    return MissCurve(
        accesses=n,
        distinct_lines=int(cold.sum()),
        cold_misses=int(cold.sum()),
        finite_distances=np.sort(dist[~cold]),
        write_maxima=np.sort(wmax),
    )
