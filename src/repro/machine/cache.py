"""Cache replacement policies for the trace-driven validator.

Three policies:

* :class:`FullyAssociativeLRU` — the standard online policy; the
  Hong–Kung bounds hold for *any* policy, and LRU within a factor of 2
  (capacity) of optimal, so LP tilings should land within a small
  constant of the lower bound under LRU.
* :class:`DirectMappedCache` — a deliberately weak policy to show the
  *gap* a bad cache introduces (conflict misses the model ignores).
* :func:`simulate_belady` — the offline optimal (furthest-next-use)
  policy: the tightest realisable traffic for a fixed access order,
  bounding from below what any hardware could do with that schedule.

All policies work on line addresses; write-backs of dirty lines are
counted separately so reports can separate read and write traffic.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "CacheStats",
    "FullyAssociativeLRU",
    "DirectMappedCache",
    "simulate_belady",
]


@dataclass
class CacheStats:
    """Aggregate counters for one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def words_moved(self, line_words: int = 1, count_writebacks: bool = True) -> int:
        """Total slow-memory traffic in words (fills + optional write-backs)."""
        moved = self.misses * line_words
        if count_writebacks:
            moved += self.writebacks * line_words
        return moved

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
        )


class FullyAssociativeLRU:
    """Fully-associative LRU cache over line addresses.

    ``capacity_lines`` whole lines; ``access`` returns True on hit.
    Dirty lines write back on eviction (write-allocate, write-back).
    """

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.stats = CacheStats()

    def access(self, line: int, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        if line in self._lines:
            self.stats.hits += 1
            dirty = self._lines.pop(line)
            self._lines[line] = dirty or is_write
            return True
        self.stats.misses += 1
        if len(self._lines) >= self.capacity:
            _, dirty = self._lines.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        self._lines[line] = is_write
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run accounting)."""
        for _, dirty in self._lines.items():
            if dirty:
                self.stats.writebacks += 1
        self._lines.clear()

    @property
    def resident_lines(self) -> int:
        return len(self._lines)


class DirectMappedCache:
    """Direct-mapped cache: line maps to set ``line % num_sets``.

    Included as a *negative control*: the paper's model assumes an
    ideal fully-associative cache; direct mapping adds conflict misses
    that inflate traffic above the analytic prediction.
    """

    def __init__(self, num_sets: int):
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.num_sets = num_sets
        self._sets: dict[int, tuple[int, bool]] = {}  # set -> (line, dirty)
        self.stats = CacheStats()

    def access(self, line: int, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        idx = line % self.num_sets
        occupant = self._sets.get(idx)
        if occupant is not None and occupant[0] == line:
            self.stats.hits += 1
            self._sets[idx] = (line, occupant[1] or is_write)
            return True
        self.stats.misses += 1
        if occupant is not None and occupant[1]:
            self.stats.writebacks += 1
        self._sets[idx] = (line, is_write)
        return False

    def flush(self) -> None:
        for _, (_, dirty) in self._sets.items():
            if dirty:
                self.stats.writebacks += 1
        self._sets.clear()


def simulate_belady(
    trace: Sequence[tuple[int, bool]], capacity_lines: int
) -> CacheStats:
    """Offline-optimal (Belady/MIN) simulation of a full line trace.

    ``trace`` is a sequence of ``(line, is_write)``.  Evicts the
    resident line whose next use is furthest in the future (never-used
    lines first), via a lazily-invalidated max-heap.  Returns the run's
    :class:`CacheStats` (with end-of-run dirty flushes included).
    """
    if capacity_lines < 1:
        raise ValueError("capacity_lines must be >= 1")
    n = len(trace)
    INF = n + 1
    # next_use[t] = next position after t accessing the same line.
    next_use = [INF] * n
    last_pos: dict[int, int] = {}
    for t in range(n - 1, -1, -1):
        line = trace[t][0]
        next_use[t] = last_pos.get(line, INF)
        last_pos[line] = t

    stats = CacheStats()
    resident: dict[int, bool] = {}  # line -> dirty
    heap: list[tuple[int, int]] = []  # (-next_use, line), lazily invalidated
    current_next: dict[int, int] = {}

    for t, (line, is_write) in enumerate(trace):
        stats.accesses += 1
        nxt = next_use[t]
        if line in resident:
            stats.hits += 1
            resident[line] = resident[line] or is_write
        else:
            stats.misses += 1
            if len(resident) >= capacity_lines:
                while True:
                    neg, victim = heapq.heappop(heap)
                    if victim in resident and current_next.get(victim) == -neg:
                        break
                dirty = resident.pop(victim)
                current_next.pop(victim, None)
                if dirty:
                    stats.writebacks += 1
            resident[line] = is_write
        current_next[line] = nxt
        heapq.heappush(heap, (-nxt, line))

    for dirty in resident.values():
        if dirty:
            stats.writebacks += 1
    return stats
