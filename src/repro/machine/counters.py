"""Per-array traffic accounting shared by the analytic and trace simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ArrayTraffic", "TrafficReport"]


@dataclass(frozen=True)
class ArrayTraffic:
    """Words moved for one array."""

    name: str
    loads: int
    stores: int

    @property
    def total(self) -> int:
        return self.loads + self.stores


@dataclass(frozen=True)
class TrafficReport:
    """Words moved between slow and fast memory for one execution.

    ``source`` records which simulator produced it (``"analytic"``,
    ``"lru"``, ``"belady"``, ``"direct"``), ``meta`` carries
    simulator-specific details (tile shape, loop order, line size).
    """

    nest_name: str
    per_array: tuple[ArrayTraffic, ...]
    source: str
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def loads(self) -> int:
        return sum(a.loads for a in self.per_array)

    @property
    def stores(self) -> int:
        return sum(a.stores for a in self.per_array)

    @property
    def total_words(self) -> int:
        return self.loads + self.stores

    def array(self, name: str) -> ArrayTraffic:
        for a in self.per_array:
            if a.name == name:
                return a
        raise KeyError(f"no traffic entry for array {name!r}")

    def ratio_to(self, bound_words: float) -> float:
        """Measured traffic over a lower bound — the optimality gap."""
        if bound_words <= 0:
            raise ValueError("bound must be positive")
        return self.total_words / bound_words

    def summary(self) -> str:
        per = ", ".join(f"{a.name}:{a.loads}+{a.stores}" for a in self.per_array)
        return f"{self.nest_name}[{self.source}]: {self.total_words} words ({per})"
