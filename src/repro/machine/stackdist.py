"""Exact LRU stack distances for whole traces, computed in bulk.

The *stack distance* (reuse distance) of an access is the number of
distinct **other** lines touched since the previous access to the same
line — infinite for a first (cold) access.  The classic inclusion
property of LRU makes it the master quantity of cache simulation:

* the access **hits** a fully-associative LRU cache of capacity ``C``
  iff its stack distance is ``< C``, so a histogram of distances yields
  the exact miss count **for every capacity at once**;
* a dirty line writes back once per residency interval that contains a
  write, and residency intervals at capacity ``C`` are exactly the
  maximal runs of same-line accesses whose internal distances are all
  ``< C`` — so the per-write running maximum of distances since the
  previous write (:func:`write_interval_maxima`) yields the exact
  write-back count for every capacity as well.

Two implementations of the distance computation:

* a native Fenwick-tree kernel (Olken's algorithm, O(n log n) with tiny
  constants) via :mod:`repro.machine.native`;
* a pure-numpy fallback that reduces the distinct-count-in-window
  problem to offline 2D dominance counting and solves it with a
  merge-sort tree: the prefix ``[0, L)`` decomposes into one aligned
  power-of-two block per set bit of ``L``, and within a level all
  per-block binary searches collapse into a single global
  ``searchsorted`` by offsetting each sorted block by ``block_index *
  K``.  Also exact, O(n log^2 n) vectorised.

Cold accesses are reported with the sentinel distance ``n + 1`` (larger
than any finite distance, and than any capacity once clamped by the
caller), which keeps all downstream counting branch-free.
"""

from __future__ import annotations

import numpy as np

from ..util import faults
from .native import NativeKernelError, get_kernel, mark_unavailable

__all__ = ["previous_occurrences", "stack_distances", "write_interval_maxima"]


def previous_occurrences(lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(prev, order)``: per-access previous same-line position (-1 if cold).

    ``order`` is the stable line-grouped permutation (by line, then time)
    that callers reuse for other segmented passes over the trace.
    """
    n = len(lines)
    order = np.argsort(lines, kind="stable")
    grouped = lines[order]
    same = np.zeros(n, dtype=bool)  # same[i]: order[i] continues order[i-1]'s line
    if n > 1:
        np.equal(grouped[1:], grouped[:-1], out=same[1:])
    prev = np.full(n, -1, dtype=np.int64)
    cont = same[1:]
    prev[order[1:][cont]] = order[:-1][cont]
    return prev, order


def _distances_native(prev: np.ndarray, kernel) -> np.ndarray:
    import ctypes

    n = len(prev)
    prev = np.ascontiguousarray(prev, dtype=np.int64)
    bit = np.zeros(n + 1, dtype=np.int32)
    dist = np.empty(n, dtype=np.int64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i32p = ctypes.POINTER(ctypes.c_int32)
    try:
        if faults.active("native-kernel"):
            raise faults.InjectedFault("native-kernel")
        kernel.reuse_distances(
            prev.ctypes.data_as(i64p),
            ctypes.c_int64(n),
            bit.ctypes.data_as(i32p),
            dist.ctypes.data_as(i64p),
        )
    except (OSError, AttributeError, ctypes.ArgumentError, faults.InjectedFault) as exc:
        mark_unavailable(f"runtime kernel failure: {exc}")
        raise NativeKernelError(str(exc)) from exc
    return dist


def _count_less_in_prefix(
    values: np.ndarray, prefix_lens: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """``res[q] = #{ i < prefix_lens[q] : values[i] < thresholds[q] }``.

    Vectorised merge-sort tree (see module docstring).  ``values`` and
    ``thresholds`` must be nonnegative.
    """
    n = len(values)
    res = np.zeros(len(prefix_lens), dtype=np.int64)
    if n == 0 or len(prefix_lens) == 0:
        return res
    vals = values.astype(np.int64, copy=False)
    key_gap = np.int64(max(int(vals.max()), int(thresholds.max())) + 2)
    for j in range(int(n).bit_length()):
        bsize = 1 << j
        use = (prefix_lens & bsize) != 0
        nfull = (n >> j) << j
        if nfull == 0 or not np.any(use):
            continue
        blocks = np.sort(vals[:nfull].reshape(-1, bsize), axis=1)
        offsets = np.arange(nfull >> j, dtype=np.int64)[:, None] * key_gap
        keys = (blocks + offsets).ravel()
        # the bit-j block of prefix [0, L) starts at L with bits <= j cleared
        start = (prefix_lens[use] >> (j + 1)) << (j + 1)
        bidx = (start >> j).astype(np.int64)
        pos = np.searchsorted(keys, bidx * key_gap + thresholds[use], side="left")
        res[use] += pos - bidx * bsize
    return res


def _distances_numpy(prev: np.ndarray, order: np.ndarray, lines: np.ndarray) -> np.ndarray:
    """Merge-sort-tree fallback, exact but ~an order slower than native.

    Identity used (``nxt`` = next same-line position, ``n+1`` if none)::

        dist(t) = #{t' in (prev_t, t) : nxt[t'] >= t}
                = [t - #{nxt < t}] - (prev_t + 1) + #{i <= prev_t : nxt[i] < t}

    The first bracket needs one sorted ``searchsorted`` (``nxt[t'] < t``
    already implies ``t' < t``); the last term is a prefix-threshold
    count handled by :func:`_count_less_in_prefix`.
    """
    n = len(prev)
    INF = np.int64(n + 1)
    nxt = np.full(n, INF, dtype=np.int64)
    grouped_same = prev[order[1:]] == order[:-1]
    nxt[order[:-1][grouped_same]] = order[1:][grouped_same]

    t = np.arange(n, dtype=np.int64)
    dist = np.full(n, INF, dtype=np.int64)
    warm = prev >= 0
    f = t - np.searchsorted(np.sort(nxt), t, side="left")
    g = _count_less_in_prefix(nxt, (prev[warm] + 1).astype(np.int64), t[warm])
    dist[warm] = f[warm] - (prev[warm] + 1) + g
    return dist


def stack_distances(
    lines: np.ndarray, use_native: bool | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Exact LRU stack distance of every access of a line trace.

    Returns ``(dist, order)``: ``dist[t]`` is the number of distinct other
    lines since the previous access to ``lines[t]`` (``n + 1`` for cold
    accesses), ``order`` the stable line-grouped permutation for reuse in
    segmented passes.  ``use_native=None`` picks the native kernel when
    available; True/False force one implementation (tests pin both).
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = len(lines)
    prev, order = previous_occurrences(lines)
    if n == 0:
        return np.empty(0, dtype=np.int64), order
    kernel = get_kernel() if use_native in (None, True) else None
    if use_native is True and kernel is None:
        raise RuntimeError("native kernel requested but unavailable")
    if kernel is not None:
        try:
            dist = _distances_native(prev, kernel)
        except NativeKernelError:
            # The distance pass is stateless, so the degradation retry
            # happens right here: same inputs, numpy path, same answer.
            return _distances_numpy(prev, order, lines), order
        dist[dist < 0] = n + 1  # cold sentinel
        return dist, order
    return _distances_numpy(prev, order, lines), order


def write_interval_maxima(
    dist: np.ndarray, writes: np.ndarray, order: np.ndarray
) -> np.ndarray:
    """Per write access, the max stack distance since the previous write.

    Grouped by line; the running maximum resets after every write (the
    maximum covers the half-open access interval ``(previous write,
    this write]``, cold sentinel included).  A write causes a write-back
    at capacity ``C`` iff its maximum is ``>= C``: it is then the first
    write of its residency interval, which ends dirty — once — whether by
    eviction or by the end-of-run flush.
    """
    n = len(dist)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    dist_g = dist[order]
    writes_g = writes[order]
    # order is grouped by line with each group led by its cold access, so
    # group heads are exactly the cold-sentinel positions; a segment starts
    # at a group head or directly after a write within the group.
    head = dist_g == np.int64(n + 1)
    seg_start = head.copy()
    if n > 1:
        seg_start[1:] |= writes_g[:-1] & ~head[1:]
    seg_id = np.cumsum(seg_start) - 1
    big = np.int64(n + 3)
    running = np.maximum.accumulate(dist_g + seg_id * big) - seg_id * big
    return running[writes_g]
