"""Two-level machine model and cache policies (the paper's cost model)."""

from .cache import (
    BatchLRU,
    CacheStats,
    DirectMappedCache,
    FullyAssociativeLRU,
    MissCurve,
    miss_curve,
    simulate_belady,
)
from .counters import ArrayTraffic, TrafficReport
from .model import MachineModel
from .native import NativeKernelError, native_available
from .stackdist import stack_distances, write_interval_maxima

__all__ = [
    "MachineModel",
    "CacheStats",
    "FullyAssociativeLRU",
    "DirectMappedCache",
    "simulate_belady",
    "BatchLRU",
    "MissCurve",
    "miss_curve",
    "stack_distances",
    "write_interval_maxima",
    "NativeKernelError",
    "native_available",
    "ArrayTraffic",
    "TrafficReport",
]
