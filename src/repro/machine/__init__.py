"""Two-level machine model and cache policies (the paper's cost model)."""

from .cache import CacheStats, DirectMappedCache, FullyAssociativeLRU, simulate_belady
from .counters import ArrayTraffic, TrafficReport
from .model import MachineModel

__all__ = [
    "MachineModel",
    "CacheStats",
    "FullyAssociativeLRU",
    "DirectMappedCache",
    "simulate_belady",
    "ArrayTraffic",
    "TrafficReport",
]
