"""The two-level machine model of the paper (§2).

A processor computes only on data resident in a *fast memory* (cache)
of ``cache_words`` words; an unbounded *slow memory* holds everything;
the cost of an execution is the number of words moved between the two.
This is the Hong–Kung red/blue-pebble model the lower bounds live in.

``line_words`` extends the model with cache-line granularity for the
trace-driven simulators (``line_words = 1`` recovers the paper's model
exactly; larger lines let the benchmarks show spatial-locality effects
the asymptotic theory ignores).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel"]


@dataclass(frozen=True)
class MachineModel:
    """Two-level memory hierarchy parameters.

    Attributes
    ----------
    cache_words:
        Fast-memory capacity ``M`` in words.
    line_words:
        Transfer granularity; traffic is counted in words but data
        moves in aligned groups of ``line_words`` (1 = paper model).
    name:
        Cosmetic label for reports.
    """

    cache_words: int
    line_words: int = 1
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.cache_words < 1:
            raise ValueError("cache_words must be >= 1")
        if self.line_words < 1:
            raise ValueError("line_words must be >= 1")
        if self.line_words > self.cache_words:
            raise ValueError("line_words cannot exceed cache_words")

    @property
    def cache_lines(self) -> int:
        """Number of whole lines the cache holds."""
        return self.cache_words // self.line_words

    def line_of(self, address: int) -> int:
        """Aligned line index containing ``address``."""
        if address < 0:
            raise ValueError("addresses are nonnegative")
        return address // self.line_words

    def describe(self) -> str:
        return f"{self.name}: M={self.cache_words} words, {self.line_words}-word lines"
