"""On-demand compilation and loading of the native simulation kernels.

The batched trace engine (:mod:`repro.simulate.trace_sim`) and the
stack-distance miss-curve (:mod:`repro.machine.stackdist`) have hot inner
loops that are sequential by nature (LRU recency updates, Fenwick-tree
walks) and therefore cannot be vectorised with numpy alone.  This module
compiles ``_lru_kernel.c`` into a shared library next to the package the
first time it is needed — plain ``cc -O2 -shared -fPIC``, no build system,
no third-party dependency — and exposes the entry points through ctypes.

Everything degrades gracefully: if no C compiler is available, the
compile times out or fails, or ``REPRO_NO_NATIVE`` is set in the
environment, :func:`get_kernel` returns ``None`` and callers fall back
to the pure-Python/numpy implementations.  The "native unavailable"
decision is cached once per process (with a single warning naming the
reason), so a missing compiler costs one probe, not one per call —
and a *runtime* kernel failure can demote the whole process the same
way through :func:`mark_unavailable`.  The cross-check test-suite
exercises both paths.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from ..util import faults

__all__ = [
    "NativeKernelError",
    "get_kernel",
    "mark_unavailable",
    "native_available",
    "reset",
]

_SOURCE = Path(__file__).with_name("_lru_kernel.c")
_SONAME = f"_lru_kernel-{sys.implementation.cache_tag}.so"

# tri-state cache: unset / kernel / None (= unavailable)
_KERNEL: "ctypes.CDLL | None" = None
_RESOLVED = False
#: Why the kernel is unavailable (set at most once per process).
_UNAVAILABLE_REASON: str | None = None


class NativeKernelError(RuntimeError):
    """A native kernel call failed at runtime.

    Raised by callers (e.g. :class:`repro.machine.cache.BatchLRU`) after
    they have demoted the process with :func:`mark_unavailable`; the
    computation-level entry points catch it and re-run on the numpy
    path, so the caller still gets the exact same answer.
    """


def _compile(reasons: list[str]) -> Path | None:
    """Build the shared library next to the source; return its path or None."""
    so_path = _SOURCE.with_name(_SONAME)
    try:
        if so_path.exists() and so_path.stat().st_mtime >= _SOURCE.stat().st_mtime:
            return so_path
    except OSError as exc:
        reasons.append(f"cannot stat kernel source: {exc}")
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        reasons.append("no C compiler (cc/gcc/clang) on PATH")
        return None
    # Compile to a temp file and rename atomically so concurrent test
    # processes never load a half-written library.
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(so_path.parent))
        os.close(fd)
        cmd = [compiler, "-O2", "-shared", "-fPIC", "-o", tmp, str(_SOURCE)]
        proc = subprocess.run(cmd, capture_output=True, timeout=120)
        if proc.returncode != 0:
            os.unlink(tmp)
            reasons.append(f"compile failed (exit {proc.returncode})")
            return None
        os.replace(tmp, so_path)
        return so_path
    except subprocess.TimeoutExpired:
        reasons.append("compile timed out after 120 s")
    except (OSError, subprocess.SubprocessError) as exc:
        reasons.append(f"compile error: {exc}")
    if tmp is not None:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return None


def _load(reasons: list[str]) -> "ctypes.CDLL | None":
    so_path = _compile(reasons)
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError as exc:
        reasons.append(f"cannot load shared library: {exc}")
        return None
    i64p = ctypes.POINTER(ctypes.c_int64)
    i32p = ctypes.POINTER(ctypes.c_int32)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    try:
        lib.lru_process.argtypes = [
            i64p, ctypes.c_int64, i64p, i64p, i64p, i64p, u8p,
            i64p, u8p, ctypes.c_int64, u8p,
        ]
        lib.lru_process.restype = None
        lib.lru_flush.argtypes = [i64p, i64p, i64p, u8p]
        lib.lru_flush.restype = None
        lib.reuse_distances.argtypes = [i64p, ctypes.c_int64, i32p, i64p]
        lib.reuse_distances.restype = None
    except AttributeError:
        reasons.append("library is missing expected entry points")
        return None
    return lib


def mark_unavailable(reason: str) -> None:
    """Demote the whole process to the numpy path, warning exactly once.

    Idempotent: the first caller records the reason and emits the
    warning; later callers (and later :func:`get_kernel` probes) see the
    cached decision silently.
    """
    global _KERNEL, _RESOLVED, _UNAVAILABLE_REASON
    _KERNEL = None
    _RESOLVED = True
    if _UNAVAILABLE_REASON is None:
        _UNAVAILABLE_REASON = reason
        warnings.warn(
            f"native LRU kernel unavailable ({reason}); "
            "falling back to the numpy implementation for this process",
            RuntimeWarning,
            stacklevel=2,
        )


def reset() -> None:
    """Forget the cached availability decision (test hook)."""
    global _KERNEL, _RESOLVED, _UNAVAILABLE_REASON
    _KERNEL = None
    _RESOLVED = False
    _UNAVAILABLE_REASON = None


def get_kernel() -> "ctypes.CDLL | None":
    """The loaded kernel library, or None when unavailable/disabled."""
    global _KERNEL, _RESOLVED
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if faults.active("native-kernel"):
        mark_unavailable("injected native-kernel fault")
        return None
    if not _RESOLVED:
        reasons: list[str] = []
        _KERNEL = _load(reasons)
        _RESOLVED = True
        if _KERNEL is None:
            mark_unavailable(reasons[0] if reasons else "unknown load failure")
    return _KERNEL


def native_available() -> bool:
    """Whether the C kernels can be used in this environment."""
    return get_kernel() is not None
