"""On-demand compilation and loading of the native simulation kernels.

The batched trace engine (:mod:`repro.simulate.trace_sim`) and the
stack-distance miss-curve (:mod:`repro.machine.stackdist`) have hot inner
loops that are sequential by nature (LRU recency updates, Fenwick-tree
walks) and therefore cannot be vectorised with numpy alone.  This module
compiles ``_lru_kernel.c`` into a shared library next to the package the
first time it is needed — plain ``cc -O2 -shared -fPIC``, no build system,
no third-party dependency — and exposes the entry points through ctypes.

Everything degrades gracefully: if no C compiler is available, compilation
fails, or ``REPRO_NO_NATIVE`` is set in the environment, :func:`get_kernel`
returns ``None`` and callers fall back to the pure-Python/numpy
implementations.  The cross-check test-suite exercises both paths.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["get_kernel", "native_available"]

_SOURCE = Path(__file__).with_name("_lru_kernel.c")
_SONAME = f"_lru_kernel-{sys.implementation.cache_tag}.so"

# tri-state cache: unset / kernel / None (= unavailable)
_KERNEL: "ctypes.CDLL | None" = None
_RESOLVED = False


def _compile() -> Path | None:
    """Build the shared library next to the source; return its path or None."""
    so_path = _SOURCE.with_name(_SONAME)
    try:
        if so_path.exists() and so_path.stat().st_mtime >= _SOURCE.stat().st_mtime:
            return so_path
    except OSError:
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    # Compile to a temp file and rename atomically so concurrent test
    # processes never load a half-written library.
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(so_path.parent))
        os.close(fd)
        cmd = [compiler, "-O2", "-shared", "-fPIC", "-o", tmp, str(_SOURCE)]
        proc = subprocess.run(cmd, capture_output=True, timeout=120)
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError):
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return None


def _load() -> "ctypes.CDLL | None":
    so_path = _compile()
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    i64p = ctypes.POINTER(ctypes.c_int64)
    i32p = ctypes.POINTER(ctypes.c_int32)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    try:
        lib.lru_process.argtypes = [
            i64p, ctypes.c_int64, i64p, i64p, i64p, i64p, u8p,
            i64p, u8p, ctypes.c_int64, u8p,
        ]
        lib.lru_process.restype = None
        lib.lru_flush.argtypes = [i64p, i64p, i64p, u8p]
        lib.lru_flush.restype = None
        lib.reuse_distances.argtypes = [i64p, ctypes.c_int64, i32p, i64p]
        lib.reuse_distances.restype = None
    except AttributeError:
        return None
    return lib


def get_kernel() -> "ctypes.CDLL | None":
    """The loaded kernel library, or None when unavailable/disabled."""
    global _KERNEL, _RESOLVED
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if not _RESOLVED:
        _KERNEL = _load()
        _RESOLVED = True
    return _KERNEL


def native_available() -> bool:
    """Whether the C kernels can be used in this environment."""
    return get_kernel() is not None
