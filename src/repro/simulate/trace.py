"""Word-level address-trace generation for tiled loop nests.

The trace-driven validator needs the actual sequence of array-element
touches a tiled execution performs.  :func:`generate_trace` walks the
tile grid in a given loop order, walks each tile's points, and emits
one access per array reference per iteration point (reads for inputs,
read-modify-write for outputs — i.e. an output access is a write that
also needs the line resident, which is how write-allocate caches treat
``+=``).

Traces are word-granular; :func:`linearize` maps an array element to a
flat address in a global address space with per-array bases, row-major
within each array (matching how the numpy kernels lay memory out).
Intended for *small* instances — the trace has
``num_operations * num_arrays`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterator, Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from .footprint import validate_order

__all__ = ["Access", "AddressMap", "generate_trace", "trace_length"]


@dataclass(frozen=True)
class Access:
    """One word access: which array, which element, read or write."""

    array: int
    element: tuple[int, ...]
    is_write: bool


class AddressMap:
    """Row-major per-array linearisation into one flat address space."""

    def __init__(self, nest: LoopNest):
        self.nest = nest
        self._dims: list[tuple[int, ...]] = []
        self._bases: list[int] = []
        base = 0
        for arr in nest.arrays:
            dims = tuple(nest.bounds[i] for i in arr.support)
            self._dims.append(dims)
            self._bases.append(base)
            base += prod(dims) if dims else 1
        self.total_words = base

    def address(self, access: Access) -> int:
        dims = self._dims[access.array]
        if len(access.element) != len(dims):
            raise ValueError(
                f"element {access.element} has wrong arity for array "
                f"{self.nest.arrays[access.array].name} (dims {dims})"
            )
        flat = 0
        for coord, extent in zip(access.element, dims):
            if not 0 <= coord < extent:
                raise ValueError(f"element {access.element} out of bounds {dims}")
            flat = flat * extent + coord
        return self._bases[access.array] + flat

    def array_of(self, address: int) -> int:
        """Inverse lookup: which array owns ``address`` (linear scan, small n)."""
        for j in range(len(self._bases) - 1, -1, -1):
            if address >= self._bases[j]:
                return j
        raise ValueError(f"address {address} below first base")


def trace_length(nest: LoopNest) -> int:
    """Number of accesses :func:`generate_trace` will emit."""
    return nest.num_operations * nest.num_arrays


def _tile_ranges(L: int, b: int) -> list[range]:
    return [range(start, min(start + b, L)) for start in range(0, L, b)]


def generate_trace(
    nest: LoopNest,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
) -> Iterator[Access]:
    """Yield the access stream of a tiled execution.

    ``tile=None`` means the untiled (single-tile-per-point) execution in
    plain lexicographic order ``order``.  Within a tile, points are
    visited lexicographically in the same loop order; per point, arrays
    are touched in nest order (inputs as reads, outputs as writes).
    """
    order = validate_order(nest, order)
    d = nest.depth
    if nest.num_operations * nest.num_arrays > 8_000_000:
        raise ValueError("trace too long; use the analytic executor for large nests")
    blocks = tile.blocks if tile is not None else tuple(1 for _ in range(d))
    per_dim_ranges = [_tile_ranges(nest.bounds[i], blocks[i]) for i in range(d)]

    def walk_tiles(depth: int, chosen: list[range]) -> Iterator[list[range]]:
        if depth == d:
            yield chosen
            return
        loop = order[depth]
        for rng in per_dim_ranges[loop]:
            chosen[loop] = rng
            yield from walk_tiles(depth + 1, chosen)

    point = [0] * d

    def walk_points(depth: int, ranges: list[range]) -> Iterator[tuple[int, ...]]:
        if depth == d:
            yield tuple(point)
            return
        loop = order[depth]
        for v in ranges[loop]:
            point[loop] = v
            yield from walk_points(depth + 1, ranges)

    for ranges in walk_tiles(0, [range(0)] * d):
        for pt in walk_points(0, ranges):
            for j, arr in enumerate(nest.arrays):
                yield Access(array=j, element=arr.project(pt), is_write=arr.is_output)
