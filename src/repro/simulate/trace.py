"""Word-level address-trace generation for tiled loop nests.

The trace-driven validator needs the actual sequence of array-element
touches a tiled execution performs.  Two generators produce the *same*
stream:

* :func:`generate_trace` — the reference oracle: walks the tile grid in
  a given loop order, walks each tile's points, and emits one
  :class:`Access` per array reference per iteration point (reads for
  inputs, read-modify-write for outputs — i.e. an output access is a
  write that also needs the line resident, which is how write-allocate
  caches treat ``+=``).  One Python object per access; kept for
  cross-checking and tiny instances.
* :func:`generate_trace_batched` — the production path: yields
  :class:`TraceBatch` chunks of numpy arrays ``(addresses, array_ids,
  is_write)``.  Addresses come from per-array strided arithmetic
  (``base + strides @ point``) instead of per-word Python loops; when
  every block divides its loop bound the whole execution collapses to
  mixed-radix decoding of a global access index (tile digits then point
  digits), vectorising across tile boundaries.  Ragged edge tiles fall
  back to per-tile vectorisation with chunk buffering.  Chunks always
  hold whole iteration points, so ``array_ids`` within a chunk is the
  periodic pattern ``0..n-1`` and consumers may reshape per point.

Traces are word-granular; :class:`AddressMap` maps an array element to
a flat address in a global address space with per-array bases,
row-major within each array (matching how the numpy kernels lay memory
out).  The length guard :data:`MAX_TRACE_ACCESSES` (80M accesses, 10x
the pre-batched limit) bounds memory and runtime of downstream
simulators; use the analytic executor beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import prod
from typing import Iterator, NamedTuple, Sequence

import numpy as np

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from .footprint import validate_order

__all__ = [
    "Access",
    "AddressMap",
    "TraceBatch",
    "generate_trace",
    "generate_trace_batched",
    "trace_length",
    "MAX_TRACE_ACCESSES",
]

#: Hard guard on ``num_operations * num_arrays`` for trace generation.
#: The batched engine sustains tens of millions of accesses per second,
#: so 80M accesses simulate in seconds (the old per-Access limit was 8M).
MAX_TRACE_ACCESSES = 80_000_000


@dataclass(frozen=True)
class Access:
    """One word access: which array, which element, read or write."""

    array: int
    element: tuple[int, ...]
    is_write: bool


class TraceBatch(NamedTuple):
    """One chunk of the batched access stream (parallel 1-D arrays).

    ``addresses`` are flat word addresses (``AddressMap`` space),
    ``array_ids`` the owning array index per access, ``is_write`` the
    write flag per access.  Length is a multiple of the nest's array
    count: chunks never split an iteration point.
    """

    addresses: np.ndarray
    array_ids: np.ndarray
    is_write: np.ndarray


class AddressMap:
    """Row-major per-array linearisation into one flat address space."""

    def __init__(self, nest: LoopNest):
        self.nest = nest
        self._dims: list[tuple[int, ...]] = []
        self._bases: list[int] = []
        base = 0
        for arr in nest.arrays:
            dims = tuple(nest.bounds[i] for i in arr.support)
            self._dims.append(dims)
            self._bases.append(base)
            base += prod(dims) if dims else 1
        self.total_words = base

    @property
    def bases(self) -> tuple[int, ...]:
        """Per-array base addresses."""
        return tuple(self._bases)

    def stride_matrix(self) -> np.ndarray:
        """``(n, d)`` int64 matrix S with ``address_j(x) = base_j + S[j] @ x``.

        Row-major strides over each array's support dims, zero elsewhere
        (a projective access ignores non-support coordinates).
        """
        nest = self.nest
        strides = np.zeros((nest.num_arrays, nest.depth), dtype=np.int64)
        for j, arr in enumerate(nest.arrays):
            step = 1
            for i in reversed(arr.support):
                strides[j, i] = step
                step *= nest.bounds[i]
        return strides

    def address(self, access: Access) -> int:
        dims = self._dims[access.array]
        if len(access.element) != len(dims):
            raise ValueError(
                f"element {access.element} has wrong arity for array "
                f"{self.nest.arrays[access.array].name} (dims {dims})"
            )
        flat = 0
        for coord, extent in zip(access.element, dims):
            if not 0 <= coord < extent:
                raise ValueError(f"element {access.element} out of bounds {dims}")
            flat = flat * extent + coord
        return self._bases[access.array] + flat

    def array_of(self, address: int) -> int:
        """Inverse lookup: which array owns ``address`` (linear scan, small n)."""
        for j in range(len(self._bases) - 1, -1, -1):
            if address >= self._bases[j]:
                return j
        raise ValueError(f"address {address} below first base")


def trace_length(nest: LoopNest) -> int:
    """Number of accesses either generator will emit."""
    return nest.num_operations * nest.num_arrays


def _tile_ranges(L: int, b: int) -> list[range]:
    return [range(start, min(start + b, L)) for start in range(0, L, b)]


def generate_trace(
    nest: LoopNest,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
) -> Iterator[Access]:
    """Yield the access stream of a tiled execution (reference oracle).

    ``tile=None`` means the untiled (single-tile-per-point) execution in
    plain lexicographic order ``order``.  Within a tile, points are
    visited lexicographically in the same loop order; per point, arrays
    are touched in nest order (inputs as reads, outputs as writes).
    """
    order = validate_order(nest, order)
    d = nest.depth
    if trace_length(nest) > MAX_TRACE_ACCESSES:
        raise ValueError("trace too long; use the analytic executor for large nests")
    blocks = tile.blocks if tile is not None else tuple(1 for _ in range(d))
    per_dim_ranges = [_tile_ranges(nest.bounds[i], blocks[i]) for i in range(d)]

    def walk_tiles(depth: int, chosen: list[range]) -> Iterator[list[range]]:
        if depth == d:
            yield chosen
            return
        loop = order[depth]
        for rng in per_dim_ranges[loop]:
            chosen[loop] = rng
            yield from walk_tiles(depth + 1, chosen)

    point = [0] * d

    def walk_points(depth: int, ranges: list[range]) -> Iterator[tuple[int, ...]]:
        if depth == d:
            yield tuple(point)
            return
        loop = order[depth]
        for v in ranges[loop]:
            point[loop] = v
            yield from walk_points(depth + 1, ranges)

    for ranges in walk_tiles(0, [range(0)] * d):
        for pt in walk_points(0, ranges):
            for j, arr in enumerate(nest.arrays):
                yield Access(array=j, element=arr.project(pt), is_write=arr.is_output)


def _place_values(radices_by_dim: Sequence[int], order: Sequence[int]) -> list[int]:
    """Per-dim place value of a mixed-radix number enumerated in ``order``.

    ``order[0]`` is the outermost digit; the place value of dim ``i`` is
    the product of the radices of all dims inner to it.
    """
    pv = [1] * len(order)
    acc = 1
    for p in range(len(order) - 1, -1, -1):
        i = order[p]
        pv[i] = acc
        acc *= radices_by_dim[i]
    return pv


def generate_trace_batched(
    nest: LoopNest,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    chunk: int = 1 << 20,
    address_map: AddressMap | None = None,
) -> Iterator[TraceBatch]:
    """Yield the access stream of a tiled execution as numpy chunks.

    Bit-identical to :func:`generate_trace` (same addresses in the same
    sequence), but addresses are computed with strided arithmetic on
    whole index ranges.  ``chunk`` caps the accesses per yielded batch
    (rounded to whole iteration points; a batch may run slightly longer
    than ``chunk`` when buffering ragged edge tiles).
    """
    order = validate_order(nest, order)
    d, n = nest.depth, nest.num_arrays
    if trace_length(nest) > MAX_TRACE_ACCESSES:
        raise ValueError("trace too long; use the analytic executor for large nests")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    amap = address_map if address_map is not None else AddressMap(nest)
    strides = amap.stride_matrix()
    bases = np.asarray(amap.bases, dtype=np.int64)
    write_pattern = np.fromiter((a.is_output for a in nest.arrays), dtype=bool, count=n)
    id_pattern = np.arange(n, dtype=np.int64)
    blocks = tile.blocks if tile is not None else nest.bounds
    points_per_chunk = max(1, chunk // n)

    def emit(coords: np.ndarray) -> TraceBatch:
        """``coords`` is (d, m); interleave per-point array accesses."""
        m = coords.shape[1]
        addrs = bases[:, None] + strides @ coords  # (n, m)
        return TraceBatch(
            addresses=addrs.T.reshape(-1),  # point-major, arrays in nest order
            array_ids=np.tile(id_pattern, m),
            is_write=np.tile(write_pattern, m),
        )

    if all(L % b == 0 for L, b in zip(nest.bounds, blocks)):
        # Uniform grid: every tile has the same shape, so the k-th access
        # point of the whole execution decodes as (tile digits, point
        # digits) of one global index — vectorised across tile boundaries.
        grid = [L // b for L, b in zip(nest.bounds, blocks)]
        tile_pv = _place_values(grid, order)
        point_pv = _place_values(blocks, order)
        volume = prod(blocks)
        total_points = nest.num_operations
        for g0 in range(0, total_points, points_per_chunk):
            g = np.arange(g0, min(g0 + points_per_chunk, total_points), dtype=np.int64)
            tile_rank = g // volume
            point_rank = g - tile_rank * volume
            coords = np.empty((d, len(g)), dtype=np.int64)
            for i in range(d):
                q = (tile_rank // tile_pv[i]) % grid[i]
                r = (point_rank // point_pv[i]) % blocks[i]
                coords[i] = q * blocks[i] + r
            yield emit(coords)
        return

    # Ragged grid: walk tiles in order-major sequence; vectorise points
    # within each tile and buffer tiles up to the chunk size.
    per_dim_ranges = [_tile_ranges(nest.bounds[i], blocks[i]) for i in range(d)]
    buffered: list[np.ndarray] = []
    buffered_points = 0

    def flush() -> TraceBatch:
        nonlocal buffered, buffered_points
        coords = buffered[0] if len(buffered) == 1 else np.concatenate(buffered, axis=1)
        buffered, buffered_points = [], 0
        return emit(coords)

    for tile_choice in product(*(per_dim_ranges[i] for i in order)):
        ranges = [None] * d
        for p, rng in enumerate(tile_choice):
            ranges[order[p]] = rng
        extents = [len(ranges[i]) for i in range(d)]
        starts = [ranges[i].start for i in range(d)]
        volume = prod(extents)
        pv = _place_values(extents, order)
        for g0 in range(0, volume, points_per_chunk):
            g = np.arange(g0, min(g0 + points_per_chunk, volume), dtype=np.int64)
            coords = np.empty((d, len(g)), dtype=np.int64)
            for i in range(d):
                coords[i] = starts[i] + (g // pv[i]) % extents[i]
            buffered.append(coords)
            buffered_points += len(g)
            if buffered_points >= points_per_chunk:
                yield flush()
    if buffered_points:
        yield flush()
