"""Multi-level trace simulation via the LRU stack property.

For *inclusive* LRU hierarchies, the classic stack property says the
miss count at capacity ``C`` is monotone non-increasing in ``C`` and a
single trace evaluated against nested LRU stacks gives every level's
traffic at once: words crossing the ``l``/``l+1`` boundary equal the
LRU misses at capacity ``C_l``.  The stack-distance engine
(:func:`repro.machine.cache.miss_curve`) turns that observation into an
algorithm: **one** pass over the batched trace yields the exact
hit/miss/write-back counts of *every* capacity, so a whole hierarchy —
or a full miss-rate-curve sweep — costs one simulation instead of one
per level.  The result is an end-to-end validation target for
:func:`repro.core.hierarchy.solve_hierarchical_tiling` (the nested tile
should keep *every* boundary's traffic within a constant of that
boundary's lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.bounds import communication_lower_bound
from ..core.hierarchy import HierarchicalTiling, MemoryHierarchy
from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..machine.cache import MissCurve, miss_curve
from .trace import generate_trace_batched, trace_length

__all__ = [
    "BoundaryTraffic",
    "MultiLevelReport",
    "nest_miss_curve",
    "simulate_hierarchy_trace",
    "simulate_hierarchical_tiling_trace",
]


@dataclass(frozen=True)
class BoundaryTraffic:
    """Traffic across one cache boundary."""

    capacity: int
    words: int
    lower_bound: float

    @property
    def ratio(self) -> float:
        return self.words / self.lower_bound if self.lower_bound > 0 else float("inf")


@dataclass(frozen=True)
class MultiLevelReport:
    """Per-boundary traffic of one schedule on a full hierarchy."""

    nest_name: str
    schedule: str
    boundaries: tuple[BoundaryTraffic, ...]

    def summary(self) -> str:
        rows = ", ".join(
            f"M={b.capacity}: {b.words} ({b.ratio:.2f}x)" for b in self.boundaries
        )
        return f"{self.nest_name}[{self.schedule}] {rows}"


def nest_miss_curve(
    nest: LoopNest,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    use_native: bool | None = None,
) -> MissCurve:
    """Stack-distance miss curve of one schedule's word-level trace.

    One pass over the batched trace; the returned curve answers exact
    LRU hits/misses/write-backs at *any* cache capacity (word-granular
    lines, the paper's model) — the primitive behind both the hierarchy
    report and miss-rate-curve sweeps per nest/tile.
    """
    total = trace_length(nest)
    lines = np.empty(total, dtype=np.int64)
    writes = np.empty(total, dtype=bool)
    pos = 0
    for batch in generate_trace_batched(nest, tile=tile, order=order):
        span = len(batch.addresses)
        lines[pos : pos + span] = batch.addresses
        writes[pos : pos + span] = batch.is_write
        pos += span
    return miss_curve(lines, writes, use_native=use_native)


def simulate_hierarchy_trace(
    nest: LoopNest,
    hierarchy: MemoryHierarchy,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    schedule: str = "tiled",
    use_native: bool | None = None,
) -> MultiLevelReport:
    """Word-accurate per-boundary traffic of one schedule.

    ``tile=None`` simulates the untiled lexicographic schedule.  The
    trace is generated once and fed through the one-pass stack-distance
    engine; each level's boundary traffic (misses + write-backs at that
    level's capacity — the stack property makes this the
    inclusive-hierarchy traffic) is then a pair of O(log n) lookups on
    the shared curve, instead of one full LRU simulation per level.
    """
    curve = nest_miss_curve(nest, tile=tile, order=order, use_native=use_native)
    boundaries = []
    for capacity in hierarchy.capacities:
        words = curve.misses_at(capacity) + curve.writebacks_at(capacity)
        boundaries.append(
            BoundaryTraffic(
                capacity=capacity,
                words=words,
                lower_bound=communication_lower_bound(nest, capacity).value,
            )
        )
    return MultiLevelReport(
        nest_name=nest.name, schedule=schedule, boundaries=tuple(boundaries)
    )


def simulate_hierarchical_tiling_trace(
    tiling: HierarchicalTiling, order: Sequence[int] | None = None
) -> MultiLevelReport:
    """Per-boundary traffic of a nested tiling's *innermost* tile walk.

    Executing tiles of the innermost level in an order that groups them
    into the outer levels' tiles is what the nested construction
    prescribes; lexicographic order over the innermost grid already has
    this grouping when blocks are nested multiples (the common case).
    """
    return simulate_hierarchy_trace(
        tiling.nest,
        tiling.hierarchy,
        tile=tiling.levels[0].tile,
        order=order,
        schedule="nested-tiled",
    )
