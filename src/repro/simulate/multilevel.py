"""Multi-level trace simulation via the LRU stack property.

For *inclusive* LRU hierarchies, the classic stack property says the
miss count at capacity ``C`` is monotone non-increasing in ``C`` and a
single trace evaluated against nested LRU stacks gives every level's
traffic at once: words crossing the ``l``/``l+1`` boundary equal the
LRU misses at capacity ``C_l``.  We therefore simulate each level's
capacity independently with the existing word-accurate LRU and report
the per-boundary traffic — an end-to-end validation target for
:func:`repro.core.hierarchy.solve_hierarchical_tiling` (the nested tile
should keep *every* boundary's traffic within a constant of that
boundary's lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bounds import communication_lower_bound
from ..core.hierarchy import HierarchicalTiling, MemoryHierarchy
from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..machine.model import MachineModel
from .trace_sim import run_trace_simulation

__all__ = ["BoundaryTraffic", "MultiLevelReport", "simulate_hierarchy_trace"]


@dataclass(frozen=True)
class BoundaryTraffic:
    """Traffic across one cache boundary."""

    capacity: int
    words: int
    lower_bound: float

    @property
    def ratio(self) -> float:
        return self.words / self.lower_bound if self.lower_bound > 0 else float("inf")


@dataclass(frozen=True)
class MultiLevelReport:
    """Per-boundary traffic of one schedule on a full hierarchy."""

    nest_name: str
    schedule: str
    boundaries: tuple[BoundaryTraffic, ...]

    def summary(self) -> str:
        rows = ", ".join(
            f"M={b.capacity}: {b.words} ({b.ratio:.2f}x)" for b in self.boundaries
        )
        return f"{self.nest_name}[{self.schedule}] {rows}"


def simulate_hierarchy_trace(
    nest: LoopNest,
    hierarchy: MemoryHierarchy,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    schedule: str = "tiled",
) -> MultiLevelReport:
    """Word-accurate per-boundary traffic of one schedule.

    ``tile=None`` simulates the untiled lexicographic schedule.  The
    same access trace is replayed against an LRU of each level's
    capacity (the stack property makes this the inclusive-hierarchy
    traffic).  Intended for small instances — cost is
    ``levels x trace length``.
    """
    boundaries = []
    for capacity in hierarchy.capacities:
        machine = MachineModel(cache_words=capacity)
        report = run_trace_simulation(nest, machine, tile=tile, order=order)
        boundaries.append(
            BoundaryTraffic(
                capacity=capacity,
                words=report.total_words,
                lower_bound=communication_lower_bound(nest, capacity).value,
            )
        )
    return MultiLevelReport(
        nest_name=nest.name, schedule=schedule, boundaries=tuple(boundaries)
    )


def simulate_hierarchical_tiling_trace(
    tiling: HierarchicalTiling, order: Sequence[int] | None = None
) -> MultiLevelReport:
    """Per-boundary traffic of a nested tiling's *innermost* tile walk.

    Executing tiles of the innermost level in an order that groups them
    into the outer levels' tiles is what the nested construction
    prescribes; lexicographic order over the innermost grid already has
    this grouping when blocks are nested multiples (the common case).
    """
    return simulate_hierarchy_trace(
        tiling.nest,
        tiling.hierarchy,
        tile=tiling.levels[0].tile,
        order=order,
        schedule="nested-tiled",
    )
