"""Execution simulators: analytic word counts and trace-driven caches."""

from .executor import best_order_traffic, simulate_tiled_traffic, simulate_untiled_traffic
from .footprint import array_tile_loads, working_set_words
from .multilevel import (
    BoundaryTraffic,
    MultiLevelReport,
    nest_miss_curve,
    simulate_hierarchical_tiling_trace,
    simulate_hierarchy_trace,
)
from .trace import (
    MAX_TRACE_ACCESSES,
    Access,
    AddressMap,
    TraceBatch,
    generate_trace,
    generate_trace_batched,
    trace_length,
)
from .trace_sim import run_trace_simulation

__all__ = [
    "simulate_tiled_traffic",
    "simulate_untiled_traffic",
    "best_order_traffic",
    "array_tile_loads",
    "working_set_words",
    "Access",
    "AddressMap",
    "TraceBatch",
    "generate_trace",
    "generate_trace_batched",
    "trace_length",
    "MAX_TRACE_ACCESSES",
    "run_trace_simulation",
    "BoundaryTraffic",
    "MultiLevelReport",
    "nest_miss_curve",
    "simulate_hierarchy_trace",
    "simulate_hierarchical_tiling_trace",
]
