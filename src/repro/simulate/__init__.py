"""Execution simulators: analytic word counts and trace-driven caches."""

from .executor import best_order_traffic, simulate_tiled_traffic, simulate_untiled_traffic
from .footprint import array_tile_loads, working_set_words
from .trace import Access, AddressMap, generate_trace, trace_length
from .multilevel import (
    BoundaryTraffic,
    MultiLevelReport,
    simulate_hierarchical_tiling_trace,
    simulate_hierarchy_trace,
)
from .trace_sim import run_trace_simulation

__all__ = [
    "simulate_tiled_traffic",
    "simulate_untiled_traffic",
    "best_order_traffic",
    "array_tile_loads",
    "working_set_words",
    "Access",
    "AddressMap",
    "generate_trace",
    "trace_length",
    "run_trace_simulation",
    "BoundaryTraffic",
    "MultiLevelReport",
    "simulate_hierarchy_trace",
    "simulate_hierarchical_tiling_trace",
]
