"""Trace-driven cache simulation: the model's cost, realised.

Feeds the access stream of :mod:`repro.simulate.trace` through the
replacement policies of :mod:`repro.machine.cache` and reports per-array
traffic.  This closes the loop between the paper's abstract tile-counting
argument and an actual cache: on small instances, the LP tiling's LRU
traffic must land within a small constant of the analytic count and of
the communication lower bound (benchmark E15).

Two engines produce identical reports:

* ``engine="batched"`` (default) — streams :class:`TraceBatch` chunks
  from the vectorised generator into :class:`repro.machine.cache.BatchLRU`
  (native kernel when available); per-array attribution uses the chunk
  miss masks (chunks hold whole iteration points, so reshaping a mask to
  ``(points, n_arrays)`` aligns misses with the owning array).  One to
  two orders of magnitude faster than the reference.
* ``engine="reference"`` — the original per-:class:`Access` path, kept
  as the cross-check oracle and as the "before" baseline of the
  ``bench_trace_sim`` throughput benchmark.

Belady and direct-mapped policies keep their per-access cores (Belady
needs future knowledge; direct-mapped is a negative control) but are fed
by the batched generator unless ``engine="reference"``.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..machine.cache import (
    BatchLRU,
    CacheStats,
    DirectMappedCache,
    FullyAssociativeLRU,
)
from ..machine.counters import ArrayTraffic, TrafficReport
from ..machine.model import MachineModel
from ..machine.native import NativeKernelError
from .trace import AddressMap, generate_trace, generate_trace_batched

__all__ = ["run_trace_simulation"]

Policy = Literal["lru", "belady", "direct"]
Engine = Literal["batched", "reference"]


def run_trace_simulation(
    nest: LoopNest,
    machine: MachineModel,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    policy: Policy = "lru",
    engine: Engine = "batched",
    chunk: int = 1 << 20,
    use_native: bool | None = None,
) -> TrafficReport:
    """Simulate the tiled execution's trace on a cache; count words moved.

    Traffic attribution: a miss is charged to the array owning the
    missed line (line size 1 keeps attribution exact; with longer lines
    a line never spans arrays because bases are not aligned — we simply
    attribute by the accessed array).  Write-backs are charged to the
    array that last dirtied the line, apportioned by largest remainder
    so per-array stores always conserve the aggregate.

    ``engine="batched"`` (default) uses the vectorised generator and the
    chunked LRU engine; ``engine="reference"`` replays the original
    per-access path (the two are bit-identical — the cross-check suite
    enforces it).  ``use_native`` forces the native kernel on/off for
    the batched LRU path (None = auto).
    """
    if policy not in ("lru", "belady", "direct"):
        raise ValueError(f"unknown policy {policy!r}")
    if engine not in ("batched", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    amap = AddressMap(nest)
    lw = machine.line_words
    n_arrays = nest.num_arrays
    loads = [0] * n_arrays
    stores = [0] * n_arrays

    if policy == "lru" and engine == "batched":
        try:
            stats, dirty_owner, miss_by_array = _lru_batched(
                nest, amap, machine, tile, order, chunk, use_native
            )
        except NativeKernelError:
            # A kernel that dies mid-stream leaves the BatchLRU state
            # suspect, so degrade by re-running the whole trace on the
            # numpy engine: bit-identical result, no mixed state.  The
            # process is already demoted, so this pays once.
            stats, dirty_owner, miss_by_array = _lru_batched(
                nest, amap, machine, tile, order, chunk, False
            )
        for j in range(n_arrays):
            loads[j] = int(miss_by_array[j]) * lw
        _attribute_writebacks(stats.writebacks, dirty_owner, stores, lw, nest)
    else:
        accesses = _collect_accesses(nest, amap, lw, tile, order, engine, chunk)
        if policy == "belady":
            # Belady core gives aggregate stats; attribute misses by replay:
            # the optimal schedule is deterministic, so we re-run the same
            # algorithm inline here with attribution.
            stats = _belady_attributed(accesses, machine.cache_lines, loads, stores, lw)
        else:
            cache = (
                FullyAssociativeLRU(machine.cache_lines)
                if policy == "lru"
                else DirectMappedCache(machine.cache_lines)
            )
            dirty_owner: dict[int, int] = {}
            for line, array, is_write in accesses:
                hit = cache.access(line, is_write=is_write)
                if not hit:
                    loads[array] += lw
                if is_write:
                    dirty_owner[line] = array
            cache.flush()
            # Attribute write-backs to the last writer of each line; the
            # per-line owner map makes this exact for line size 1 and a
            # sound approximation otherwise.
            _attribute_writebacks(cache.stats.writebacks, dirty_owner, stores, lw, nest)
            stats = cache.stats

    per_array = tuple(
        ArrayTraffic(name=arr.name, loads=loads[j], stores=stores[j])
        for j, arr in enumerate(nest.arrays)
    )
    return TrafficReport(
        nest_name=nest.name,
        per_array=per_array,
        source=policy,
        meta={
            "blocks": tile.blocks if tile is not None else None,
            "order": tuple(order) if order is not None else None,
            "line_words": lw,
            "cache_words": machine.cache_words,
            "engine": engine,
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "writebacks": stats.writebacks,
        },
    )


def _lru_batched(
    nest: LoopNest,
    amap: AddressMap,
    machine: MachineModel,
    tile: TileShape | None,
    order: Sequence[int] | None,
    chunk: int,
    use_native: bool | None,
) -> tuple[CacheStats, dict[int, int], np.ndarray]:
    """Streamed batched LRU: stats, last-writer map, per-array miss counts."""
    lw = machine.line_words
    n = nest.num_arrays
    num_lines = -(-amap.total_words // lw)
    cache = BatchLRU(machine.cache_lines, num_lines, use_native=use_native)
    miss_by_array = np.zeros(n, dtype=np.int64)
    dirty_owner: dict[int, int] = {}
    out_cols = [j for j, arr in enumerate(nest.arrays) if arr.is_output]
    out_ids = np.asarray(out_cols, dtype=np.int64)
    for batch in generate_trace_batched(nest, tile=tile, order=order, chunk=chunk):
        lines = batch.addresses // lw if lw > 1 else batch.addresses
        miss = cache.process(lines, batch.is_write)
        points = len(lines) // n
        miss_by_array += miss.reshape(points, n).sum(axis=0)
        if out_cols:
            # Within a point, outputs are written in nest order, so the
            # row-major ravel below is time-ordered; the first occurrence
            # in the reversed stream is each line's last writer.
            written = lines.reshape(points, n)[:, out_cols]
            flat = written.reshape(-1)[::-1]
            writers = np.tile(out_ids, points)[::-1]
            uniq, first = np.unique(flat, return_index=True)
            dirty_owner.update(zip(uniq.tolist(), writers[first].tolist()))
    cache.flush()
    return cache.stats, dirty_owner, miss_by_array


def _collect_accesses(
    nest: LoopNest,
    amap: AddressMap,
    lw: int,
    tile: TileShape | None,
    order: Sequence[int] | None,
    engine: Engine,
    chunk: int,
) -> list[tuple[int, int, bool]]:
    """Materialise the ``(line, array, is_write)`` list for per-access cores."""
    if engine == "reference":
        return [
            (amap.address(acc) // lw, acc.array, acc.is_write)
            for acc in generate_trace(nest, tile=tile, order=order)
        ]
    accesses: list[tuple[int, int, bool]] = []
    for batch in generate_trace_batched(nest, tile=tile, order=order, chunk=chunk):
        lines = batch.addresses // lw if lw > 1 else batch.addresses
        accesses.extend(
            zip(lines.tolist(), batch.array_ids.tolist(), batch.is_write.tolist())
        )
    return accesses


def _attribute_writebacks(
    total_writebacks: int,
    dirty_owner: dict[int, int],
    stores: list[int],
    line_words: int,
    nest: LoopNest,
) -> None:
    """Spread write-back traffic across arrays by dirty-line ownership.

    Every write-back comes from a line some output array dirtied; with
    a single output (the common case) attribution is exact.  With
    several outputs we charge each owner proportionally to the dirty
    lines it owns, apportioning by largest remainder so the per-array
    integer shares always sum to the exact aggregate total.
    """
    if total_writebacks == 0 or not dirty_owner:
        return
    counts = [0] * nest.num_arrays
    for owner in dirty_owner.values():
        counts[owner] += 1
    total_count = len(dirty_owner)
    shares = [0] * nest.num_arrays
    remainders = []
    for j in range(nest.num_arrays):
        numerator = counts[j] * total_writebacks
        shares[j] = numerator // total_count
        remainders.append((-(numerator % total_count), j))
    leftover = total_writebacks - sum(shares)
    for _, j in sorted(remainders)[:leftover]:
        shares[j] += 1
    for j in range(nest.num_arrays):
        stores[j] += shares[j] * line_words


def _belady_attributed(
    accesses: list[tuple[int, int, bool]],
    capacity_lines: int,
    loads: list[int],
    stores: list[int],
    line_words: int,
) -> CacheStats:
    """Belady simulation with per-array miss/write-back attribution."""
    import heapq

    n = len(accesses)
    INF = n + 1
    next_use = [INF] * n
    last_pos: dict[int, int] = {}
    for t in range(n - 1, -1, -1):
        line = accesses[t][0]
        next_use[t] = last_pos.get(line, INF)
        last_pos[line] = t

    stats = CacheStats()
    resident: dict[int, bool] = {}
    owner: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    current_next: dict[int, int] = {}

    for t, (line, array, is_write) in enumerate(accesses):
        stats.accesses += 1
        if line in resident:
            stats.hits += 1
            resident[line] = resident[line] or is_write
        else:
            stats.misses += 1
            loads[array] += line_words
            if len(resident) >= capacity_lines:
                while True:
                    neg, victim = heapq.heappop(heap)
                    if victim in resident and current_next.get(victim) == -neg:
                        break
                if resident.pop(victim):
                    stats.writebacks += 1
                    stores[owner.get(victim, array)] += line_words
                current_next.pop(victim, None)
            resident[line] = is_write
        if is_write:
            owner[line] = array
        current_next[line] = next_use[t]
        heapq.heappush(heap, (-next_use[t], line))

    for line, dirty in resident.items():
        if dirty:
            stats.writebacks += 1
            stores[owner.get(line, 0)] += line_words
    return stats
