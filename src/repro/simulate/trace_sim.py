"""Trace-driven cache simulation: the model's cost, realised.

Feeds the word-accurate access stream of :mod:`repro.simulate.trace`
through the replacement policies of :mod:`repro.machine.cache` and
reports per-array traffic.  This closes the loop between the paper's
abstract tile-counting argument and an actual cache: on small
instances, the LP tiling's LRU traffic must land within a small
constant of the analytic count and of the communication lower bound
(benchmark E15).
"""

from __future__ import annotations

from typing import Literal, Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..machine.cache import (
    CacheStats,
    DirectMappedCache,
    FullyAssociativeLRU,
    simulate_belady,
)
from ..machine.counters import ArrayTraffic, TrafficReport
from ..machine.model import MachineModel
from .trace import Access, AddressMap, generate_trace

__all__ = ["run_trace_simulation"]

Policy = Literal["lru", "belady", "direct"]


def run_trace_simulation(
    nest: LoopNest,
    machine: MachineModel,
    tile: TileShape | None = None,
    order: Sequence[int] | None = None,
    policy: Policy = "lru",
) -> TrafficReport:
    """Simulate the tiled execution's trace on a cache; count words moved.

    Traffic attribution: a miss is charged to the array owning the
    missed line (line size 1 keeps attribution exact; with longer lines
    a line never spans arrays because bases are not aligned — we simply
    attribute by the accessed array).  Write-backs are charged to the
    array that dirtied the line.
    """
    amap = AddressMap(nest)
    lw = machine.line_words

    accesses: list[tuple[int, int, bool]] = []  # (line, array, is_write)
    for acc in generate_trace(nest, tile=tile, order=order):
        addr = amap.address(acc)
        accesses.append((addr // lw, acc.array, acc.is_write))

    n_arrays = nest.num_arrays
    loads = [0] * n_arrays
    stores = [0] * n_arrays

    if policy == "belady":
        # Belady core gives aggregate stats; attribute misses by replay:
        # the optimal schedule is deterministic, so we re-run the same
        # algorithm inline here with attribution.
        stats = _belady_attributed(accesses, machine.cache_lines, loads, stores, lw)
    elif policy in ("lru", "direct"):
        cache = (
            FullyAssociativeLRU(machine.cache_lines)
            if policy == "lru"
            else DirectMappedCache(machine.cache_lines)
        )
        dirty_owner: dict[int, int] = {}
        for line, array, is_write in accesses:
            hit = cache.access(line, is_write=is_write)
            if not hit:
                loads[array] += lw
            if is_write:
                dirty_owner[line] = array
        before = cache.stats.writebacks
        cache.flush()
        # Attribute write-backs to the last writer of each line; the
        # per-line owner map makes this exact for line size 1 and a
        # sound approximation otherwise.
        total_wb = cache.stats.writebacks
        _attribute_writebacks(total_wb, dirty_owner, stores, lw, nest)
        stats = cache.stats
    else:
        raise ValueError(f"unknown policy {policy!r}")

    per_array = tuple(
        ArrayTraffic(name=arr.name, loads=loads[j], stores=stores[j])
        for j, arr in enumerate(nest.arrays)
    )
    return TrafficReport(
        nest_name=nest.name,
        per_array=per_array,
        source=policy,
        meta={
            "blocks": tile.blocks if tile is not None else None,
            "order": tuple(order) if order is not None else None,
            "line_words": lw,
            "cache_words": machine.cache_words,
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "writebacks": stats.writebacks,
        },
    )


def _attribute_writebacks(
    total_writebacks: int,
    dirty_owner: dict[int, int],
    stores: list[int],
    line_words: int,
    nest: LoopNest,
) -> None:
    """Spread write-back traffic across arrays by dirty-line ownership.

    Every write-back comes from a line some output array dirtied; with
    a single output (the common case) attribution is exact.  With
    several outputs we charge each owner proportionally to the dirty
    lines it owns — aggregate totals stay exact either way.
    """
    if total_writebacks == 0 or not dirty_owner:
        return
    owners = list(dirty_owner.values())
    counts = [0] * nest.num_arrays
    for owner in owners:
        counts[owner] += 1
    scale = total_writebacks / len(owners)
    for j in range(nest.num_arrays):
        stores[j] += round(counts[j] * scale) * line_words


def _belady_attributed(
    accesses: list[tuple[int, int, bool]],
    capacity_lines: int,
    loads: list[int],
    stores: list[int],
    line_words: int,
) -> CacheStats:
    """Belady simulation with per-array miss/write-back attribution."""
    import heapq

    n = len(accesses)
    INF = n + 1
    next_use = [INF] * n
    last_pos: dict[int, int] = {}
    for t in range(n - 1, -1, -1):
        line = accesses[t][0]
        next_use[t] = last_pos.get(line, INF)
        last_pos[line] = t

    stats = CacheStats()
    resident: dict[int, bool] = {}
    owner: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    current_next: dict[int, int] = {}

    for t, (line, array, is_write) in enumerate(accesses):
        stats.accesses += 1
        if line in resident:
            stats.hits += 1
            resident[line] = resident[line] or is_write
        else:
            stats.misses += 1
            loads[array] += line_words
            if len(resident) >= capacity_lines:
                while True:
                    neg, victim = heapq.heappop(heap)
                    if victim in resident and current_next.get(victim) == -neg:
                        break
                if resident.pop(victim):
                    stats.writebacks += 1
                    stores[owner.get(victim, array)] += line_words
                current_next.pop(victim, None)
            resident[line] = is_write
        if is_write:
            owner[line] = array
        current_next[line] = next_use[t]
        heapq.heappush(heap, (-next_use[t], line))

    for line, dirty in resident.items():
        if dirty:
            stats.writebacks += 1
            stores[owner.get(line, 0)] += line_words
    return stats
