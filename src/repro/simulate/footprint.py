"""Exact analytic traffic for a tiled execution (the model's cost).

For a rectangular tiling with blocks ``b`` executed tile-by-tile, the
paper's machine model charges each tile the size of its per-array
footprints ``prod_{i in supp_j} t_i`` (with ``t_i`` the actual extent
of that tile along loop i, smaller at the edges).  Because footprints
factor across dimensions and extents along loop ``i`` sum to ``L_i``
over the tile grid, the total factors exactly::

    words_j = prod_{i in supp_j} L_i  x  prod_{i not in supp_j} G_i

where ``G_i = ceil(L_i / b_i)`` is the tile-grid extent — no tile
enumeration needed, edge tiles handled exactly.

With *inter-tile reuse* (consecutive tiles in a loop order ``pi`` over
the grid share array-j data whenever no supp(phi_j) coordinate
changed), the reload count for array j drops to the grid dims that are
at-or-outside the innermost supp_j dim in ``pi``::

    words_j = prod_{i in supp_j} L_i  x  prod_{i not in supp_j,
              pos(i) < innermost_supp_pos_j} G_i

Both forms are exact for the model; the trace-driven simulator
(:mod:`repro.simulate.trace_sim`) validates them against LRU/Belady on
small instances.
"""

from __future__ import annotations

from math import prod
from typing import Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape

__all__ = ["array_tile_loads", "working_set_words", "validate_order"]


def validate_order(nest: LoopNest, order: Sequence[int] | None) -> tuple[int, ...]:
    """Normalise a tile-loop order (outermost first); default = loop order."""
    if order is None:
        return tuple(range(nest.depth))
    order = tuple(order)
    if sorted(order) != list(range(nest.depth)):
        raise ValueError(f"{order} is not a permutation of range({nest.depth})")
    return order


def array_tile_loads(
    nest: LoopNest,
    tile: TileShape,
    j: int,
    order: Sequence[int] | None = None,
    reuse: bool = True,
) -> int:
    """Exact words of array ``j`` loaded over the whole tiled execution."""
    order = validate_order(nest, order)
    grid = tile.grid_extents()
    support = nest.arrays[j].support
    covered = prod(nest.bounds[i] for i in support)  # sums of tile extents
    if not reuse:
        outside = prod(grid[i] for i in range(nest.depth) if i not in support)
        return covered * outside
    if not support:
        return 1  # scalar: loaded once, lives in a register/cache word
    pos = {loop: p for p, loop in enumerate(order)}
    innermost_supp = max(pos[i] for i in support)
    reload_dims = [
        i for i in range(nest.depth) if i not in support and pos[i] < innermost_supp
    ]
    return covered * prod(grid[i] for i in reload_dims)


def working_set_words(nest: LoopNest, tile: TileShape) -> int:
    """Simultaneous residency the reuse-aware count assumes (sum of footprints).

    The reuse-aware formula is achievable on a cache of at least this
    many words; executors compare it against the machine's capacity and
    fall back to the no-reuse accounting when it does not fit.
    """
    return tile.total_footprint()
