"""Analytic tiled-execution simulator (the model's word count).

:func:`simulate_tiled_traffic` prices a tiled execution in the paper's
machine model without enumerating tiles — exact closed forms from
:mod:`repro.simulate.footprint`.  :func:`simulate_untiled_traffic`
prices the naive (block = 1) execution for baseline comparisons, and
:func:`best_order_traffic` searches loop orders.

Stores: output arrays are charged one write-back per residency interval
(same count as their loads) plus nothing extra at the end — i.e. a
write-allocate, write-back cache; pass ``count_output_writes=False``
for a loads-only comparison against read-oriented lower bounds.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from ..core.loopnest import LoopNest
from ..core.tiling import TileShape
from ..machine.counters import ArrayTraffic, TrafficReport
from ..machine.model import MachineModel
from .footprint import array_tile_loads, validate_order, working_set_words

__all__ = [
    "simulate_tiled_traffic",
    "simulate_untiled_traffic",
    "best_order_traffic",
]


def simulate_tiled_traffic(
    nest: LoopNest,
    tile: TileShape,
    machine: MachineModel | None = None,
    order: Sequence[int] | None = None,
    reuse: bool = True,
    count_output_writes: bool = True,
) -> TrafficReport:
    """Words moved by a tile-by-tile execution of ``nest`` under ``tile``.

    Parameters
    ----------
    machine:
        When given and ``reuse=True``, the reuse-aware accounting is
        only applied if the tile working set fits the cache
        (``working_set_words <= cache_words``); otherwise the simulator
        falls back to charging every tile its full footprint — keeping
        reports honest for infeasible tiles.
    order:
        Tile-grid loop order, outermost first (default: nest order).
    """
    order = validate_order(nest, order)
    effective_reuse = reuse
    if reuse and machine is not None and working_set_words(nest, tile) > machine.cache_words:
        effective_reuse = False
    per_array = []
    for j, arr in enumerate(nest.arrays):
        loads = array_tile_loads(nest, tile, j, order=order, reuse=effective_reuse)
        stores = loads if (arr.is_output and count_output_writes) else 0
        per_array.append(ArrayTraffic(name=arr.name, loads=loads, stores=stores))
    return TrafficReport(
        nest_name=nest.name,
        per_array=tuple(per_array),
        source="analytic",
        meta={
            "blocks": tile.blocks,
            "order": order,
            "reuse": effective_reuse,
            "requested_reuse": reuse,
            "working_set": working_set_words(nest, tile),
        },
    )


def simulate_untiled_traffic(
    nest: LoopNest,
    machine: MachineModel | None = None,
    order: Sequence[int] | None = None,
    count_output_writes: bool = True,
) -> TrafficReport:
    """Naive untiled execution: the unit tile with reuse of innermost slabs.

    This is the classic baseline (e.g. the three-loop matmul reading B
    ``L1`` times); reuse of a *single element* across the innermost
    non-support loop is granted, matching a cache with a couple of
    registers, which is what the unit tile's working set needs.
    """
    unit = TileShape(nest=nest, blocks=tuple(1 for _ in range(nest.depth)))
    report = simulate_tiled_traffic(
        nest,
        unit,
        machine=machine,
        order=order,
        reuse=True,
        count_output_writes=count_output_writes,
    )
    return TrafficReport(
        nest_name=report.nest_name,
        per_array=report.per_array,
        source="analytic-untiled",
        meta=report.meta,
    )


def best_order_traffic(
    nest: LoopNest,
    tile: TileShape,
    machine: MachineModel | None = None,
    count_output_writes: bool = True,
) -> TrafficReport:
    """Minimum-traffic tile-grid loop order (exhaustive over d! orders).

    ``d`` is small for every problem in scope (<= 6), so exhaustive
    search is cheap; ties broken by lexicographic order for
    reproducibility.
    """
    best: TrafficReport | None = None
    for order in permutations(range(nest.depth)):
        report = simulate_tiled_traffic(
            nest,
            tile,
            machine=machine,
            order=order,
            reuse=True,
            count_output_writes=count_output_writes,
        )
        if best is None or report.total_words < best.total_words:
            best = report
    assert best is not None
    return best
