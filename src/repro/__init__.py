"""repro — communication-optimal tilings for projective nested loops.

A full reproduction of Dinh & Demmel, *Communication-Optimal Tilings
for Projective Nested Loops with Arbitrary Bounds* (SPAA 2020,
arXiv:2003.00119): the HBL lower-bound machinery (§3), the
arbitrary-bound Theorem-2 bounds (§4), the matching tiling construction
and Theorem-3 tightness certificates (§5), the worked examples (§6) as
a problem catalog, the multiparametric piecewise-linear value function
(§7), a cache/traffic simulation substrate validating the bounds, a
numpy execution backend, and the multiprocessor extension (§7) —
behind the unified service façade of :mod:`repro.api`.

Quickstart
----------
>>> import repro
>>> session = repro.api.Session()
>>> nest = repro.parse_nest("C[i,k] += A[i,j] * B[j,k]",
...                         bounds={"i": 1024, "j": 1024, "k": 16})
>>> result = session.analyze(nest, cache_words=2**16)
>>> result.kind, result.schema_version
('analyze', 1)
>>> result.fraction("k_hat")
Fraction(5, 4)
>>> session.analyze(nest, cache_words=2**14).cache_hit   # same structure: warm
True
>>> repro.api.Result.from_json(result.to_json()) == result   # lossless envelope
True

The flat helpers remain for one-off use — ``repro.analyze`` routes
through a process-wide default :class:`repro.api.Session`, so repeated
analyses of structurally identical nests hit the plan cache.
"""

import warnings
from dataclasses import dataclass

from .core import (
    AffinePiece,
    ArrayRef,
    CommunicationLowerBound,
    HBLSolution,
    HierarchicalTiling,
    LinearProgram,
    LoopNest,
    LoopNestError,
    MemoryHierarchy,
    OptimalTileFamily,
    ParseError,
    PiecewiseValueFunction,
    Theorem3Certificate,
    TileShape,
    TilingSolution,
    best_integer_tile,
    best_rectangle,
    best_subset,
    canonical_key,
    canonicalize,
    communication_lower_bound,
    optimal_tile_family,
    parametric_tile_exponent,
    parse_nest,
    solve_hbl,
    solve_hierarchical_tiling,
    solve_tiling,
    subset_exponent,
    subset_scan,
    theorem3_certificate,
    tile_exponent,
    verify_analysis,
)
from .library import catalog
from .machine import MachineModel, MissCurve, TrafficReport, miss_curve
from .parallel import distributed_lower_bound, optimal_grid, simulate_grid
from .plan import Planner, PlanRequest, TilePlan
from .plan import plan_batch as _plan_batch
from .plan import sweep_requests as _sweep_requests
from .simulate import (
    best_order_traffic,
    generate_trace_batched,
    nest_miss_curve,
    run_trace_simulation,
    simulate_tiled_traffic,
    simulate_untiled_traffic,
)

__version__ = "1.2.0"


@dataclass(frozen=True)
class Analysis:
    """One-call bundle: bound + tiling + tightness certificate."""

    nest: LoopNest
    cache_words: int
    lower_bound: CommunicationLowerBound
    tiling: TilingSolution
    certificate: Theorem3Certificate

    def summary(self) -> str:
        lines = [
            self.nest.describe(),
            self.lower_bound.summary(),
            self.tiling.summary(),
            self.certificate.summary(),
        ]
        return "\n".join(lines)


# The façade imports Analysis, so it must load after the definition.
from . import api  # noqa: E402
from . import tune  # noqa: E402
from .api import (  # noqa: E402
    AnalyzeRequest,
    DistributedRequest,
    Result,
    Session,
    SimulateRequest,
    SweepRequest,
    TuneRequest,
    default_session,
)
from .tune import TuneReport, tune_tile  # noqa: E402


def analyze(nest: LoopNest, cache_words: int, budget: str = "per-array") -> Analysis:
    """Run the full §4/§5 pipeline on a nest: bound, tiling, certificate.

    Routed through the process-wide default :class:`repro.api.Session`:
    the first analysis of a projection pattern pays one multiparametric
    solve, every later analysis of the same structure — any bounds, any
    cache size — is answered from the plan cache, exactly.
    """
    return default_session().analysis(nest, cache_words, budget=budget)


def plan_batch(requests, planner=None, max_workers=None, include_bound=True):
    """Deprecated shim — use :meth:`repro.api.Session.batch` instead."""
    warnings.warn(
        "repro.plan_batch is deprecated; use repro.api.Session.batch "
        "(or repro.plan.plan_batch for the raw engine)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _plan_batch(
        requests, planner=planner, max_workers=max_workers, include_bound=include_bound
    )


def sweep_requests(builder, size_axes, cache_sizes, budget="per-array"):
    """Deprecated shim — use :class:`repro.api.SweepRequest` instead."""
    warnings.warn(
        "repro.sweep_requests is deprecated; use repro.api.SweepRequest "
        "(or repro.plan.sweep_requests for the raw engine)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _sweep_requests(builder, size_axes, cache_sizes, budget=budget)


__all__ = [
    "__version__",
    "api",
    "Session",
    "Result",
    "AnalyzeRequest",
    "SimulateRequest",
    "SweepRequest",
    "TuneRequest",
    "DistributedRequest",
    "default_session",
    "tune",
    "TuneReport",
    "tune_tile",
    "Analysis",
    "analyze",
    "LoopNest",
    "ArrayRef",
    "LoopNestError",
    "ParseError",
    "parse_nest",
    "LinearProgram",
    "HBLSolution",
    "solve_hbl",
    "CommunicationLowerBound",
    "communication_lower_bound",
    "subset_exponent",
    "subset_scan",
    "tile_exponent",
    "TileShape",
    "TilingSolution",
    "solve_tiling",
    "Theorem3Certificate",
    "theorem3_certificate",
    "OptimalTileFamily",
    "optimal_tile_family",
    "AffinePiece",
    "PiecewiseValueFunction",
    "parametric_tile_exponent",
    "best_rectangle",
    "best_subset",
    "MemoryHierarchy",
    "HierarchicalTiling",
    "solve_hierarchical_tiling",
    "best_integer_tile",
    "verify_analysis",
    "catalog",
    "MachineModel",
    "TrafficReport",
    "MissCurve",
    "miss_curve",
    "nest_miss_curve",
    "generate_trace_batched",
    "simulate_tiled_traffic",
    "simulate_untiled_traffic",
    "best_order_traffic",
    "run_trace_simulation",
    "optimal_grid",
    "simulate_grid",
    "distributed_lower_bound",
    "canonicalize",
    "canonical_key",
    "Planner",
    "PlanRequest",
    "TilePlan",
    "plan_batch",
    "sweep_requests",
]
