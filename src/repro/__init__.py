"""repro — communication-optimal tilings for projective nested loops.

A full reproduction of Dinh & Demmel, *Communication-Optimal Tilings
for Projective Nested Loops with Arbitrary Bounds* (SPAA 2020,
arXiv:2003.00119): the HBL lower-bound machinery (§3), the
arbitrary-bound Theorem-2 bounds (§4), the matching tiling construction
and Theorem-3 tightness certificates (§5), the worked examples (§6) as
a problem catalog, the multiparametric piecewise-linear value function
(§7), a cache/traffic simulation substrate validating the bounds, a
numpy execution backend, and the multiprocessor extension (§7).

Quickstart
----------
>>> import repro
>>> nest = repro.parse_nest("C[i,k] += A[i,j] * B[j,k]",
...                         bounds={"i": 1024, "j": 1024, "k": 16})
>>> analysis = repro.analyze(nest, cache_words=2**16)
>>> analysis.tiling.tile.blocks          # doctest: +SKIP
(4096, 16, 16)
>>> analysis.lower_bound.k_hat
Fraction(5, 4)
"""

from dataclasses import dataclass

from .core import (
    AffinePiece,
    ArrayRef,
    CommunicationLowerBound,
    HBLSolution,
    HierarchicalTiling,
    LinearProgram,
    LoopNest,
    LoopNestError,
    MemoryHierarchy,
    OptimalTileFamily,
    ParseError,
    PiecewiseValueFunction,
    Theorem3Certificate,
    TileShape,
    TilingSolution,
    best_integer_tile,
    best_rectangle,
    best_subset,
    canonical_key,
    canonicalize,
    communication_lower_bound,
    optimal_tile_family,
    parametric_tile_exponent,
    parse_nest,
    solve_hbl,
    solve_hierarchical_tiling,
    solve_tiling,
    subset_exponent,
    subset_scan,
    theorem3_certificate,
    tile_exponent,
    verify_analysis,
)
from .library import catalog
from .machine import MachineModel, MissCurve, TrafficReport, miss_curve
from .parallel import distributed_lower_bound, optimal_grid, simulate_grid
from .plan import Planner, PlanRequest, TilePlan, plan_batch, sweep_requests
from .simulate import (
    best_order_traffic,
    generate_trace_batched,
    nest_miss_curve,
    run_trace_simulation,
    simulate_tiled_traffic,
    simulate_untiled_traffic,
)

__version__ = "1.1.0"


@dataclass(frozen=True)
class Analysis:
    """One-call bundle: bound + tiling + tightness certificate."""

    nest: LoopNest
    cache_words: int
    lower_bound: CommunicationLowerBound
    tiling: TilingSolution
    certificate: Theorem3Certificate

    def summary(self) -> str:
        lines = [
            self.nest.describe(),
            self.lower_bound.summary(),
            self.tiling.summary(),
            self.certificate.summary(),
        ]
        return "\n".join(lines)


def analyze(nest: LoopNest, cache_words: int, budget: str = "per-array") -> Analysis:
    """Run the full §4/§5 pipeline on a nest: bound, tiling, certificate."""
    return Analysis(
        nest=nest,
        cache_words=cache_words,
        lower_bound=communication_lower_bound(nest, cache_words),
        tiling=solve_tiling(nest, cache_words, budget=budget),
        certificate=theorem3_certificate(nest, cache_words),
    )


__all__ = [
    "__version__",
    "Analysis",
    "analyze",
    "LoopNest",
    "ArrayRef",
    "LoopNestError",
    "ParseError",
    "parse_nest",
    "LinearProgram",
    "HBLSolution",
    "solve_hbl",
    "CommunicationLowerBound",
    "communication_lower_bound",
    "subset_exponent",
    "subset_scan",
    "tile_exponent",
    "TileShape",
    "TilingSolution",
    "solve_tiling",
    "Theorem3Certificate",
    "theorem3_certificate",
    "OptimalTileFamily",
    "optimal_tile_family",
    "AffinePiece",
    "PiecewiseValueFunction",
    "parametric_tile_exponent",
    "best_rectangle",
    "best_subset",
    "MemoryHierarchy",
    "HierarchicalTiling",
    "solve_hierarchical_tiling",
    "best_integer_tile",
    "verify_analysis",
    "catalog",
    "MachineModel",
    "TrafficReport",
    "MissCurve",
    "miss_curve",
    "nest_miss_curve",
    "generate_trace_batched",
    "simulate_tiled_traffic",
    "simulate_untiled_traffic",
    "best_order_traffic",
    "run_trace_simulation",
    "optimal_grid",
    "simulate_grid",
    "distributed_lower_bound",
    "canonicalize",
    "canonical_key",
    "Planner",
    "PlanRequest",
    "TilePlan",
    "plan_batch",
    "sweep_requests",
]
