"""Command-line front end: the compiler-pass use case of §7.

Examples
--------
Analyse a statement (bound + optimal tile + tightness certificate)::

    repro-tile "C[i,k] += A[i,j] * B[j,k]" --bounds i=1024,j=1024,k=16 -M 65536

Analyse a catalog problem and print the piecewise closed form::

    repro-tile --problem matmul --sizes 1024,1024,16 -M 65536 --piecewise

Simulate the derived tiling's traffic against the lower bound::

    repro-tile --problem nbody --sizes 4096,4096 -M 4096 --simulate
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import analyze
from .core.mplp import parametric_tile_exponent
from .core.parser import ParseError, parse_nest
from .library.problems import CATALOG_BUILDERS
from .machine.model import MachineModel
from .simulate.executor import best_order_traffic, simulate_untiled_traffic

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile",
        description="Communication lower bounds and optimal tilings for projective loop nests",
    )
    parser.add_argument(
        "statement",
        nargs="?",
        help='loop-nest statement, e.g. "C[i,k] += A[i,j] * B[j,k]"',
    )
    parser.add_argument(
        "--bounds",
        help="comma-separated loop bounds, e.g. i=1024,j=1024,k=16",
    )
    parser.add_argument(
        "--problem",
        choices=sorted(CATALOG_BUILDERS),
        help="use a catalog problem instead of a statement",
    )
    parser.add_argument(
        "--sizes", help="comma-separated sizes for the catalog problem"
    )
    parser.add_argument(
        "-M",
        "--cache-words",
        type=int,
        required=True,
        help="fast-memory capacity in words",
    )
    parser.add_argument(
        "--budget",
        choices=("per-array", "aggregate"),
        default="per-array",
        help="memory-budget convention (paper model vs practical cache)",
    )
    parser.add_argument(
        "--piecewise",
        action="store_true",
        help="also print the exact piecewise-linear tile exponent f(beta)",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="also simulate tiled vs untiled traffic in the machine model",
    )
    return parser


def _parse_bounds(blob: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for piece in blob.split(","):
        if "=" not in piece:
            raise ParseError(f"bad bounds entry {piece!r}; expected name=value")
        name, _, value = piece.partition("=")
        try:
            out[name.strip()] = int(value)
        except ValueError:
            raise ParseError(f"bad bound value in {piece!r}") from None
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    try:
        if args.problem:
            builder, default_sizes = CATALOG_BUILDERS[args.problem]
            sizes = (
                tuple(int(s) for s in args.sizes.split(",")) if args.sizes else default_sizes
            )
            nest = builder(*sizes)
        elif args.statement:
            if not args.bounds:
                parser.error("--bounds is required with a statement")
            nest = parse_nest(args.statement, _parse_bounds(args.bounds))
        else:
            parser.error("give a statement or --problem")
            return 2  # unreachable; parser.error raises
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TypeError as exc:
        print(f"error: bad --sizes for problem: {exc}", file=sys.stderr)
        return 2

    analysis = analyze(nest, args.cache_words, budget=args.budget)
    print(analysis.summary())

    if args.piecewise:
        print(parametric_tile_exponent(nest).render())

    if args.simulate:
        machine = MachineModel(cache_words=args.cache_words)
        tiled = best_order_traffic(nest, analysis.tiling.tile, machine=machine)
        naive = simulate_untiled_traffic(nest, machine=machine)
        bound = analysis.lower_bound.value
        print(f"simulated tiled traffic : {tiled.total_words} words "
              f"(ratio to bound {tiled.ratio_to(bound):.2f})")
        print(f"simulated naive traffic : {naive.total_words} words "
              f"(ratio to bound {naive.ratio_to(bound):.2f})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
