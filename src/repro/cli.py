"""Command-line front end: the compiler-pass use case of §7.

Examples
--------
Analyse a statement (bound + optimal tile + tightness certificate)::

    repro-tile "C[i,k] += A[i,j] * B[j,k]" --bounds i=1024,j=1024,k=16 -M 65536

Analyse a catalog problem and print the piecewise closed form::

    repro-tile --problem matmul --sizes 1024,1024,16 -M 65536 --piecewise

Simulate the derived tiling's traffic against the lower bound::

    repro-tile --problem nbody --sizes 4096,4096 -M 4096 --simulate

Serve a batch of queries through the plan cache (one JSON line each)::

    repro-tile --batch requests.json --plan-cache plans.json

Sweep a problem over size and cache grids (``:`` separates choices)::

    repro-tile --problem matmul --sizes 256:4096,512,16:64 -M 4096:65536 --sweep

Autotune the integer tile with the simulator in the loop (one Result
JSON line; ``--smoke`` clamps the budget for CI)::

    repro-tile tune --problem matmul --sizes 24,24,24 -M 128 --workers 0

Plan (and optionally tune) a nested tiling for a whole memory
hierarchy, certified per boundary (one Result JSON line)::

    repro-tile hierarchy --problem matmul --sizes 24,24,24 \
        --capacities 48:192:768 --tune 16 --workers 0

Ingest a whole program — einsum string, inline statements (``;``
separated, stencil offsets allowed) or a JSON program file — split it
into perfect projective bands and plan every band through one plan
cache (one Result JSON line, kind ``program``)::

    repro-tile program --einsum "ik,kj->ij" --sizes i=512,k=512,j=512 -M 4096
    repro-tile program "S[i,j] = A[i,j]; C[i,k] += S[i,j] * W[j,k]" \
        --bounds i=64,j=64,k=64 -M 4096
    repro-tile program --file program.json -M 4096 --tune 16 --workers 0

Run the JSON service (see :mod:`repro.serve`)::

    repro-tile serve --port 8787

Inspect the metrics registry — this process's, a Session's summary, or
a running server's ``/v1/metrics`` scrape (see :mod:`repro.obs`)::

    repro-tile stats
    repro-tile stats --json
    repro-tile stats --url http://127.0.0.1:8787

Every mode routes through one :class:`repro.api.Session`, the same
façade the library, the benchmarks and the HTTP service share.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Sequence

from .api import (
    AnalyzeRequest,
    HierarchyRequest,
    ProgramRequest,
    RequestError,
    Session,
    TuneRequest,
)
from .api import default_session as _session
from .core.loopnest import LoopNest, LoopNestError
from .core.mplp import parametric_tile_exponent
from .core.parser import ParseError, parse_nest
from .frontend.einsum import FrontendError
from .library.problems import CATALOG_BUILDERS, build_problem
from .machine.model import MachineModel
from .simulate.executor import best_order_traffic, simulate_untiled_traffic

__all__ = [
    "main",
    "build_arg_parser",
    "build_serve_parser",
    "build_stats_parser",
    "build_tune_parser",
    "build_hierarchy_parser",
    "build_program_parser",
]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile",
        description="Communication lower bounds and optimal tilings for projective loop nests",
    )
    parser.add_argument(
        "statement",
        nargs="?",
        help='loop-nest statement, e.g. "C[i,k] += A[i,j] * B[j,k]"',
    )
    parser.add_argument(
        "--bounds",
        help="comma-separated loop bounds, e.g. i=1024,j=1024,k=16 "
        "(with --sweep, each value may be a :-separated list)",
    )
    parser.add_argument(
        "--problem",
        choices=sorted(CATALOG_BUILDERS),
        help="use a catalog problem instead of a statement",
    )
    parser.add_argument(
        "--sizes",
        help="comma-separated sizes for the catalog problem "
        "(with --sweep, each size may be a :-separated list)",
    )
    parser.add_argument(
        "-M",
        "--cache-words",
        help="fast-memory capacity in words (with --sweep, a :-separated list)",
    )
    parser.add_argument(
        "--budget",
        choices=("per-array", "aggregate"),
        default="per-array",
        help="memory-budget convention (paper model vs practical cache)",
    )
    parser.add_argument(
        "--piecewise",
        action="store_true",
        help="also print the exact piecewise-linear tile exponent f(beta)",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="also simulate tiled vs untiled traffic in the machine model",
    )
    batch = parser.add_argument_group("batch planning (JSON-lines output)")
    batch.add_argument(
        "--batch",
        metavar="FILE",
        help="serve a JSON file of plan requests through the plan cache",
    )
    batch.add_argument(
        "--sweep",
        action="store_true",
        help="cross-product the :-separated --sizes/--bounds and -M lists",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for cold structure solves (default: auto; 0 = serial)",
    )
    batch.add_argument(
        "--plan-cache",
        metavar="FILE",
        help="persistent JSON plan cache to load before and save after the run",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile serve",
        description="Serve /v1/{health,analyze,batch,sweep,simulate,tune,hierarchy,"
        "distributed} as JSON over HTTP",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8787, help="TCP port (default 8787; 0 = ephemeral)"
    )
    parser.add_argument(
        "--plan-cache",
        metavar="FILE",
        help="persistent JSON plan cache loaded into the shared session",
    )
    parser.add_argument(
        "--shared-cache",
        metavar="DIR",
        help="sharded cross-process plan store; concurrent server "
        "processes pointing at the same directory warm each other",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for cold structure solves "
        "(default: $REPRO_SERVE_WORKERS or 0 = solve in the handler thread)",
    )
    parser.add_argument(
        "--response-cache",
        type=int,
        default=None,
        metavar="N",
        help="full-request response cache entries; verbatim repeats are "
        "answered without touching the solver (default 1024; 0 = off)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logging"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="bound on concurrently-processed POSTs; excess load is shed "
        "with a structured 429 (default 64)",
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline applied to requests that do not carry their own "
        "deadline_ms (default: none)",
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a structured slow-request line (with the span tree) for "
        "requests slower than this (default 1000; 0 = off)",
    )
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile stats",
        description="Inspect the observability registry: scrape a running "
        "server's /v1/metrics, or render this process's own registry",
    )
    parser.add_argument(
        "--url",
        metavar="URL",
        help="server base URL (e.g. http://127.0.0.1:8787); scrapes "
        "/v1/metrics and prints the Prometheus text verbatim",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print Session.metrics() as JSON (registry summary + planner "
        "and shared-cache stats) instead of Prometheus text",
    )
    return parser


def _add_nest_arguments(parser: argparse.ArgumentParser) -> None:
    """The statement/--problem nest spelling shared by the subcommands."""
    parser.add_argument(
        "statement",
        nargs="?",
        help='loop-nest statement, e.g. "C[i,k] += A[i,j] * B[j,k]"',
    )
    parser.add_argument(
        "--bounds", help="comma-separated loop bounds, e.g. i=24,j=24,k=24"
    )
    parser.add_argument(
        "--problem",
        choices=sorted(CATALOG_BUILDERS),
        help="use a catalog problem instead of a statement",
    )
    parser.add_argument("--sizes", help="comma-separated sizes for the catalog problem")


def _add_search_arguments(parser: argparse.ArgumentParser, smoke_help: str) -> None:
    """The tuning-search knobs shared by ``tune`` and ``hierarchy``."""
    parser.add_argument(
        "--strategy",
        choices=("exhaustive", "coordinate", "random"),
        default="exhaustive",
        help="search strategy (default exhaustive)",
    )
    parser.add_argument(
        "--radius",
        type=int,
        default=1,
        help="lattice neighbourhood radius around the analytic seed (default 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for candidate evaluation (default: auto; 0 = serial)",
    )
    parser.add_argument(
        "--plan-cache",
        metavar="FILE",
        help="persistent JSON plan cache to load before and save after the run",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="cooperative deadline for the whole run; on expiry the emitted "
        "Result is a structured 504 error envelope and the exit code is 3",
    )
    parser.add_argument("--smoke", action="store_true", help=smoke_help)


def build_tune_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile tune",
        description="Autotune the integer tile with the trace simulator in the loop; "
        "emits one schema-v1 Result JSON line (kind 'tune')",
    )
    _add_nest_arguments(parser)
    parser.add_argument(
        "-M", "--cache-words", help="fast-memory capacity in words", required=False
    )
    parser.add_argument(
        "--budget",
        choices=("per-array", "aggregate"),
        default="aggregate",
        help="memory-budget convention for candidate feasibility (default aggregate)",
    )
    parser.add_argument(
        "--max-evals",
        type=int,
        default=64,
        help="evaluation budget: distinct tiles simulated (default 64)",
    )
    parser.add_argument(
        "--capacities",
        help="':'-separated Pareto capacities (default: powers of two up to -M)",
    )
    _add_search_arguments(
        parser, smoke_help="CI smoke mode: clamp the evaluation budget to 8 tiles"
    )
    return parser


def build_hierarchy_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile hierarchy",
        description="Plan (and optionally tune) a nested tiling for a whole memory "
        "hierarchy, certified per boundary; emits one schema-v1 Result JSON line "
        "(kind 'hierarchy')",
    )
    _add_nest_arguments(parser)
    parser.add_argument(
        "--capacities",
        required=True,
        help="':'-separated strictly increasing cache capacities in words, "
        "innermost first, e.g. 48:192:768",
    )
    parser.add_argument(
        "--budget",
        choices=("per-array", "aggregate"),
        default="aggregate",
        help="memory-budget convention per level (default aggregate)",
    )
    parser.add_argument(
        "--tune",
        type=int,
        default=0,
        metavar="N",
        help="evaluation budget for innermost-tile tuning "
        "(default 0 = serve the analytic nested plan)",
    )
    _add_search_arguments(
        parser, smoke_help="CI smoke mode: clamp the tune budget to 8 tiles"
    )
    return parser


def build_program_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tile program",
        description="Ingest a whole program (einsum string, inline statements, or a "
        "JSON program file), split it into perfect projective bands, and plan every "
        "band through one shared plan cache; emits one schema-v1 Result JSON line "
        "(kind 'program')",
    )
    parser.add_argument(
        "statements",
        nargs="?",
        help="inline ';'-separated update statements (stencil offsets allowed), "
        'e.g. "S[i,j] = A[i,j]; C[i,k] += S[i,j] * W[j,k]"',
    )
    parser.add_argument(
        "--bounds", help="comma-separated loop bounds for inline statements, e.g. i=64,j=64,k=64"
    )
    parser.add_argument(
        "--file",
        metavar="FILE",
        help='JSON program file: {"name": ..., "bounds": {...}, "statements": [...]}',
    )
    parser.add_argument(
        "--einsum", metavar="SPEC", help="einsum spec, e.g. 'ik,kj->ij' (explicit output)"
    )
    parser.add_argument(
        "--sizes",
        help="comma-separated einsum index extents, e.g. i=512,k=512,j=512",
    )
    parser.add_argument(
        "--operands", help="comma-separated operand array names for --einsum (default A,B,...)"
    )
    parser.add_argument("--output", help="output array name for --einsum (default Out)")
    parser.add_argument("--name", default=None, help="program name (defaults per spelling)")
    parser.add_argument("-M", "--cache-words", help="fast-memory capacity in words")
    parser.add_argument(
        "--budget",
        choices=("per-array", "aggregate"),
        default="per-array",
        help="memory-budget convention per band (default per-array)",
    )
    parser.add_argument(
        "--certificate",
        action="store_true",
        help="attach a Theorem-3 tightness certificate per band",
    )
    parser.add_argument(
        "--tune",
        type=int,
        default=0,
        metavar="N",
        help="per-band evaluation budget for tile tuning "
        "(default 0 = serve the analytic plans)",
    )
    _add_search_arguments(
        parser, smoke_help="CI smoke mode: clamp the per-band tune budget to 8 tiles"
    )
    return parser


def _program_from_args(args, parser: argparse.ArgumentParser) -> dict:
    """The request blob for one of the three program spellings."""
    spellings = [bool(args.file), bool(args.einsum), bool(args.statements)]
    if sum(spellings) != 1:
        parser.error("give exactly one of --file, --einsum, or inline statements")
    if args.file:
        with open(args.file) as handle:
            program = json.load(handle)
        if isinstance(program, dict) and args.name:
            program = {**program, "name": args.name}
        return {"program": program}
    if args.einsum:
        if not args.sizes:
            parser.error("--sizes is required with --einsum (e.g. i=512,k=512,j=512)")
        blob: dict = {"einsum": args.einsum, "sizes": _parse_bounds(args.sizes)}
        if args.operands:
            blob["operands"] = [n.strip() for n in args.operands.split(",")]
        if args.output:
            blob["output"] = args.output
        if args.name:
            blob["name"] = args.name
        return blob
    if not args.bounds:
        parser.error("--bounds is required with inline statements")
    return {
        "program": {
            "name": args.name or "program",
            "bounds": _parse_bounds(args.bounds),
            "statements": [s for s in args.statements.split(";") if s.strip()],
        }
    }


def _run_program(argv: Sequence[str]) -> int:
    """One program request through a Session; one Result JSON line."""
    parser = build_program_parser()
    args = parser.parse_args(list(argv))
    cache_words = _single_cache_words(args, parser)
    try:
        blob = _program_from_args(args, parser)
        blob.update(
            cache_words=cache_words,
            budget=args.budget,
            certificate=args.certificate,
            tune_budget=min(args.tune, 8) if args.smoke else args.tune,
            strategy=args.strategy,
            radius=args.radius,
        )
        request = ProgramRequest.from_json(blob, "program")
        session = Session(plan_cache=args.plan_cache, workers=args.workers)
        result = session.program(request, deadline_ms=args.deadline_ms)
        print(result.to_json_str())
        if args.plan_cache:
            session.save_plans()
    except (ParseError, FrontendError, LoopNestError, RequestError, OSError,
            json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # An error envelope (e.g. an expired deadline) is still one valid
    # Result JSON line on stdout, but the exit code tells scripts apart.
    return 0 if result.ok else 3


def _nest_from_args(args, parser: argparse.ArgumentParser) -> LoopNest:
    """The shared statement/--problem nest spelling of the subcommands."""
    if args.problem:
        sizes = tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None
        return build_problem(args.problem, sizes)
    if args.statement:
        if not args.bounds:
            parser.error("--bounds is required with a statement")
        return parse_nest(args.statement, _parse_bounds(args.bounds))
    parser.error("give a statement or --problem")
    raise AssertionError("unreachable")  # pragma: no cover


def _run_hierarchy(argv: Sequence[str]) -> int:
    """One hierarchy request through a Session; one Result JSON line."""
    parser = build_hierarchy_parser()
    args = parser.parse_args(list(argv))
    try:
        nest = _nest_from_args(args, parser)
        request = HierarchyRequest(
            nest=nest,
            capacities=tuple(_parse_choices(args.capacities, "--capacities")),
            budget=args.budget,
            tune_budget=min(args.tune, 8) if args.smoke else args.tune,
            strategy=args.strategy,
            radius=args.radius,
        ).validate()
        session = Session(plan_cache=args.plan_cache, workers=args.workers)
        result = session.hierarchy(request, deadline_ms=args.deadline_ms)
        print(result.to_json_str())
        if args.plan_cache:
            session.save_plans()
    except (ParseError, LoopNestError, RequestError, OSError,
            json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # An error envelope (e.g. an expired deadline) is still one valid
    # Result JSON line on stdout, but the exit code tells scripts apart.
    return 0 if result.ok else 3


def _run_tune(argv: Sequence[str]) -> int:
    """One tune request through a Session; one Result JSON line."""
    parser = build_tune_parser()
    args = parser.parse_args(list(argv))
    cache_words = _single_cache_words(args, parser)
    try:
        nest = _nest_from_args(args, parser)
        request = TuneRequest(
            nest=nest,
            cache_words=cache_words,
            budget=args.budget,
            strategy=args.strategy,
            max_evaluations=min(args.max_evals, 8) if args.smoke else args.max_evals,
            radius=args.radius,
            capacities=(
                tuple(_parse_choices(args.capacities, "--capacities"))
                if args.capacities
                else None
            ),
        ).validate()
        session = Session(plan_cache=args.plan_cache, workers=args.workers)
        result = session.tune(request, deadline_ms=args.deadline_ms)
        print(result.to_json_str())
        if args.plan_cache:
            session.save_plans()
    except (ParseError, LoopNestError, RequestError, OSError,
            json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # An error envelope (e.g. an expired deadline) is still one valid
    # Result JSON line on stdout, but the exit code tells scripts apart.
    return 0 if result.ok else 3


def _parse_bounds(blob: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for piece in blob.split(","):
        if "=" not in piece:
            raise ParseError(f"bad bounds entry {piece!r}; expected name=value")
        name, _, value = piece.partition("=")
        try:
            out[name.strip()] = int(value)
        except ValueError:
            raise ParseError(f"bad bound value in {piece!r}") from None
    return out


def _parse_choices(blob: str, what: str) -> list[int]:
    """A ``:``-separated list of positive integers (sweep axes)."""
    try:
        values = [int(v) for v in blob.split(":")]
    except ValueError:
        raise ParseError(f"bad {what} value {blob!r}; expected ints separated by ':'") from None
    if not values:
        raise ParseError(f"empty {what} list")
    return values


def _single_cache_words(args, parser: argparse.ArgumentParser) -> int:
    if args.cache_words is None:
        parser.error("-M/--cache-words is required")
    try:
        return int(args.cache_words)
    except ValueError:
        parser.error(f"bad -M value {args.cache_words!r}")
    raise AssertionError("unreachable")  # pragma: no cover


def _batch_requests_from_file(path: str) -> list[AnalyzeRequest]:
    """Parse a request file: a JSON list (or ``{"requests": [...]}``).

    Entries use the schema-v1 request spellings of
    :meth:`repro.api.AnalyzeRequest.from_json` — ``problem``/``sizes``,
    ``statement``/``bounds``, or an inline ``nest`` object.
    """
    with open(path) as handle:
        blob = json.load(handle)
    if isinstance(blob, dict):
        blob = blob.get("requests")
    if not isinstance(blob, list):
        raise ParseError(f"{path}: expected a JSON list of requests")
    requests = []
    for idx, entry in enumerate(blob):
        if not isinstance(entry, dict):
            raise ParseError(f"{path}[{idx}]: expected an object")
        if "statement" in entry and "name" not in entry:
            entry = {**entry, "name": f"request{idx}"}
        requests.append(AnalyzeRequest.from_json(entry, f"{path}[{idx}]"))
    return requests


def _sweep_requests_from_args(args, parser: argparse.ArgumentParser) -> list[AnalyzeRequest]:
    if args.cache_words is None:
        parser.error("-M/--cache-words is required with --sweep")
    cache_sizes = _parse_choices(args.cache_words, "-M")
    nests: list[LoopNest] = []
    if args.problem:
        if not args.sizes:
            parser.error("--sweep needs explicit --sizes axes")
        axes = [_parse_choices(axis, "--sizes") for axis in args.sizes.split(",")]
        for sizes in itertools.product(*axes):
            nests.append(build_problem(args.problem, sizes))
    elif args.statement:
        if not args.bounds:
            parser.error("--bounds is required with a statement")
        bound_axes: dict[str, list[int]] = {}
        for piece in args.bounds.split(","):
            if "=" not in piece:
                raise ParseError(f"bad bounds entry {piece!r}; expected name=values")
            name, _, value = piece.partition("=")
            bound_axes[name.strip()] = _parse_choices(value, "--bounds")
        for combo in itertools.product(*bound_axes.values()):
            nests.append(parse_nest(args.statement, dict(zip(bound_axes, combo))))
    else:
        parser.error("--sweep needs a statement or --problem")
    return [
        AnalyzeRequest(nest=nest, cache_words=m, budget=args.budget)
        for nest in nests
        for m in cache_sizes
    ]


def _run_batch(requests: Sequence[AnalyzeRequest], args) -> int:
    """Serve a request list through one Session; one Result JSON line each."""
    session = Session(plan_cache=args.plan_cache, workers=args.workers)
    for result in session.batch(requests):
        print(result.to_json_str())
    if args.plan_cache:
        session.save_plans()
    return 0


def _run_stats(argv: Sequence[str]) -> int:
    """Observability surface: scrape a server or render the local registry."""
    args = build_stats_parser().parse_args(list(argv))
    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/v1/metrics"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.json:
        print(json.dumps(_session().metrics(), indent=2, sort_keys=True))
        return 0
    from .obs import global_registry, render_registry

    sys.stdout.write(render_registry(global_registry()))
    return 0


def _run_serve(argv: Sequence[str]) -> int:
    from .serve import serve  # deferred: keep plain CLI start cheap

    args = build_serve_parser().parse_args(list(argv))
    try:
        session = Session(plan_cache=args.plan_cache, shared_cache=args.shared_cache)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        from .serve import (
            DEFAULT_MAX_INFLIGHT,
            DEFAULT_RESPONSE_CACHE,
            DEFAULT_SLOW_REQUEST_MS,
        )

        if args.slow_request_ms is None:
            slow_request_ms: float | None = DEFAULT_SLOW_REQUEST_MS
        else:
            # 0 (or negative) disables the slow-request log entirely.
            slow_request_ms = args.slow_request_ms if args.slow_request_ms > 0 else None
        return serve(
            host=args.host,
            port=args.port,
            session=session,
            verbose=not args.quiet,
            max_inflight=args.max_inflight if args.max_inflight else DEFAULT_MAX_INFLIGHT,
            default_deadline_ms=args.default_deadline_ms,
            workers=args.workers,
            response_cache=(
                DEFAULT_RESPONSE_CACHE
                if args.response_cache is None
                else args.response_cache
            ),
            slow_request_ms=slow_request_ms,
        )
    except (OSError, ValueError) as exc:
        # Bind failures (port in use, bad host) and bad admission/deadline
        # settings follow the CLI contract.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Mirror batch mode: structures solved while serving persist.
        if args.plan_cache:
            session.save_plans()


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv[:1] == ["serve"]:
        return _run_serve(argv[1:])
    if argv[:1] == ["stats"]:
        return _run_stats(argv[1:])
    if argv[:1] == ["tune"]:
        return _run_tune(argv[1:])
    if argv[:1] == ["hierarchy"]:
        return _run_hierarchy(argv[1:])
    if argv[:1] == ["program"]:
        return _run_program(argv[1:])

    parser = build_arg_parser()
    args = parser.parse_args(argv)

    try:
        if args.batch:
            if args.statement or args.problem or args.sweep:
                parser.error("--batch takes its queries from the file; "
                             "drop the statement/--problem/--sweep arguments")
            return _run_batch(_batch_requests_from_file(args.batch), args)
        if args.sweep:
            return _run_batch(_sweep_requests_from_args(args, parser), args)
    except (ParseError, LoopNestError, RequestError, OSError,
            json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache_words = _single_cache_words(args, parser)
    try:
        if args.problem:
            sizes = tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None
            nest = build_problem(args.problem, sizes)
        elif args.statement:
            if not args.bounds:
                parser.error("--bounds is required with a statement")
            nest = parse_nest(args.statement, _parse_bounds(args.bounds))
        else:
            parser.error("give a statement or --problem")
            return 2  # unreachable; parser.error raises
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TypeError as exc:
        print(f"error: bad --sizes for problem: {exc}", file=sys.stderr)
        return 2

    analysis = _session().analysis(nest, cache_words, budget=args.budget)
    print(analysis.summary())

    if args.piecewise:
        print(parametric_tile_exponent(nest).render())

    if args.simulate:
        machine = MachineModel(cache_words=cache_words)
        tiled = best_order_traffic(nest, analysis.tiling.tile, machine=machine)
        naive = simulate_untiled_traffic(nest, machine=machine)
        bound = analysis.lower_bound.value
        print(f"simulated tiled traffic : {tiled.total_words} words "
              f"(ratio to bound {tiled.ratio_to(bound):.2f})")
        print(f"simulated naive traffic : {naive.total_words} words "
              f"(ratio to bound {naive.ratio_to(bound):.2f})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
