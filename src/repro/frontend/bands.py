"""Band splitting: an imperfect program -> maximal perfect projective bands.

A :class:`~repro.frontend.program.Program` is a statement *sequence*;
the planner wants perfect nests.  The classical decomposition (what
Tiramisu/Halide schedulers do before tiling) is to fuse maximal runs of
consecutive statements that share the same loop set into *bands*, each
of which is one perfect nest the paper's machinery handles directly:

* **Fusion rule** — statement ``k+1`` joins statement ``k``'s band iff
  it uses exactly the same set of loops.  A statement over a different
  loop set starts a new band (fusing across different iteration spaces
  would change the footprint model, not just the schedule).
* **Access merge** — the band's accesses are the union of its
  statements' accesses, halo-normalized by
  :func:`repro.frontend.stencil.normalize_accesses`: constant offsets
  are dropped (recorded as halo), duplicate projections collapse (a
  write plus a read of the same projection is one output reference),
  and true aliases — the same array through two *different* index
  tuples — are renamed ``A__2``, ``A__3``, ...
* **Loop order** — first-appearance order across the band's statements,
  so a single-statement band reproduces :func:`repro.core.parser.
  parse_nest`'s ordering exactly (and einsum twins stay bit-identical).

Each band lowers to a :class:`~repro.core.loopnest.LoopNest` named
``{program}.band{k}``, ready for one shared
:class:`~repro.plan.Planner` — bands with the same canonical structure
(e.g. a loop over matmul-shaped updates) hit the plan cache warm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.loopnest import ArrayRef, LoopNest, LoopNestError
from .einsum import FrontendError
from .program import Program
from .stencil import normalize_accesses

__all__ = ["Band", "split_bands"]


@dataclass(frozen=True)
class Band:
    """One maximal perfect projective band of a program."""

    #: Position of the band within the program (0-based).
    index: int
    #: Indices of the program statements fused into this band.
    statement_indices: tuple[int, ...]
    #: The lowered perfect nest (named ``{program}.band{index}``).
    nest: LoopNest
    #: Per-array halo (max |offset| per index slot), sorted by array.
    halo: tuple[tuple[str, tuple[int, ...]], ...]
    #: Alias renames applied during normalization, sorted by alias.
    renames: tuple[tuple[str, str], ...]

    @property
    def halo_map(self) -> dict[str, tuple[int, ...]]:
        return dict(self.halo)

    @property
    def renames_map(self) -> dict[str, str]:
        return dict(self.renames)


def split_bands(program: Program) -> tuple[Band, ...]:
    """Decompose ``program`` into maximal perfect projective bands.

    Consecutive statements fuse while their loop *sets* are equal; each
    band's merged accesses are halo-normalized and lowered to one
    :class:`LoopNest` over the shared bounds.  Raises
    :class:`FrontendError` if a band is not projective after
    normalization (e.g. a loop no array uses).
    """
    groups: list[list[int]] = []
    current_loops: frozenset[str] | None = None
    for idx, stmt in enumerate(program.statements):
        loops = frozenset(stmt.loop_names())
        if groups and loops == current_loops:
            groups[-1].append(idx)
        else:
            groups.append([idx])
            current_loops = loops

    bounds = program.bounds_map
    bands: list[Band] = []
    for band_index, members in enumerate(groups):
        statements = [program.statements[i] for i in members]
        order: list[str] = []
        for stmt in statements:
            for ident in stmt.loop_names():
                if ident not in order:
                    order.append(ident)
        position = {ident: i for i, ident in enumerate(order)}
        merged = tuple(acc for stmt in statements for acc in stmt.parsed.accesses)
        normalized, renames, halo = normalize_accesses(merged)
        arrays = tuple(
            ArrayRef(
                name=name,
                support=tuple(sorted(position[ident] for ident in indices)),
                is_output=is_output,
            )
            for name, indices, is_output in normalized
        )
        name = f"{program.name}.band{band_index}"
        try:
            nest = LoopNest(
                name=name,
                loops=tuple(order),
                bounds=tuple(int(bounds[ident]) for ident in order),
                arrays=arrays,
            )
        except LoopNestError as exc:
            raise FrontendError(
                f"program {program.name!r}: band {band_index} "
                f"(statements {members}) is not projective: {exc}"
            ) from exc
        bands.append(
            Band(
                index=band_index,
                statement_indices=tuple(members),
                nest=nest,
                halo=tuple(sorted(halo.items())),
                renames=tuple(sorted(renames.items())),
            )
        )
    return tuple(bands)
