"""Program planning: every band through one shared :class:`Planner`.

:func:`plan_program` is the frontend's executable semantics — the thing
``Session.program`` / ``/v1/program`` / ``repro-tile program`` serve:

1. split the program into maximal perfect projective bands
   (:func:`repro.frontend.bands.split_bands`);
2. plan each band through the *same* planner, so structurally identical
   bands (a pipeline of matmul-shaped updates, the levels of a V-cycle)
   cost one multiparametric solve ever — the rest are warm
   canonical-structure hits;
3. optionally certify each band (Theorem 3) and autotune its integer
   tile with the trace simulator in the loop;
4. aggregate: the program's communication lower bound is the sum of its
   bands' bounds (each band's traffic is separately unavoidable —
   statements in different bands share no perfect nest).

The report payload is a pure function of the request: per-band
``cache_hit`` is popped into envelope meta (like every other kind), and
the payload's ``structure_sharing`` block is *deterministic* — derived
from canonical-key collisions **within** this program, not from live
planner counters — so the same request yields byte-identical payloads
across surfaces, processes and cache temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.trace import span as _span
from ..plan.planner import Planner, TilePlan
from ..tune.result import TuneReport
from ..tune.tuner import tune_tile
from .bands import Band, split_bands
from .program import Program

__all__ = ["BandPlan", "ProgramReport", "plan_program"]


@dataclass(frozen=True)
class BandPlan:
    """One band's served answer: plan (+ optional certificate / tuning)."""

    band: Band
    plan: TilePlan
    #: Theorem-3 certificate payload (None unless requested).
    certificate: dict | None
    #: Autotuning report (None unless a tune budget was given).
    tuned: TuneReport | None
    #: Earliest band index with the same canonical structure, or None.
    shared_with: int | None

    def to_json(self) -> dict:
        plan_json = self.plan.to_json()
        plan_json.pop("cache_hit", None)
        tuned_json = None
        if self.tuned is not None:
            tuned_json = self.tuned.to_json()
            # The tune report's embedded plan repeats the band nest the
            # "plan" block already carries; keep only the tuned tile.
            tuned_json.pop("plan", None)
            tuned_json["tile"] = list(self.tuned.tuned_blocks)
        return {
            "band": self.band.index,
            "name": self.band.nest.name,
            "statements": list(self.band.statement_indices),
            "halo": {name: list(extents) for name, extents in self.band.halo},
            "renames": {alias: source for alias, source in self.band.renames},
            "plan": plan_json,
            "certificate": self.certificate,
            "tuned": tuned_json,
            "structure_shared_with_band": self.shared_with,
        }


@dataclass(frozen=True)
class ProgramReport:
    """A whole program served: per-band plans + program-level aggregates."""

    program: Program
    cache_words: int
    budget: str
    tune_budget: int
    bands: tuple[BandPlan, ...]

    @property
    def cache_hit(self) -> bool:
        """True iff *every* band was a warm canonical-structure hit."""
        return all(bp.plan.cache_hit for bp in self.bands)

    @property
    def aggregate_lower_bound_words(self) -> float:
        """Sum of per-band Theorem bounds — a valid program lower bound."""
        return sum(
            bp.plan.lower_bound.value
            for bp in self.bands
            if bp.plan.lower_bound is not None
        )

    def structure_sharing(self) -> dict:
        """Deterministic intra-program structure reuse (payload-safe)."""
        keys = [bp.plan.canonical_key for bp in self.bands]
        return {
            "unique_structures": len(set(keys)),
            "cross_band_structure_hits": len(keys) - len(set(keys)),
        }

    def summary(self) -> str:
        sharing = self.structure_sharing()
        return (
            f"{self.program.name}: {len(self.program.statements)} statements -> "
            f"{len(self.bands)} bands, M={self.cache_words}, "
            f"aggregate bound {self.aggregate_lower_bound_words:.1f} words, "
            f"{sharing['cross_band_structure_hits']} intra-program structure hits"
        )

    def to_json(self) -> dict:
        return {
            "program": self.program.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
            "tune_budget": self.tune_budget,
            "num_statements": len(self.program.statements),
            "num_bands": len(self.bands),
            "bands": [bp.to_json() for bp in self.bands],
            "aggregate_lower_bound_words": self.aggregate_lower_bound_words,
            "structure_sharing": self.structure_sharing(),
        }


def plan_program(
    program: Program,
    cache_words: int,
    *,
    budget: str = "per-array",
    certificate: bool = False,
    tune_budget: int = 0,
    strategy: str = "exhaustive",
    radius: int = 1,
    planner: Planner | None = None,
    workers: int | None = None,
    events: dict | None = None,
) -> ProgramReport:
    """Split, plan, and optionally certify/tune every band of ``program``.

    ``planner`` shares a session's plan cache and defaults to the
    process-wide :func:`repro.api.default_session`'s planner, so
    program bands warm (and are warmed by) every single-nest query that
    came before.  ``tune_budget > 0`` runs
    :func:`~repro.tune.tune_tile` per band (``strategy``/``radius``/
    ``workers``/``events`` pass through); the analytic plan block is
    unchanged either way — tuning only adds the ``tuned`` sub-report.
    """
    if planner is None:
        from ..api.session import default_session

        planner = default_session().planner
    bands = split_bands(program)
    first_with_key: dict[str, int] = {}
    band_plans: list[BandPlan] = []
    for band in bands:
        with _span("band-plan"):
            plan = planner.plan(band.nest, cache_words, budget, include_bound=True)
            cert_payload = None
            if certificate:
                from ..api.session import Session

                cert_payload = Session._certificate_payload(
                    planner.certificate(band.nest, cache_words)
                )
            tuned = None
            if tune_budget > 0:
                tuned = tune_tile(
                    band.nest,
                    cache_words,
                    budget=budget,
                    strategy=strategy,
                    max_evaluations=tune_budget,
                    radius=radius,
                    planner=planner,
                    workers=workers,
                    events=events,
                )
        shared_with = first_with_key.get(plan.canonical_key)
        if shared_with is None:
            first_with_key[plan.canonical_key] = band.index
        band_plans.append(
            BandPlan(
                band=band,
                plan=plan,
                certificate=cert_payload,
                tuned=tuned,
                shared_with=shared_with,
            )
        )
    return ProgramReport(
        program=program,
        cache_words=cache_words,
        budget=budget,
        tune_budget=tune_budget,
        bands=tuple(band_plans),
    )
