"""Einsum-string ingestion: ``"ik,kj->ij"`` -> projective :class:`LoopNest`.

The accepted grammar is the explicit-output einsum form::

    spec     := operands "->" output
    operands := subscript ("," subscript)*
    subscript:= letter*            # compact: one letter per index
               | ident (" " ident)*  # spaced: multi-char index names

Every index names a loop; the loop order is the order of first
appearance scanning the *operands* left to right (then the output), the
convention that makes ``"ik,kj->ij"`` reproduce the library's matmul
loop order ``(i, k, j)`` exactly.  Each subscript's index set is the
operand's projective support — repeated indices inside one subscript
(traces, diagonals) are not projective and are rejected.

``operands``/``output`` name the arrays and ``loop_names`` renames
loops, so a spec can reproduce a hand-built library nest *bit for bit*
(same names, same supports, same bounds) — which is what lets
einsum-ingested queries share plan-cache structures and golden payloads
with their library twins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.loopnest import ArrayRef, LoopNest, LoopNestError

__all__ = ["FrontendError", "EinsumSpec", "parse_einsum", "einsum_nest"]


class FrontendError(ValueError):
    """A malformed or non-projective frontend input (einsum/program)."""


def _split_subscript(token: str, spec: str) -> tuple[str, ...]:
    """One operand subscript -> index names (compact or spaced form)."""
    token = token.strip()
    if not token:
        return ()
    pieces = token.split() if any(ch.isspace() for ch in token) else list(token)
    for piece in pieces:
        if not piece.replace("_", "a").isalnum() or piece[0].isdigit():
            raise FrontendError(
                f"einsum {spec!r}: bad index {piece!r} in subscript {token!r}; "
                "indices are letters (compact) or identifiers (spaced)"
            )
    return tuple(pieces)


@dataclass(frozen=True)
class EinsumSpec:
    """A parsed einsum: named operands/output with per-array index tuples."""

    spec: str
    operand_indices: tuple[tuple[str, ...], ...]
    output_indices: tuple[str, ...]
    operand_names: tuple[str, ...]
    output_name: str

    def loop_order(self) -> tuple[str, ...]:
        """First-appearance order over operands, then the output."""
        seen: list[str] = []
        for indices in (*self.operand_indices, self.output_indices):
            for ident in indices:
                if ident not in seen:
                    seen.append(ident)
        return tuple(seen)

    def statement(self) -> str:
        """The equivalent update-statement string (program-IR spelling)."""
        out = f"{self.output_name}[{','.join(self.output_indices)}]"
        terms = " * ".join(
            f"{name}[{','.join(indices)}]"
            for name, indices in zip(self.operand_names, self.operand_indices)
        )
        return f"{out} += {terms}"

    def nest(
        self,
        sizes: Mapping[str, int],
        *,
        name: str | None = None,
        loop_names: Mapping[str, str] | None = None,
    ) -> LoopNest:
        """Lower to a :class:`LoopNest` with ``sizes`` keyed by spec index.

        ``loop_names`` optionally renames loops (spec index -> loop
        name), e.g. ``{"i": "x1", "k": "x2", "j": "x3"}`` to reproduce
        the paper's matmul naming bit for bit.
        """
        order = self.loop_order()
        missing = [ident for ident in order if ident not in sizes]
        if missing:
            raise FrontendError(
                f"einsum {self.spec!r}: no sizes given for indices {missing}"
            )
        renames = dict(loop_names or {})
        unknown = sorted(set(renames) - set(order))
        if unknown:
            raise FrontendError(
                f"einsum {self.spec!r}: loop_names renames unused indices {unknown}"
            )
        position = {ident: i for i, ident in enumerate(order)}
        arrays = [
            ArrayRef(
                name=self.output_name,
                support=tuple(sorted(position[i] for i in self.output_indices)),
                is_output=True,
            )
        ]
        arrays.extend(
            ArrayRef(
                name=op_name,
                support=tuple(sorted(position[i] for i in indices)),
            )
            for op_name, indices in zip(self.operand_names, self.operand_indices)
        )
        try:
            return LoopNest(
                name=name if name is not None else "einsum",
                loops=tuple(renames.get(ident, ident) for ident in order),
                bounds=tuple(int(sizes[ident]) for ident in order),
                arrays=tuple(arrays),
            )
        except LoopNestError as exc:
            raise FrontendError(f"einsum {self.spec!r}: {exc}") from exc


def parse_einsum(
    spec: str,
    *,
    operands: tuple[str, ...] | list[str] | None = None,
    output: str | None = None,
) -> EinsumSpec:
    """Parse an explicit-output einsum string into an :class:`EinsumSpec`.

    ``operands``/``output`` override the default array names (``A``,
    ``B``, ... and ``Out``).  Raises :class:`FrontendError` on implicit
    output, repeated indices within a subscript (non-projective), or
    output indices absent from every operand.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise FrontendError("empty einsum spec; expected e.g. 'ik,kj->ij'")
    if "->" not in spec:
        raise FrontendError(
            f"einsum {spec!r} has no '->'; implicit outputs are not supported "
            "(spell the output indices explicitly)"
        )
    lhs, _, rhs = spec.partition("->")
    if "->" in rhs:
        raise FrontendError(f"einsum {spec!r} has more than one '->'")
    operand_tokens = lhs.split(",")
    if not lhs.strip():
        raise FrontendError(f"einsum {spec!r} has no operands")
    operand_indices = tuple(_split_subscript(tok, spec) for tok in operand_tokens)
    output_indices = _split_subscript(rhs, spec)
    for indices, where in (
        *((idx, f"operand {k}") for k, idx in enumerate(operand_indices)),
        (output_indices, "output"),
    ):
        if len(set(indices)) != len(indices):
            raise FrontendError(
                f"einsum {spec!r}: {where} repeats an index in {indices}; "
                "repeated indices (traces/diagonals) are not projective"
            )
    used = {ident for indices in operand_indices for ident in indices}
    orphaned = [ident for ident in output_indices if ident not in used]
    if orphaned:
        raise FrontendError(
            f"einsum {spec!r}: output indices {orphaned} appear in no operand"
        )

    if operands is None:
        names = []
        for k in range(len(operand_indices)):
            default = chr(ord("A") + k) if k < 26 else f"A{k}"
            names.append(default)
        operands = tuple(names)
    else:
        operands = tuple(str(n) for n in operands)
    if len(operands) != len(operand_indices):
        raise FrontendError(
            f"einsum {spec!r}: {len(operand_indices)} operands but "
            f"{len(operands)} operand names"
        )
    output_name = str(output) if output is not None else "Out"
    if len({output_name, *operands}) != 1 + len(operands):
        raise FrontendError(
            f"einsum {spec!r}: array names must be distinct, got "
            f"{output_name!r} and {list(operands)}"
        )
    return EinsumSpec(
        spec=spec.strip(),
        operand_indices=operand_indices,
        output_indices=output_indices,
        operand_names=operands,
        output_name=output_name,
    )


def einsum_nest(
    spec: str,
    sizes: Mapping[str, int],
    *,
    name: str = "einsum",
    operands: tuple[str, ...] | list[str] | None = None,
    output: str | None = None,
    loop_names: Mapping[str, str] | None = None,
) -> LoopNest:
    """One-call einsum -> :class:`LoopNest` (parse + lower)."""
    return parse_einsum(spec, operands=operands, output=output).nest(
        sizes, name=name, loop_names=loop_names
    )
