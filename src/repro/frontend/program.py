"""The program IR: a sequence of update statements over shared loops.

A :class:`Program` is the imperfectly nested shape real code has —
several statements, each its own perfect nest over a subset of the
program's loops, executed in order::

    S[i,j]  = A[i,j]                  # depth-2 band
    C[i,k] += S[i,j] * W[j,k]         # depth-3 band (same i, j; new k)

Statements use the :mod:`repro.core.parser` grammar with constant
offsets admitted (``A[t-1,i+1]`` — see :mod:`.stencil`), one shared
``bounds`` mapping, and ``;`` or newline separators in text form.  The
JSON form mirrors the wire schema of :class:`repro.api` requests::

    {"name": "pipeline",
     "bounds": {"i": 64, "j": 64, "k": 64},
     "statements": ["S[i,j] = A[i,j]", "C[i,k] += S[i,j] * W[j,k]"]}

Parsing only tokenizes and checks bounds coverage; lowering to
projective bands (splitting, halo normalization, alias renaming) is
:func:`repro.frontend.bands.split_bands`'s job.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.parser import ParsedStatement, ParseError, parse_statement
from .einsum import FrontendError

__all__ = ["Statement", "Program", "parse_program"]

#: Statement separators in text form: newlines and semicolons.
_SEPARATORS = re.compile(r"[;\n]")

#: Guard: a program is a handful of statements, not a whole translation unit.
MAX_PROGRAM_STATEMENTS = 64


@dataclass(frozen=True)
class Statement:
    """One parsed update statement of a program (offsets preserved)."""

    text: str
    parsed: ParsedStatement

    def loop_names(self) -> tuple[str, ...]:
        return self.parsed.loop_names()


@dataclass(frozen=True)
class Program:
    """An ordered statement sequence with one shared bounds mapping."""

    name: str
    statements: tuple[Statement, ...]
    #: Sorted (loop, extent) pairs — a hashable mapping.
    bounds: tuple[tuple[str, int], ...]

    @property
    def bounds_map(self) -> dict[str, int]:
        return dict(self.bounds)

    def loop_names(self) -> tuple[str, ...]:
        """Program loops in first-appearance order across statements."""
        seen: list[str] = []
        for stmt in self.statements:
            for ident in stmt.loop_names():
                if ident not in seen:
                    seen.append(ident)
        return tuple(seen)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "bounds": {loop: extent for loop, extent in self.bounds},
            "statements": [stmt.text for stmt in self.statements],
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "program") -> "Program":
        if not isinstance(blob, Mapping):
            raise FrontendError(f"{where}: expected an object, got {type(blob).__name__}")
        statements = blob.get("statements")
        if not isinstance(statements, Sequence) or isinstance(statements, (str, bytes)):
            raise FrontendError(f"{where}: 'statements' must be a list of strings")
        bounds = blob.get("bounds")
        if not isinstance(bounds, Mapping):
            raise FrontendError(f"{where}: 'bounds' must be an object of loop extents")
        return parse_program(
            [str(s) for s in statements],
            {str(k): int(v) for k, v in bounds.items()},
            name=str(blob.get("name", "program")),
        )


def parse_program(
    statements: Sequence[str] | str,
    bounds: Mapping[str, int],
    name: str = "program",
) -> Program:
    """Parse statements (list, or ``;``/newline-separated text) + bounds.

    Every loop used by any statement must have a bound; blank entries
    between separators are skipped.  Raises :class:`FrontendError` (or
    a pointered :class:`~repro.core.parser.ParseError` for statement
    syntax) on malformed input.
    """
    if isinstance(statements, str):
        statements = [s for s in _SEPARATORS.split(statements)]
    texts = [s.strip() for s in statements if s and s.strip()]
    if not texts:
        raise FrontendError(
            "empty program; expected at least one statement like "
            "'C[i,j] += A[i,k] * B[k,j]'"
        )
    if len(texts) > MAX_PROGRAM_STATEMENTS:
        raise FrontendError(
            f"program of {len(texts)} statements exceeds the "
            f"{MAX_PROGRAM_STATEMENTS}-statement guard"
        )
    parsed_statements = []
    for idx, text in enumerate(texts):
        try:
            parsed = parse_statement(text, allow_offsets=True)
        except ParseError as exc:
            raise ParseError(f"statement {idx}: {exc}") from exc
        parsed_statements.append(Statement(text=text, parsed=parsed))

    used: list[str] = []
    for stmt in parsed_statements:
        for ident in stmt.loop_names():
            if ident not in used:
                used.append(ident)
    missing = [loop for loop in used if loop not in bounds]
    if missing:
        raise FrontendError(f"program {name!r}: no bounds given for loops {missing}")
    for loop in used:
        if int(bounds[loop]) < 1:
            raise FrontendError(
                f"program {name!r}: bound for loop {loop!r} must be >= 1, "
                f"got {bounds[loop]}"
            )
    kept = tuple(sorted((loop, int(bounds[loop])) for loop in used))
    return Program(name=str(name), statements=tuple(parsed_statements), bounds=kept)
