"""Halo normalization: constant-offset (stencil) accesses -> projective.

A stencil statement like ``A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1]``
is not projective slot by slot, but every access is a loop name plus a
*constant* offset.  Shifting each access back onto its loops only grows
the data an iteration tile touches by an additive halo of ``O(offset)``
elements per face — a model constant the asymptotic communication
analysis absorbs (exactly like the §6 syrk aliasing argument, where the
footprint is overestimated by at most a constant factor).  So the
normalization is:

1. **Drop the offsets** — ``A[t-1,i+1]`` reads the same array through
   the same projection ``phi`` as ``A[t,i]``; its support is the loop
   set ``{t, i}`` either way.
2. **Record the halo** — per array, the maximum ``|offset|`` seen per
   index slot, reported so consumers can pad allocations/tiles.
3. **Deduplicate** — offset-shifted reads of one array collapse to a
   single :class:`~repro.core.loopnest.ArrayRef` (a write and a read of
   the same projection merge into one ``is_output=True`` reference,
   which is how time-tiled updates in place come out).
4. **Rename true aliases** — the same array accessed through two
   *different* index tuples (e.g. ``A[i,j]`` and ``A[j,i]``) is two
   distinct projections; the later ones are renamed ``A__2``, ``A__3``,
   ... (the library's hand-built syrk calls these ``A``/``A_t``), and
   the renames are reported.

Affine combinations of loops (``A[i+j]``, ``A[2i]``) stay rejected at
tokenization — they change the projection itself, not just its
footprint, and the paper's machinery covers the projective case only.
"""

from __future__ import annotations

from ..core.parser import Access, ParsedStatement

__all__ = ["halo_extents", "normalize_accesses"]


def halo_extents(parsed: ParsedStatement) -> dict[str, tuple[int, ...]]:
    """Per-array halo: max ``|offset|`` per index slot across accesses.

    Only arrays with at least one nonzero offset appear; slots follow
    the array's (first-seen) index tuple.
    """
    halo: dict[str, list[int]] = {}
    order: dict[str, tuple[str, ...]] = {}
    for acc in parsed.accesses:
        if acc.array not in order:
            order[acc.array] = acc.indices
            halo[acc.array] = [0] * len(acc.indices)
        if order[acc.array] != acc.indices:
            continue  # a distinct projection; its halo is tracked post-rename
        for slot, offset in enumerate(acc.offsets):
            halo[acc.array][slot] = max(halo[acc.array][slot], abs(offset))
    return {
        name: tuple(extents)
        for name, extents in halo.items()
        if any(extents)
    }


def normalize_accesses(
    accesses: tuple[Access, ...],
) -> tuple[
    tuple[tuple[str, tuple[str, ...], bool], ...],
    dict[str, str],
    dict[str, tuple[int, ...]],
]:
    """Offset-free, alias-renamed access list for one or more statements.

    Returns ``(normalized, renames, halo)``:

    * ``normalized`` — ordered ``(array_name, index_tuple, is_output)``
      triples with unique array names;
    * ``renames`` — synthesized alias name -> source array
      (``{"A__2": "A"}``);
    * ``halo`` — resolved array name -> max ``|offset|`` per index slot,
      only for arrays that actually carried offsets.

    Deduplication merges accesses with identical ``(array, indices)``
    (``is_output`` is OR-ed: an array both written and read is one
    output reference).  The same array with a *different* index tuple is
    a distinct projection and gets a numbered alias.
    """
    by_name: dict[str, dict[tuple[str, ...], int]] = {}
    normalized: list[list] = []  # [resolved_name, indices, is_output]
    renames: dict[str, str] = {}
    halos: list[list[int]] = []
    for acc in accesses:
        variants = by_name.setdefault(acc.array, {})
        slot = variants.get(acc.indices)
        if slot is None:
            resolved = acc.array if not variants else f"{acc.array}__{len(variants) + 1}"
            if resolved != acc.array:
                renames[resolved] = acc.array
            slot = len(normalized)
            variants[acc.indices] = slot
            normalized.append([resolved, acc.indices, acc.is_output])
            halos.append([0] * len(acc.indices))
        else:
            normalized[slot][2] = normalized[slot][2] or acc.is_output
        for i, offset in enumerate(acc.offsets):
            halos[slot][i] = max(halos[slot][i], abs(offset))
    return (
        tuple((name, indices, bool(out)) for name, indices, out in normalized),
        renames,
        {
            entry[0]: tuple(extents)
            for entry, extents in zip(normalized, halos)
            if any(extents)
        },
    )
