"""``repro.frontend`` — program-level ingestion onto the plan/tune stack.

Everything below the façade speaks one projective :class:`~repro.core.
loopnest.LoopNest` at a time.  This package is the compiler-facing front
door the paper's §7 sketches, lowering three richer input shapes onto
that vocabulary:

* **Einsum strings** (:mod:`.einsum`): ``"ik,kj->ij"`` and its batched /
  multi-operand forms become `LoopNest`s bit-identical to the hand-built
  library twins, so they share canonical structures (and plan-cache
  entries) with every query that came before.
* **Programs** (:mod:`.program`): a sequence of update statements with
  shared loops and bounds — the imperfectly nested shape real code has.
  The band splitter (:mod:`.bands`) decomposes a program into maximal
  perfect projective bands (Tiramisu-style) that plan independently
  through one shared :class:`~repro.plan.Planner`.
* **Stencils** (:mod:`.stencil`): constant-offset accesses like
  ``A[t-1,i+1]`` are halo-normalized to projective bands (the offsets
  only pad the footprint by an additive O(halo) constant, which the
  asymptotic communication analysis absorbs), enabling jacobi/heat
  time-tiled scenario families.

:func:`~repro.frontend.pipeline.plan_program` drives the whole flow and
is what ``Session.program`` / ``/v1/program`` / ``repro-tile program``
serve.  Grammar and policy live in ``docs/frontend.md``.
"""

from .bands import Band, split_bands
from .einsum import EinsumSpec, FrontendError, einsum_nest, parse_einsum
from .pipeline import BandPlan, ProgramReport, plan_program
from .program import Program, Statement, parse_program
from .stencil import halo_extents, normalize_accesses

__all__ = [
    "Band",
    "BandPlan",
    "EinsumSpec",
    "FrontendError",
    "Program",
    "ProgramReport",
    "Statement",
    "einsum_nest",
    "halo_extents",
    "normalize_accesses",
    "parse_einsum",
    "parse_program",
    "plan_program",
    "split_bands",
]
