"""The Hölder–Brascamp–Lieb linear program (paper eq. 3.1/3.2).

For a projective nest the infinite subgroup-indexed Brascamp–Lieb
constraint family collapses (Theorem 6.6 of [CDK+13], quoted in §3) to
one constraint per loop index::

    min  sum_j s_j
    s.t. sum_{j : loop i in supp(phi_j)} s_j  >=  1     for each loop i
         s_j >= 0

The optimum ``k_HBL`` bounds the cardinality of any cache-feasible tile
by ``M**k_HBL`` in the large-bound regime and yields the classical
communication lower bound ``prod_i L_i / M**(k_HBL - 1)``.

Section 4 needs *row-deleted* variants of the same LP — the HBL LP of a
"slice" where the loops in a set ``Q`` are held fixed — which
:func:`build_hbl_lp` supports through the ``exclude`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from .loopnest import LoopNest
from .lp import LinearProgram, SolveReport

__all__ = ["HBLSolution", "build_hbl_lp", "solve_hbl", "svar"]


def svar(j: int, nest: LoopNest) -> str:
    """LP variable name for the HBL exponent of array ``j``."""
    return f"s[{nest.arrays[j].name}]"


@dataclass(frozen=True)
class HBLSolution:
    """Solution of (a row-deleted variant of) the HBL LP.

    Attributes
    ----------
    nest:
        The analysed loop nest.
    excluded:
        Loop positions whose constraint rows were deleted (the paper's
        set ``Q`` of small loops; empty for the classic §3 LP).
    s:
        Optimal exponents, one per array, in nest array order.
    k:
        The optimum ``sum_j s_j`` — the tile-size exponent.
    """

    nest: LoopNest
    excluded: tuple[int, ...]
    s: tuple[Fraction, ...]
    k: Fraction

    def tile_size_bound(self, cache_words: int) -> float:
        """``M**k`` — the §3 upper bound on tile cardinality."""
        from ..util.rationals import pow_fraction

        return pow_fraction(cache_words, self.k)

    def communication_lower_bound(self, cache_words: int) -> float:
        """``prod_i L_i * M**(1 - k)`` — the §3 communication bound.

        Only meaningful for the full LP (``excluded == ()``) in the
        large-bound regime; §4's machinery supersedes it otherwise.
        """
        from ..util.rationals import pow_fraction

        return self.nest.num_operations * pow_fraction(cache_words, Fraction(1) - self.k)

    def row_sum(self, loop: int) -> Fraction:
        """``sum_{j in R_loop} s_j`` — the quantity Theorem 2 compares to 1."""
        return sum(
            (self.s[j] for j in self.nest.arrays_containing(loop)),
            start=Fraction(0),
        )


def build_hbl_lp(nest: LoopNest, exclude: Iterable[int] = ()) -> LinearProgram:
    """Construct the (row-deleted) HBL LP for ``nest``.

    ``exclude`` lists loop positions whose covering constraints are
    dropped — the paper's deletion of the rows indexed by ``Q`` from
    the constraint matrix of eq. 3.2 (see eq. 4.7 and eq. 5.3).
    """
    excluded = set(exclude)
    bad = [i for i in excluded if not 0 <= i < nest.depth]
    if bad:
        raise ValueError(f"excluded loop positions {bad} out of range for depth {nest.depth}")
    lp = LinearProgram(sense="min")
    for j in range(nest.num_arrays):
        lp.add_variable(svar(j, nest), lo=0)
    for i in range(nest.depth):
        if i in excluded:
            continue
        covering = nest.arrays_containing(i)
        # Non-empty by the LoopNest invariant that every loop appears in
        # at least one support.
        lp.add_constraint(
            f"cover[{nest.loops[i]}]",
            {svar(j, nest): 1 for j in covering},
            ">=",
            1,
        )
    lp.set_objective({svar(j, nest): 1 for j in range(nest.num_arrays)})
    return lp


def solve_hbl(
    nest: LoopNest, exclude: Iterable[int] = (), backend: str = "exact"
) -> HBLSolution:
    """Solve the (row-deleted) HBL LP exactly and package the result.

    With all rows deleted the LP is unconstrained and the optimum is the
    zero vector (``k = 0``), matching the degenerate slice case.
    """
    excluded = tuple(sorted(set(exclude)))
    lp = build_hbl_lp(nest, excluded)
    report: SolveReport = lp.solve(backend=backend)
    if not report.is_optimal:  # pragma: no cover - the HBL LP is always feasible/bounded
        raise RuntimeError(f"HBL LP unexpectedly {report.status} for {nest.name}")
    s = tuple(report.values[svar(j, nest)] for j in range(nest.num_arrays))
    return HBLSolution(nest=nest, excluded=excluded, s=s, k=report.objective)
