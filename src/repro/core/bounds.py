"""Arbitrary-bound communication lower bounds (paper §4, Theorem 2).

Theorem 2 gives, for every subset ``Q`` of loops treated as *small* and
every ``s_hat`` feasible for the row-deleted HBL LP, a tile-size upper
bound ``M**k`` with::

    k = sum_j s_hat_j + sum_{i in Q, rowsum_i <= 1} beta_i * (1 - rowsum_i)
    rowsum_i = sum_{j in R_i} s_hat_j,   beta_i = log_M L_i

Minimising ``k`` over the feasible ``s_hat`` for a fixed ``Q`` is itself
a linear program (introduce ``zeta_i >= max(0, 1 - rowsum_i)``); that LP
is exactly the dual (eq. 5.5/5.6) of the tiling LP restricted to ``Q``.
Two structural facts implemented and tested here:

* **Monotonicity** — enlarging ``Q`` replaces hard covering rows by
  penalty terms that vanish wherever the row was satisfied, so
  ``k_LP(Q)`` is non-increasing in ``Q`` and the strongest bound is
  attained at ``Q = all loops``.
* **Theorem 3** — ``k_LP(all loops)`` equals the optimum of the tiling
  LP (5.1); see :mod:`repro.core.duality`.

The module also packages the §6-style *communication* bounds derived
from the tile-size exponent, including the rigorous Hong–Kung phase
bound and the read-once/write-once footprint floor that repairs the
§6.3 small-problem caveat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..util.rationals import pow_fraction
from ..util.subsets import all_subsets
from .hbl import HBLSolution, solve_hbl, svar
from .loopnest import LoopNest
from .lp import LinearProgram

__all__ = [
    "subset_exponent",
    "subset_exponent_literal",
    "subset_scan",
    "tile_exponent",
    "CommunicationLowerBound",
    "communication_lower_bound",
    "lower_bound_from_k_hat",
]


def _zvar(i: int, nest: LoopNest) -> str:
    return f"zeta[{nest.loops[i]}]"


def build_subset_lp(
    nest: LoopNest, betas: Sequence[Fraction], Q: Iterable[int]
) -> LinearProgram:
    """LP computing the tightest Theorem-2 exponent for small-set ``Q``.

    ``min  sum_j s_j + sum_{i in Q} beta_i zeta_i`` subject to
    ``zeta_i + rowsum_i >= 1`` for ``i in Q`` and ``rowsum_i >= 1`` for
    ``i not in Q`` — i.e. the dual (5.5/5.6) with the β-weighted columns
    restricted to ``Q``.
    """
    Qset = set(Q)
    bad = [i for i in Qset if not 0 <= i < nest.depth]
    if bad:
        raise ValueError(f"loop positions {bad} out of range")
    lp = LinearProgram(sense="min")
    for j in range(nest.num_arrays):
        lp.add_variable(svar(j, nest), lo=0)
    for i in sorted(Qset):
        lp.add_variable(_zvar(i, nest), lo=0)
    objective: dict[str, Fraction] = {svar(j, nest): Fraction(1) for j in range(nest.num_arrays)}
    for i in sorted(Qset):
        objective[_zvar(i, nest)] = Fraction(betas[i])
    lp.set_objective(objective)
    for i in range(nest.depth):
        coeffs = {svar(j, nest): 1 for j in nest.arrays_containing(i)}
        if i in Qset:
            coeffs[_zvar(i, nest)] = 1
        lp.add_constraint(f"cover[{nest.loops[i]}]", coeffs, ">=", 1)
    return lp


def subset_exponent(
    nest: LoopNest,
    cache_words: int,
    Q: Iterable[int],
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> Fraction:
    """Tightest Theorem-2 tile-size exponent for the small-set ``Q``."""
    if betas is None:
        betas = nest.betas(cache_words)
    report = build_subset_lp(nest, betas, Q).solve(backend=backend)
    if not report.is_optimal:  # pragma: no cover - always feasible & bounded
        raise RuntimeError(f"subset LP unexpectedly {report.status}")
    return report.objective


def subset_exponent_literal(
    nest: LoopNest,
    cache_words: int,
    Q: Iterable[int],
    betas: Sequence[Fraction] | None = None,
) -> tuple[Fraction, HBLSolution]:
    """Paper-literal Theorem-2 evaluation for ``Q``.

    Solves the *row-deleted* HBL LP (min ``sum s_hat``), then plugs the
    returned vertex into the Theorem-2 expression.  This matches the
    paper's statement ("where ``s_hat_{Q,i}`` is the solution to the HBL
    LP with the rows indexed by elements of Q removed") but depends on
    which optimal vertex the solver returns; :func:`subset_exponent` is
    the authoritative (tightest) value.  Returns ``(k, hbl_solution)``.
    """
    if betas is None:
        betas = nest.betas(cache_words)
    Qset = sorted(set(Q))
    sliced = solve_hbl(nest, exclude=Qset)
    k = sliced.k
    for i in Qset:
        rowsum = sliced.row_sum(i)
        if rowsum <= 1:
            k += Fraction(betas[i]) * (1 - rowsum)
    return k, sliced


def subset_scan(
    nest: LoopNest,
    cache_words: int,
    betas: Sequence[Fraction] | None = None,
) -> dict[tuple[int, ...], Fraction]:
    """Theorem-2 exponent for *every* subset ``Q`` (2^d LP solves).

    Exponential in ``d`` — intended for analysis, benchmarking, and the
    monotonicity property tests; :func:`tile_exponent` gives the final
    answer with a single LP.
    """
    if betas is None:
        betas = nest.betas(cache_words)
    return {
        Q: subset_exponent(nest, cache_words, Q, betas=betas)
        for Q in all_subsets(nest.depth)
    }


def tile_exponent(
    nest: LoopNest,
    cache_words: int,
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> Fraction:
    """The strongest (smallest) Theorem-2 exponent ``k_hat``.

    Equal to ``subset_exponent`` at ``Q = range(d)`` by monotonicity,
    and to the tiling-LP optimum by Theorem 3.
    """
    return subset_exponent(nest, cache_words, range(nest.depth), betas=betas, backend=backend)


@dataclass(frozen=True)
class CommunicationLowerBound:
    """All components of the arbitrary-bound communication lower bound.

    Attributes
    ----------
    nest, cache_words:
        Problem instance.
    k_hat:
        Optimal tile-size exponent (Theorem 2/3), ``log_M`` of the max
        feasible tile cardinality.
    tile_size:
        ``M ** k_hat`` (float; exact when representable).
    hbl_words:
        The paper's headline expression ``prod L_i * M**(1 - k_hat)``.
        §6.3's caveat: when the whole problem fits in cache this
        evaluates to ``M`` and can *overestimate* the true cost — use
        :attr:`value` for a bound that is always valid.
    hong_kung_words:
        Rigorous phase-argument bound
        ``max(0, (ceil(prod L / M**k_hat) - 1) * M)``.
    footprint_words:
        Read-once/write-once floor: every distinct array element moves
        at least once, so traffic >= total footprint.
    """

    nest: LoopNest
    cache_words: int
    k_hat: Fraction
    tile_size: float
    hbl_words: float
    hong_kung_words: int
    footprint_words: int

    @property
    def value(self) -> float:
        """The best always-valid lower bound among the components."""
        return max(float(self.hong_kung_words), float(self.footprint_words))

    @property
    def paper_value(self) -> float:
        """§6-style expression (max of HBL term and footprint floor).

        Matches the closed forms of §6.1 (``max(L1L2L3/sqrt(M), L1L2,
        L2L3, L1L3)``) on their validity domain; can exceed the true
        cost only in the everything-fits-in-cache regime flagged by
        :meth:`fits_in_cache`.
        """
        return max(self.hbl_words, float(self.footprint_words))

    def fits_in_cache(self) -> bool:
        """§6.3 caveat predicate: does the entire footprint fit in cache?"""
        return self.footprint_words <= self.cache_words

    def summary(self) -> str:
        return (
            f"{self.nest.name}: M={self.cache_words} k_hat={self.k_hat} "
            f"tile<= {self.tile_size:.6g} words>= {self.value:.6g} "
            f"(hbl {self.hbl_words:.6g}, hong-kung {self.hong_kung_words}, "
            f"footprint {self.footprint_words})"
        )


def lower_bound_from_k_hat(
    nest: LoopNest, cache_words: int, k_hat: Fraction
) -> CommunicationLowerBound:
    """Assemble the full lower bound from a known optimal exponent.

    Pure arithmetic — no LP solve.  Used by
    :func:`communication_lower_bound` after its LP solve, and by the
    plan cache (:mod:`repro.plan`), which obtains ``k_hat`` from a
    cached multiparametric value function instead.
    """
    tile_size = pow_fraction(cache_words, k_hat)
    ops = nest.num_operations
    hbl_words = ops * pow_fraction(cache_words, Fraction(1) - k_hat)
    num_tiles = max(1, math.ceil(ops / tile_size - 1e-12))
    hong_kung = max(0, (num_tiles - 1) * cache_words)
    return CommunicationLowerBound(
        nest=nest,
        cache_words=cache_words,
        k_hat=k_hat,
        tile_size=tile_size,
        hbl_words=hbl_words,
        hong_kung_words=hong_kung,
        footprint_words=nest.total_footprint(),
    )


def communication_lower_bound(
    nest: LoopNest,
    cache_words: int,
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> CommunicationLowerBound:
    """Compute the full arbitrary-bound lower bound for ``nest``."""
    if cache_words < 1:
        raise ValueError("cache_words must be >= 1")
    k_hat = tile_exponent(nest, cache_words, betas=betas, backend=backend)
    return lower_bound_from_k_hat(nest, cache_words, k_hat)
