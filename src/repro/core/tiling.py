"""Optimal tiling construction (paper §5, LP 5.1 and Theorem 3).

The bound-constrained tiling LP in log-space (``lambda_i = log_M b_i``,
``beta_i = log_M L_i``)::

    max  sum_i lambda_i
    s.t. sum_{i in supp(phi_j)} lambda_i <= 1      for each array j
         0 <= lambda_i <= beta_i                   for each loop i

Theorem 3: its optimum equals the strongest Theorem-2 exponent, so the
rectangle with sides ``b_i = M**lambda_i`` attains the lower bound —
the bound is tight and the optimal tile is a rectangle.

Real machines need integer block sizes.  :func:`solve_tiling` therefore
follows the exact LP solve with an integer *round-and-grow* repair:
clamp each side to ``min(L_i, max(1, round(M**lambda_i)))``, shrink if
the rounded start overshoots the budget, then greedily binary-search
each side upward while every per-array footprint still fits.  The
result is a maximal feasible tile anchored at the analytic optimum —
within a ``2**d`` factor of the fractional volume, the usual
constant-factor slack of the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from math import prod
from typing import Sequence

from ..util.rationals import pow_fraction
from .loopnest import LoopNest
from .lp import LinearProgram

__all__ = [
    "TileShape",
    "TilingSolution",
    "build_tiling_lp",
    "clamp_block",
    "integer_repair",
    "solve_tiling",
    "lvar",
]


def clamp_block(x: float, bound: int) -> int:
    """Legal block size nearest ``x``: ``min(bound, max(1, round(x)))``.

    The one shared clamp for turning a fractional tile extent into a
    block — never 0 (a loop bound smaller than the analytic extent must
    still yield a block), never above the loop bound.  Used by
    :func:`integer_repair` and by the autotuner's candidate generators
    (:mod:`repro.tune.space`), which must round exactly the way the
    seed does.
    """
    return min(int(bound), max(1, round(x)))

#: Memory-budget conventions (see DESIGN.md §5).
#: "per-array"  — each array's tile footprint <= M (the paper's model);
#: "aggregate"  — the *sum* of tile footprints <= M (practical caches).
BUDGETS = ("per-array", "aggregate")


def lvar(i: int, nest: LoopNest) -> str:
    """LP variable name for ``lambda_i = log_M b_i``."""
    return f"lambda[{nest.loops[i]}]"


@dataclass(frozen=True)
class TileShape:
    """An integer rectangular tile ``b_1 x ... x b_d`` for a nest.

    Feasibility (w.r.t. a cache of ``M`` words) is checked against a
    budget convention; see :data:`BUDGETS`.
    """

    nest: LoopNest
    blocks: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.blocks) != self.nest.depth:
            raise ValueError("block count must equal nest depth")
        for b, L in zip(self.blocks, self.nest.bounds):
            if not 1 <= b <= L:
                raise ValueError(f"block sizes must satisfy 1 <= b <= L, got {self.blocks}")

    @property
    def volume(self) -> int:
        """Tile cardinality ``prod_i b_i`` (operations per tile)."""
        return prod(self.blocks)

    def footprint(self, j: int) -> int:
        """``|phi_j(tile)| = prod_{i in supp(phi_j)} b_i`` (paper §3)."""
        return self.footprints()[j]

    def footprints(self) -> tuple[int, ...]:
        """Per-array footprints, computed once per (frozen) shape.

        Feasibility probes evaluate footprints repeatedly (binary
        searches in :func:`solve_tiling`, enumeration oracles), so the
        tuple is memoised on first use — the dataclass is frozen, so the
        value can never go stale.
        """
        cached = self.__dict__.get("_footprints")
        if cached is None:
            cached = tuple(
                prod(self.blocks[i] for i in arr.support) for arr in self.nest.arrays
            )
            object.__setattr__(self, "_footprints", cached)
        return cached

    def total_footprint(self) -> int:
        return sum(self.footprints())

    def is_feasible(self, cache_words: int, budget: str = "per-array") -> bool:
        if budget == "per-array":
            return all(f <= cache_words for f in self.footprints())
        if budget == "aggregate":
            return self.total_footprint() <= cache_words
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")

    def grid_extents(self) -> tuple[int, ...]:
        """Number of tiles along each loop (``ceil(L_i / b_i)``)."""
        return tuple(-(-L // b) for L, b in zip(self.nest.bounds, self.blocks))

    @property
    def num_tiles(self) -> int:
        return prod(self.grid_extents())

    def describe(self) -> str:
        dims = " x ".join(str(b) for b in self.blocks)
        return f"tile[{dims}] volume={self.volume} tiles={self.num_tiles}"


@dataclass(frozen=True)
class TilingSolution:
    """Exact LP solution plus the repaired integer tile.

    Attributes
    ----------
    nest, cache_words, budget:
        Problem instance and budget convention used for the integer
        repair (the LP itself always uses the paper's per-array model
        unless ``budget="aggregate"`` was requested, in which case the
        LP is solved with an effective ``M' = M / n`` so the analytic
        blocks already respect the aggregate budget up to constants).
    lambdas:
        Exact LP vertex (``lambda_i`` as Fractions).
    exponent:
        LP optimum ``sum_i lambda_i = k_hat`` (Theorem 3).
    fractional_blocks:
        ``M**lambda_i`` before integer repair.
    tile:
        Feasible integer :class:`TileShape` after round-and-grow.
    """

    nest: LoopNest
    cache_words: int
    budget: str
    lambdas: tuple[Fraction, ...]
    exponent: Fraction
    fractional_blocks: tuple[float, ...]
    tile: TileShape

    def tile_size_bound(self) -> float:
        """``M**k_hat``: the tile-cardinality bound this tiling attains."""
        return pow_fraction(self.cache_words, self.exponent)

    def summary(self) -> str:
        frac = ", ".join(f"{b:.4g}" for b in self.fractional_blocks)
        return (
            f"{self.nest.name}: k_hat={self.exponent} fractional=({frac}) "
            f"integer={self.tile.describe()}"
        )


def build_tiling_lp(
    nest: LoopNest, cache_words: int, betas: Sequence[Fraction] | None = None
) -> LinearProgram:
    """Construct LP (5.1) for ``nest`` with cache size ``cache_words``."""
    if betas is None:
        betas = nest.betas(cache_words)
    if len(betas) != nest.depth:
        raise ValueError("betas length must equal nest depth")
    lp = LinearProgram(sense="max")
    for i in range(nest.depth):
        lp.add_variable(lvar(i, nest), lo=0, hi=Fraction(betas[i]))
    for j, arr in enumerate(nest.arrays):
        if not arr.support:
            continue  # scalar access: footprint 1, no constraint
        lp.add_constraint(
            f"cap[{arr.name}]",
            {lvar(i, nest): 1 for i in arr.support},
            "<=",
            1,
        )
    lp.set_objective({lvar(i, nest): 1 for i in range(nest.depth)})
    return lp


def _max_block(
    nest: LoopNest,
    blocks: list[int],
    i: int,
    cache_words: int,
    budget: str,
) -> int:
    """Largest feasible value for ``blocks[i]`` holding the others fixed.

    Footprints are linear in the probed side, so each probe is an O(n)
    multiply against per-array partial products (all other sides fixed)
    instead of a fresh :class:`TileShape` product evaluation.
    """
    lo, hi = blocks[i], nest.bounds[i]
    partial = [
        prod(blocks[k] for k in arr.support if k != i) for arr in nest.arrays
    ]
    scaled = [i in arr.support for arr in nest.arrays]

    if budget == "per-array":

        def ok(value: int) -> bool:
            return all(
                p * (value if s else 1) <= cache_words
                for p, s in zip(partial, scaled)
            )

    else:  # aggregate

        def ok(value: int) -> bool:
            return (
                sum(p * (value if s else 1) for p, s in zip(partial, scaled))
                <= cache_words
            )

    if not ok(lo):  # pragma: no cover - callers start from a feasible point
        raise AssertionError("starting block infeasible")
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def integer_repair(
    nest: LoopNest,
    fractional: Sequence[float],
    cache_words: int,
    budget: str = "per-array",
    floors: Sequence[int] | None = None,
) -> TileShape:
    """Round-and-grow an LP-optimal fractional tile into a feasible integer one.

    Round each side with the clamp ``min(L, max(1, round(f)))`` — a side
    never rounds to 0, even when a loop bound is smaller than the
    analytic tile extent (skewed-bound nests hand us ``f > L``
    routinely, and extents below 1 must still yield a unit block) — then
    grow each side to the largest value that keeps the tile within
    budget, iterating to a fixpoint.  Rounding to nearest can round
    *up* (fractional part above one half, or a tie landing on the even
    integer above) and overshoot the budget, and defensive callers may
    pass an outright infeasible fractional tile; a shrink pre-pass
    halves the largest sides until the start fits, so the returned tile
    is feasible unconditionally.
    Shared by :func:`solve_tiling` and the plan cache (:mod:`repro.plan`),
    which substitutes cached parametric exponents instead of re-solving
    the LP.

    ``floors`` optionally lower-bounds every side (default: the unit
    tile) — the multi-level repair
    (:func:`repro.core.integer.nested_integer_repair`) passes the
    previous hierarchy level's blocks, which are feasible here by
    monotonicity (they fit a smaller capacity under the same budget), so
    the shrink pre-pass can always retreat to them.  With non-trivial
    floors the only infeasible-return case is the floors themselves
    busting the budget, exactly as the unit tile can.
    """
    lo = (
        tuple(int(b) for b in floors)
        if floors is not None
        else tuple(1 for _ in range(nest.depth))
    )
    blocks = [max(f_lo, clamp_block(f, L)) for f, L, f_lo in zip(fractional, nest.bounds, lo)]
    while not TileShape(nest=nest, blocks=tuple(blocks)).is_feasible(cache_words, budget):
        shrinkable = [k for k in range(nest.depth) if blocks[k] > lo[k]]
        if not shrinkable:
            # Even the floor tile busts the budget (a unit tile under
            # "aggregate" with a cache smaller than one word per array);
            # return it as the minimum.
            return TileShape(nest=nest, blocks=tuple(blocks))
        i = max(shrinkable, key=lambda k: blocks[k])
        blocks[i] = max(lo[i], blocks[i] // 2)
    changed = True
    while changed:
        changed = False
        for i in range(nest.depth):
            best = _max_block(nest, blocks, i, cache_words, budget)
            if best > blocks[i]:
                blocks[i] = best
                changed = True
    return TileShape(nest=nest, blocks=tuple(blocks))


def solve_tiling(
    nest: LoopNest,
    cache_words: int,
    budget: str = "per-array",
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> TilingSolution:
    """Solve LP (5.1) and return the exact vertex plus a repaired tile.

    Parameters
    ----------
    budget:
        ``"per-array"`` reproduces the paper's model exactly.
        ``"aggregate"`` solves the LP with an effective cache of
        ``M // n`` so the resulting tile satisfies the aggregate budget
        (sum of footprints <= M) — the convention an executable kernel
        needs; the exponent reported is still w.r.t. the effective
        cache (log-space constants shift by ``log_M n``).
    """
    if cache_words < 1:
        raise ValueError("cache_words must be >= 1")
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    if budget == "aggregate" and cache_words < nest.num_arrays:
        # Even the unit tile holds one word per array simultaneously; a
        # cache smaller than n words cannot satisfy the aggregate budget.
        raise ValueError(
            f"aggregate budget needs cache_words >= {nest.num_arrays} "
            f"(one word per array), got {cache_words}"
        )
    effective_m = cache_words if budget == "per-array" else max(1, cache_words // nest.num_arrays)
    if effective_m < 2:
        # Degenerate cache: every array footprint must be 1, so the only
        # rectangle is the unit tile (log base M is undefined at M=1).
        return TilingSolution(
            nest=nest,
            cache_words=cache_words,
            budget=budget,
            lambdas=tuple(Fraction(0) for _ in range(nest.depth)),
            exponent=Fraction(0),
            fractional_blocks=tuple(1.0 for _ in range(nest.depth)),
            tile=TileShape(nest=nest, blocks=tuple(1 for _ in range(nest.depth))),
        )
    if betas is None:
        betas = nest.betas(effective_m)
    lp = build_tiling_lp(nest, effective_m, betas=betas)
    report = lp.solve(backend=backend)
    if not report.is_optimal:  # pragma: no cover - LP is always feasible & bounded
        raise RuntimeError(f"tiling LP unexpectedly {report.status}")
    lambdas = tuple(report.values[lvar(i, nest)] for i in range(nest.depth))
    fractional = tuple(pow_fraction(effective_m, lam) for lam in lambdas)
    tile = integer_repair(nest, fractional, cache_words, budget)
    return TilingSolution(
        nest=nest,
        cache_words=cache_words,
        budget=budget,
        lambdas=lambdas,
        exponent=report.objective,
        fractional_blocks=fractional,
        tile=tile,
    )
