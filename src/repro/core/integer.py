"""Integer tile search beyond the default round-and-grow repair.

The LP vertex is a *fractional* optimum; real block sizes are integers.
``solve_tiling`` floors and greedily grows — fast and within ``2^d`` of
optimal, but not always exactly optimal at small ``M``.  This module
provides progressively stronger searches, used by the integer-rounding
ablation (bench_integer.py) and available to users who care about the
last few percent:

* :func:`coordinate_descent_tile` — repeated per-coordinate maximal
  growth from a seed, over all ``d!`` growth orders (d is small);
* :func:`multi_seed_tile` — coordinate descent from several seeds:
  the floored LP vertex, every optimal-face vertex, and the unit tile;
* :func:`best_integer_tile` — the above, plus exhaustive search when
  the instance is small enough to afford ground truth.

All searches preserve feasibility invariantly (they only test-and-grow
feasible configurations), so any returned tile is valid for the given
budget.
"""

from __future__ import annotations

from itertools import permutations
from math import prod
from typing import Iterable, Sequence

from ..util.rationals import pow_fraction
from .alpha_family import optimal_tile_family
from .loopnest import LoopNest
from .tiling import BUDGETS, TileShape, solve_tiling

__all__ = [
    "coordinate_descent_tile",
    "multi_seed_tile",
    "best_integer_tile",
]


def _max_feasible(
    nest: LoopNest, blocks: list[int], i: int, cache_words: int, budget: str
) -> int:
    lo, hi = blocks[i], nest.bounds[i]
    while lo < hi:
        mid = (lo + hi + 1) // 2
        trial = blocks.copy()
        trial[i] = mid
        if TileShape(nest=nest, blocks=tuple(trial)).is_feasible(cache_words, budget):
            lo = mid
        else:
            hi = mid - 1
    return lo


def coordinate_descent_tile(
    nest: LoopNest,
    cache_words: int,
    seed: Sequence[int],
    budget: str = "per-array",
    orders: Iterable[Sequence[int]] | None = None,
) -> TileShape:
    """Best tile reachable from ``seed`` by per-coordinate maximal growth.

    Growth outcomes depend on which coordinate grows first; with ``d``
    small we simply try all ``d!`` orders (or the given subset) and keep
    the largest result.  The seed must be feasible.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}")
    seed_shape = TileShape(nest=nest, blocks=tuple(seed))
    if not seed_shape.is_feasible(cache_words, budget):
        raise ValueError(f"seed {tuple(seed)} infeasible for M={cache_words} ({budget})")
    if orders is None:
        orders = permutations(range(nest.depth))
    best = seed_shape
    for order in orders:
        blocks = list(seed)
        changed = True
        while changed:
            changed = False
            for i in order:
                grown = _max_feasible(nest, blocks, i, cache_words, budget)
                if grown > blocks[i]:
                    blocks[i] = grown
                    changed = True
        candidate = TileShape(nest=nest, blocks=tuple(blocks))
        if candidate.volume > best.volume:
            best = candidate
    return best


def _lp_seeds(nest: LoopNest, cache_words: int, budget: str) -> list[tuple[int, ...]]:
    """Feasible integer seeds: floored LP vertex + floored face vertices."""
    effective = cache_words if budget == "per-array" else max(2, cache_words // nest.num_arrays)
    seeds: list[tuple[int, ...]] = [tuple(1 for _ in range(nest.depth))]
    sol = solve_tiling(nest, cache_words, budget=budget)
    seeds.append(sol.tile.blocks)
    if effective >= 2:
        try:
            family = optimal_tile_family(nest, effective)
        except RuntimeError:  # pragma: no cover - defensive
            family = None
        if family is not None:
            for vertex in family.vertices:
                blocks = tuple(
                    max(1, min(L, int(pow_fraction(effective, lam) + 1e-9)))
                    for lam, L in zip(vertex, nest.bounds)
                )
                if TileShape(nest=nest, blocks=blocks).is_feasible(cache_words, budget):
                    seeds.append(blocks)
    # Deduplicate, preserve order.
    seen: set[tuple[int, ...]] = set()
    unique = []
    for s in seeds:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def multi_seed_tile(
    nest: LoopNest, cache_words: int, budget: str = "per-array"
) -> TileShape:
    """Coordinate descent from every LP-derived seed; best volume wins."""
    best: TileShape | None = None
    for seed in _lp_seeds(nest, cache_words, budget):
        candidate = coordinate_descent_tile(nest, cache_words, seed, budget=budget)
        if best is None or candidate.volume > best.volume:
            best = candidate
    assert best is not None
    return best


#: Instances with at most this many side combinations get exact search.
_EXHAUSTIVE_LIMIT = 250_000


def best_integer_tile(
    nest: LoopNest,
    cache_words: int,
    budget: str = "per-array",
    allow_exhaustive: bool = True,
) -> TileShape:
    """Strongest available integer tile.

    Uses exhaustive enumeration (guaranteed optimal) when the search
    space is small, otherwise multi-seed coordinate descent.  Always at
    least as large as ``solve_tiling``'s repaired tile.
    """
    if allow_exhaustive and prod(nest.bounds) <= _EXHAUSTIVE_LIMIT:
        from .bruteforce import best_rectangle

        res = best_rectangle(nest, cache_words, budget=budget)
        assert res.blocks is not None
        return TileShape(nest=nest, blocks=res.blocks)
    return multi_seed_tile(nest, cache_words, budget=budget)
