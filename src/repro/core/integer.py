"""Integer tile search beyond the default round-and-grow repair.

The LP vertex is a *fractional* optimum; real block sizes are integers.
``solve_tiling`` floors and greedily grows — fast and within ``2^d`` of
optimal, but not always exactly optimal at small ``M``.  This module
provides progressively stronger searches, used by the integer-rounding
ablation (bench_integer.py) and available to users who care about the
last few percent:

* :func:`coordinate_descent_tile` — repeated per-coordinate maximal
  growth from a seed, over all ``d!`` growth orders (d is small);
* :func:`multi_seed_tile` — coordinate descent from several seeds:
  the floored LP vertex, every optimal-face vertex, and the unit tile;
* :func:`best_integer_tile` — the above, plus exhaustive search when
  the instance is small enough to afford ground truth.

plus the multi-level variant of the default repair:

* :func:`nested_integer_repair` — round-and-grow one fractional tile
  *per hierarchy level*, innermost first, keeping each repaired level
  componentwise inside the next (level-l blocks never exceed
  level-(l+1) blocks), so the integer tiles realise a nested execution.

All searches preserve feasibility invariantly (they only test-and-grow
feasible configurations), so any returned tile is valid for the given
budget.
"""

from __future__ import annotations

from itertools import permutations
from math import prod
from typing import Iterable, Sequence

from ..util.rationals import pow_fraction
from .alpha_family import optimal_tile_family
from .loopnest import LoopNest
from .tiling import BUDGETS, TileShape, integer_repair, solve_tiling

__all__ = [
    "coordinate_descent_tile",
    "multi_seed_tile",
    "best_integer_tile",
    "nested_integer_repair",
]


def _max_feasible(
    nest: LoopNest, blocks: list[int], i: int, cache_words: int, budget: str
) -> int:
    lo, hi = blocks[i], nest.bounds[i]
    while lo < hi:
        mid = (lo + hi + 1) // 2
        trial = blocks.copy()
        trial[i] = mid
        if TileShape(nest=nest, blocks=tuple(trial)).is_feasible(cache_words, budget):
            lo = mid
        else:
            hi = mid - 1
    return lo


def coordinate_descent_tile(
    nest: LoopNest,
    cache_words: int,
    seed: Sequence[int],
    budget: str = "per-array",
    orders: Iterable[Sequence[int]] | None = None,
) -> TileShape:
    """Best tile reachable from ``seed`` by per-coordinate maximal growth.

    Growth outcomes depend on which coordinate grows first; with ``d``
    small we simply try all ``d!`` orders (or the given subset) and keep
    the largest result.  The seed must be feasible.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}")
    seed_shape = TileShape(nest=nest, blocks=tuple(seed))
    if not seed_shape.is_feasible(cache_words, budget):
        raise ValueError(f"seed {tuple(seed)} infeasible for M={cache_words} ({budget})")
    if orders is None:
        orders = permutations(range(nest.depth))
    best = seed_shape
    for order in orders:
        blocks = list(seed)
        changed = True
        while changed:
            changed = False
            for i in order:
                grown = _max_feasible(nest, blocks, i, cache_words, budget)
                if grown > blocks[i]:
                    blocks[i] = grown
                    changed = True
        candidate = TileShape(nest=nest, blocks=tuple(blocks))
        if candidate.volume > best.volume:
            best = candidate
    return best


def _lp_seeds(nest: LoopNest, cache_words: int, budget: str) -> list[tuple[int, ...]]:
    """Feasible integer seeds: floored LP vertex + floored face vertices."""
    effective = cache_words if budget == "per-array" else max(2, cache_words // nest.num_arrays)
    seeds: list[tuple[int, ...]] = [tuple(1 for _ in range(nest.depth))]
    sol = solve_tiling(nest, cache_words, budget=budget)
    seeds.append(sol.tile.blocks)
    if effective >= 2:
        try:
            family = optimal_tile_family(nest, effective)
        except RuntimeError:  # pragma: no cover - defensive
            family = None
        if family is not None:
            for vertex in family.vertices:
                blocks = tuple(
                    max(1, min(L, int(pow_fraction(effective, lam) + 1e-9)))
                    for lam, L in zip(vertex, nest.bounds)
                )
                if TileShape(nest=nest, blocks=blocks).is_feasible(cache_words, budget):
                    seeds.append(blocks)
    # Deduplicate, preserve order.
    seen: set[tuple[int, ...]] = set()
    unique = []
    for s in seeds:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def multi_seed_tile(
    nest: LoopNest, cache_words: int, budget: str = "per-array"
) -> TileShape:
    """Coordinate descent from every LP-derived seed; best volume wins."""
    best: TileShape | None = None
    for seed in _lp_seeds(nest, cache_words, budget):
        candidate = coordinate_descent_tile(nest, cache_words, seed, budget=budget)
        if best is None or candidate.volume > best.volume:
            best = candidate
    assert best is not None
    return best


#: Instances with at most this many side combinations get exact search.
_EXHAUSTIVE_LIMIT = 250_000


def best_integer_tile(
    nest: LoopNest,
    cache_words: int,
    budget: str = "per-array",
    allow_exhaustive: bool = True,
) -> TileShape:
    """Strongest available integer tile.

    Uses exhaustive enumeration (guaranteed optimal) when the search
    space is small, otherwise multi-seed coordinate descent.  Always at
    least as large as ``solve_tiling``'s repaired tile.
    """
    if allow_exhaustive and prod(nest.bounds) <= _EXHAUSTIVE_LIMIT:
        from .bruteforce import best_rectangle

        res = best_rectangle(nest, cache_words, budget=budget)
        assert res.blocks is not None
        return TileShape(nest=nest, blocks=res.blocks)
    return multi_seed_tile(nest, cache_words, budget=budget)


def nested_integer_repair(
    nest: LoopNest,
    fractional_levels: Sequence[Sequence[float]],
    capacities: Sequence[int],
    budget: str = "per-array",
    floors: Sequence[int] | None = None,
) -> tuple[TileShape, ...]:
    """Round-and-grow one fractional tile per level, preserving nesting.

    ``fractional_levels[l]`` is level ``l``'s LP-optimal fractional tile
    and ``capacities[l]`` its budget (innermost first, non-decreasing).
    Each level is :func:`~repro.core.tiling.integer_repair` — the one
    shared implementation — floored at the previous level's repaired
    blocks, so the returned tiles satisfy the hierarchy invariant
    ``tiles[l].blocks[i] <= tiles[l+1].blocks[i]`` for every loop ``i``
    — repaired level-l blocks stay inside repaired level-(l+1) blocks,
    which is what lets one nested execution realise every level's
    blocking at once.  Every level is feasible because the previous
    level's blocks fit a smaller capacity under the same budget.

    ``floors`` optionally seeds the innermost level's lower bounds (used
    by the level-by-level LP driver in :mod:`repro.core.hierarchy`);
    the default is the unit tile, making the single-level call
    identical to ``integer_repair`` by construction.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    if len(fractional_levels) != len(capacities):
        raise ValueError("need one fractional tile per capacity")
    if any(a > b for a, b in zip(capacities, capacities[1:])):
        raise ValueError(f"capacities must be non-decreasing, got {tuple(capacities)}")
    current = tuple(int(b) for b in floors) if floors is not None else tuple(
        1 for _ in range(nest.depth)
    )
    tiles: list[TileShape] = []
    for fractional, capacity in zip(fractional_levels, capacities):
        tile = integer_repair(nest, fractional, int(capacity), budget, floors=current)
        tiles.append(tile)
        current = tile.blocks
    return tuple(tiles)
