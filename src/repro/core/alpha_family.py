"""Families of optimal tilings (the §6.1 alpha-parameterisation).

The tiling LP (5.1) frequently has a degenerate optimum: a whole face
of the feasible polytope attains the optimal exponent.  §6.1 exhibits
this for matmul with a small ``L3``: every convex combination::

    lambda_1 = a/2 + (1-a)(1-beta_3)
    lambda_2 = a/2 + (1-a) beta_3
    lambda_3 = beta_3                     for a in [0, 1]

is optimal, letting implementers pick tiles aligned to cache lines or
vector widths *without* sacrificing communication optimality.

This module enumerates the optimal face exactly: every vertex of the
feasible polytope attaining the LP optimum (rational basis
enumeration), plus an interpolation helper producing arbitrary convex
combinations — the general-``d`` version of the paper's alpha family.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Sequence

from ..util.linalg import SingularMatrixError, solve_square
from ..util.rationals import pow_fraction
from .loopnest import LoopNest
from .tiling import TileShape, build_tiling_lp

__all__ = ["OptimalTileFamily", "optimal_tile_family"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class OptimalTileFamily:
    """The optimal face of the tiling LP, as its vertex set.

    Every point of ``conv(vertices)`` is an optimal log-space tile
    shape; :meth:`interpolate` materialises one.  For §6.1's matmul the
    two extreme members are ``(1 - b3, b3, b3)`` and
    ``(1/2, 1/2, b3)`` and :meth:`interpolate` with weights
    ``(1-a, a)`` reproduces the paper's family exactly.
    """

    nest: LoopNest
    cache_words: int
    betas: tuple[Fraction, ...]
    exponent: Fraction
    vertices: tuple[tuple[Fraction, ...], ...]

    @property
    def is_unique(self) -> bool:
        """Whether the LP optimum is a single vertex (no freedom)."""
        return len(self.vertices) == 1

    def interpolate(self, weights: Sequence[Fraction]) -> tuple[Fraction, ...]:
        """Convex combination of the optimal vertices (exact).

        ``weights`` must be nonnegative and sum to 1; the result is an
        optimal log-space shape ``lambda``.
        """
        w = [Fraction(x) for x in weights]
        if len(w) != len(self.vertices):
            raise ValueError(f"need {len(self.vertices)} weights, got {len(w)}")
        if any(x < 0 for x in w) or sum(w) != 1:
            raise ValueError("weights must be nonnegative and sum to 1")
        d = self.nest.depth
        out = [_ZERO] * d
        for weight, vertex in zip(w, self.vertices):
            for i in range(d):
                out[i] += weight * vertex[i]
        return tuple(out)

    def tile_at(self, weights: Sequence[Fraction]) -> TileShape:
        """Integer tile (floored) at a convex combination of the face."""
        lambdas = self.interpolate(weights)
        blocks = tuple(
            max(1, min(L, int(pow_fraction(self.cache_words, lam))))
            for lam, L in zip(lambdas, self.nest.bounds)
        )
        return TileShape(nest=self.nest, blocks=blocks)

    def contains(self, lambdas: Sequence[Fraction], tol: Fraction = _ZERO) -> bool:
        """Whether a log-space shape is feasible and attains the optimum."""
        lam = [Fraction(x) for x in lambdas]
        if len(lam) != self.nest.depth:
            return False
        if any(x < -tol for x in lam):
            return False
        if any(x > b + tol for x, b in zip(lam, self.betas)):
            return False
        for arr in self.nest.arrays:
            if sum((lam[i] for i in arr.support), start=_ZERO) > 1 + tol:
                return False
        return sum(lam, start=_ZERO) == self.exponent

    def describe(self) -> str:
        verts = "; ".join(
            "(" + ", ".join(str(v) for v in vertex) + ")" for vertex in self.vertices
        )
        return f"{self.nest.name}: k_hat={self.exponent}, optimal vertices: {verts}"


def optimal_tile_family(
    nest: LoopNest,
    cache_words: int,
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> OptimalTileFamily:
    """Enumerate every vertex of the tiling LP's optimal face.

    The LP lives in dimension ``d`` with constraint set: ``n`` capacity
    rows, ``d`` upper bounds ``lambda_i <= beta_i`` and ``d``
    nonnegativity rows.  A vertex of the optimal face is a feasible
    point with ``d`` linearly independent tight rows whose objective
    equals the LP optimum; we enumerate all d-subsets exactly
    (``C(n + 2d, d)`` candidates — trivial for real nests).
    """
    if betas is None:
        betas = nest.betas(cache_words)
    betas = tuple(Fraction(b) for b in betas)
    lp = build_tiling_lp(nest, cache_words, betas=betas)
    report = lp.solve(backend=backend)
    if not report.is_optimal:  # pragma: no cover - always feasible/bounded
        raise RuntimeError(f"tiling LP unexpectedly {report.status}")
    optimum: Fraction = report.objective
    d = nest.depth

    rows: list[tuple[list[Fraction], Fraction]] = []  # a.lambda == rhs when tight
    for arr in nest.arrays:
        if not arr.support:
            continue
        row = [_ZERO] * d
        for i in arr.support:
            row[i] = _ONE
        rows.append((row, _ONE))
    for i in range(d):
        row = [_ZERO] * d
        row[i] = _ONE
        rows.append((row, betas[i]))
    for i in range(d):
        row = [_ZERO] * d
        row[i] = _ONE
        rows.append((row, _ZERO))

    vertices: list[tuple[Fraction, ...]] = []
    seen: set[tuple[Fraction, ...]] = set()
    for combo in combinations(range(len(rows)), d):
        A = [rows[idx][0] for idx in combo]
        b = [rows[idx][1] for idx in combo]
        try:
            x = solve_square(A, b)
        except SingularMatrixError:
            continue
        key = tuple(x)
        if key in seen:
            continue
        if sum(x, start=_ZERO) != optimum:
            continue
        # Full feasibility.
        if any(v < 0 for v in x) or any(v > bb for v, bb in zip(x, betas)):
            continue
        feasible = True
        for arr in nest.arrays:
            if sum((x[i] for i in arr.support), start=_ZERO) > 1:
                feasible = False
                break
        if not feasible:
            continue
        seen.add(key)
        vertices.append(key)

    vertices.sort()
    if not vertices:  # pragma: no cover - the LP vertex itself always qualifies
        raise RuntimeError("no optimal vertices found; enumeration bug")
    return OptimalTileFamily(
        nest=nest,
        cache_words=cache_words,
        betas=betas,
        exponent=optimum,
        vertices=tuple(vertices),
    )
