"""Core machinery: the paper's LPs, bounds, tilings, and exact validators."""

from .alpha_family import OptimalTileFamily, optimal_tile_family
from .bounds import (
    CommunicationLowerBound,
    communication_lower_bound,
    lower_bound_from_k_hat,
    subset_exponent,
    subset_exponent_literal,
    subset_scan,
    tile_exponent,
)
from .bruteforce import best_rectangle, best_subset
from .canonical import (
    CanonicalForm,
    Canonicalization,
    CanonicalizationError,
    canonical_key,
    canonicalize,
)
from .duality import Theorem3Certificate, build_dual_lp, theorem3_certificate
from .fraction_lp import LPError, LPSolution, solve_lp
from .hbl import HBLSolution, build_hbl_lp, solve_hbl
from .hierarchy import (
    HierarchicalTiling,
    LevelTiling,
    MemoryHierarchy,
    solve_hierarchical_tiling,
)
from .integer import best_integer_tile, coordinate_descent_tile, multi_seed_tile
from .loopnest import ArrayRef, LoopNest, LoopNestError
from .lp import Constraint, LinearProgram, SolveReport
from .mplp import AffinePiece, PiecewiseValueFunction, parametric_tile_exponent
from .parser import ParseError, parse_nest
from .tiling import TileShape, TilingSolution, build_tiling_lp, integer_repair, solve_tiling
from .verify import check_dual_certificate, check_tile, verify_analysis

__all__ = [
    "ArrayRef",
    "LoopNest",
    "LoopNestError",
    "ParseError",
    "parse_nest",
    "LinearProgram",
    "Constraint",
    "SolveReport",
    "LPError",
    "LPSolution",
    "solve_lp",
    "HBLSolution",
    "build_hbl_lp",
    "solve_hbl",
    "CommunicationLowerBound",
    "communication_lower_bound",
    "lower_bound_from_k_hat",
    "CanonicalForm",
    "Canonicalization",
    "CanonicalizationError",
    "canonicalize",
    "canonical_key",
    "subset_exponent",
    "subset_exponent_literal",
    "subset_scan",
    "tile_exponent",
    "TileShape",
    "TilingSolution",
    "build_tiling_lp",
    "integer_repair",
    "solve_tiling",
    "Theorem3Certificate",
    "build_dual_lp",
    "theorem3_certificate",
    "OptimalTileFamily",
    "optimal_tile_family",
    "AffinePiece",
    "PiecewiseValueFunction",
    "parametric_tile_exponent",
    "best_rectangle",
    "best_subset",
    "MemoryHierarchy",
    "LevelTiling",
    "HierarchicalTiling",
    "solve_hierarchical_tiling",
    "best_integer_tile",
    "coordinate_descent_tile",
    "multi_seed_tile",
    "check_tile",
    "check_dual_certificate",
    "verify_analysis",
]
