"""Intermediate representation of projective nested-loop programs.

The paper (eq. 2.1) studies programs of the form::

    for x_1 in [L_1], ..., for x_d in [L_d]:
        operate on A_1[phi_1(x)], ..., A_n[phi_n(x)]

restricted to the *projective* case: each index map ``phi_j`` selects a
subset of the loop indices (e.g. ``phi(x1..x5) = (x1, x4)``).  A
projective map is therefore fully described by its *support* — the set
of loop positions it keeps — which is how :class:`ArrayRef` stores it.

The IR is deliberately small: a :class:`LoopNest` is loop names, loop
bounds, and one :class:`ArrayRef` per distinct array access.  Everything
else in the library (HBL LP, Theorem-2 bounds, tiling LP, simulators,
kernels) consumes this type.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from math import prod
from typing import Iterator, Mapping, Sequence

from ..util.rationals import beta_vector

__all__ = ["ArrayRef", "LoopNest", "LoopNestError"]


class LoopNestError(ValueError):
    """Raised for structurally invalid loop nests."""


@dataclass(frozen=True)
class ArrayRef:
    """One projective array access ``A[phi(x)]``.

    Attributes
    ----------
    name:
        Array identifier, unique within a nest.
    support:
        Strictly increasing tuple of 0-based loop positions that the
        projection keeps.  ``A[i, k]`` in a nest with loops
        ``(i, j, k)`` has support ``(0, 2)``.
    is_output:
        Whether the reference is written (LHS of the statement).  Only
        affects traffic accounting (stores vs loads), never the bounds:
        the paper's model charges a word movement for any access.
    """

    name: str
    support: tuple[int, ...]
    is_output: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise LoopNestError("array name must be nonempty")
        if list(self.support) != sorted(set(self.support)):
            raise LoopNestError(
                f"support of {self.name!r} must be strictly increasing, got {self.support}"
            )
        if self.support and self.support[0] < 0:
            raise LoopNestError(f"negative loop position in support of {self.name!r}")

    def contains(self, loop: int) -> bool:
        """Whether loop position ``loop`` is in this access's support."""
        return loop in self.support

    def project(self, point: Sequence[int]) -> tuple[int, ...]:
        """Apply the projection ``phi`` to an iteration-space point."""
        return tuple(point[i] for i in self.support)


@dataclass(frozen=True)
class LoopNest:
    """A d-deep projective loop nest over n array accesses.

    Invariants enforced at construction:

    * loop names unique, bounds positive integers;
    * array supports reference valid loop positions;
    * every loop appears in the support of at least one array (the
      paper's w.l.o.g. assumption after [CDK+13] — a loop touching no
      array can be hoisted out of the communication analysis).
    """

    name: str
    loops: tuple[str, ...]
    bounds: tuple[int, ...]
    arrays: tuple[ArrayRef, ...]

    def __post_init__(self) -> None:
        if len(self.loops) != len(self.bounds):
            raise LoopNestError("loops and bounds must have equal length")
        if len(set(self.loops)) != len(self.loops):
            raise LoopNestError(f"duplicate loop names in {self.loops}")
        if not self.arrays:
            raise LoopNestError("a loop nest needs at least one array access")
        if any(b < 1 for b in self.bounds):
            raise LoopNestError(f"loop bounds must be >= 1, got {self.bounds}")
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise LoopNestError(f"duplicate array names {names}")
        d = len(self.loops)
        for arr in self.arrays:
            if arr.support and arr.support[-1] >= d:
                raise LoopNestError(
                    f"array {arr.name!r} references loop position {arr.support[-1]} "
                    f"but the nest has only {d} loops"
                )
        covered = set()
        for arr in self.arrays:
            covered.update(arr.support)
        missing = [self.loops[i] for i in range(d) if i not in covered]
        if missing:
            raise LoopNestError(
                f"loops {missing} appear in no array access; hoist them out "
                "before analysis (paper §2 w.l.o.g. assumption)"
            )

    # -- basic shape ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of loops ``d``."""
        return len(self.loops)

    @property
    def num_arrays(self) -> int:
        """Number of array accesses ``n``."""
        return len(self.arrays)

    @property
    def num_operations(self) -> int:
        """Total iteration count ``prod_i L_i`` (the paper's |hyper-rectangle|)."""
        return prod(self.bounds)

    def loop_position(self, loop_name: str) -> int:
        try:
            return self.loops.index(loop_name)
        except ValueError:
            raise LoopNestError(f"unknown loop {loop_name!r} in nest {self.name!r}") from None

    def array(self, name: str) -> ArrayRef:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise LoopNestError(f"unknown array {name!r} in nest {self.name!r}")

    # -- derived combinatorial structure --------------------------------------

    def support_matrix(self) -> list[list[int]]:
        """The n-by-d 0/1 matrix with rows ``phi_j`` (paper eq. 3.2/3.3)."""
        mat = []
        for arr in self.arrays:
            row = [0] * self.depth
            for i in arr.support:
                row[i] = 1
            mat.append(row)
        return mat

    def arrays_containing(self, loop: int) -> tuple[int, ...]:
        """``R_j`` from §4.2: indices of arrays whose support contains ``loop``."""
        return tuple(j for j, arr in enumerate(self.arrays) if arr.contains(loop))

    def array_size(self, j: int) -> int:
        """Number of distinct elements of array ``j`` the nest touches."""
        return prod(self.bounds[i] for i in self.arrays[j].support)

    def total_footprint(self) -> int:
        """Sum of all array sizes (the §6.3 small-problem caveat threshold)."""
        return sum(self.array_size(j) for j in range(self.num_arrays))

    def betas(self, cache_words: int, digits: int = 15) -> list[Fraction]:
        """``beta_i = log_M L_i`` as exact/approximate Fractions."""
        return beta_vector(self.bounds, cache_words, digits=digits)

    # -- transforms ------------------------------------------------------------

    def with_bounds(self, bounds: Sequence[int] | Mapping[str, int]) -> "LoopNest":
        """Same structure, new loop bounds (sequence or name-keyed mapping)."""
        if isinstance(bounds, Mapping):
            new = list(self.bounds)
            for k, v in bounds.items():
                new[self.loop_position(k)] = int(v)
            bounds = new
        return replace(self, bounds=tuple(int(b) for b in bounds))

    def permuted(self, order: Sequence[int]) -> "LoopNest":
        """Reorder loops by ``order`` (a permutation of range(d)).

        Supports are remapped accordingly; used by tests to check that
        all analyses are invariant under loop permutation.
        """
        d = self.depth
        if sorted(order) != list(range(d)):
            raise LoopNestError(f"{order} is not a permutation of range({d})")
        inverse = [0] * d
        for new_pos, old_pos in enumerate(order):
            inverse[old_pos] = new_pos
        arrays = tuple(
            replace(arr, support=tuple(sorted(inverse[i] for i in arr.support)))
            for arr in self.arrays
        )
        return LoopNest(
            name=self.name,
            loops=tuple(self.loops[i] for i in order),
            bounds=tuple(self.bounds[i] for i in order),
            arrays=arrays,
        )

    def restricted(self, fixed: Mapping[int, int]) -> "LoopNest":
        """Nest with the loops in ``fixed`` pinned (bound forced to 1).

        Models the paper's "slice" construction (§4.1): fixing ``x_j``
        removes that loop from the communication analysis.
        """
        new_bounds = list(self.bounds)
        for pos in fixed:
            if not 0 <= pos < self.depth:
                raise LoopNestError(f"loop position {pos} out of range")
            new_bounds[pos] = 1
        return replace(self, bounds=tuple(new_bounds))

    # -- explicit iteration (small instances; oracles and trace generation) ----

    def iteration_points(self) -> Iterator[tuple[int, ...]]:
        """Yield every point of ``[L_1] x ... x [L_d]`` (0-based)."""
        if self.num_operations > 2_000_000:
            raise LoopNestError(
                f"refusing to enumerate {self.num_operations} iteration points; "
                "use the analytic paths for large nests"
            )
        idx = [0] * self.depth
        while True:
            yield tuple(idx)
            for pos in range(self.depth - 1, -1, -1):
                idx[pos] += 1
                if idx[pos] < self.bounds[pos]:
                    break
                idx[pos] = 0
            else:
                return

    def touched_elements(self, j: int, points: Sequence[Sequence[int]]) -> set[tuple[int, ...]]:
        """``phi_j(S)`` for an explicit point set ``S`` (paper §2)."""
        arr = self.arrays[j]
        return {arr.project(p) for p in points}

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-safe dict: the inverse of :meth:`from_json` (lossless)."""
        return {
            "name": self.name,
            "loops": list(self.loops),
            "bounds": list(self.bounds),
            "arrays": [
                {"name": a.name, "support": list(a.support), "is_output": a.is_output}
                for a in self.arrays
            ],
        }

    @classmethod
    def from_json(cls, blob: Mapping) -> "LoopNest":
        """Rebuild a nest from :meth:`to_json` output (validated)."""
        try:
            arrays = tuple(
                ArrayRef(
                    name=str(entry["name"]),
                    support=tuple(int(i) for i in entry["support"]),
                    is_output=bool(entry.get("is_output", False)),
                )
                for entry in blob["arrays"]
            )
            return cls(
                name=str(blob.get("name", "nest")),
                loops=tuple(str(x) for x in blob["loops"]),
                bounds=tuple(int(b) for b in blob["bounds"]),
                arrays=arrays,
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise LoopNestError(f"malformed nest JSON: {exc}") from exc

    # -- misc -------------------------------------------------------------------

    def describe(self) -> str:
        """One-line summary, e.g. ``matmul: i<=1024 j<=1024 k<=32 | C[i,k] A[i,j] B[j,k]``."""
        loops = " ".join(f"{nm}<={b}" for nm, b in zip(self.loops, self.bounds))
        arrays = " ".join(
            ("*" if a.is_output else "") + f"{a.name}[{','.join(self.loops[i] for i in a.support)}]"
            for a in self.arrays
        )
        return f"{self.name}: {loops} | {arrays}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
