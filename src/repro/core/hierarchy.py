"""Multi-level memory hierarchies: nested communication-optimal tilings.

The paper's opening sentence scopes the problem to "levels of a memory
hierarchy"; its analysis is two-level (one cache of ``M`` words).  The
standard lift to ``L1 ⊂ L2 ⊂ ... ⊂ RAM`` applies the two-level bound at
*every* boundary: traffic between level ``l`` and ``l+1`` obeys the §4
bound at ``M = capacity_l``, and a tiling attains all bounds at once if
its per-level tiles are **nested** rectangles, each feasible for its
level.

This module computes such nested tilings by solving the tiling LP
level-by-level in a *common* log base (base 2, so different cache sizes
share one variable space), adding at level ``l`` the nesting
constraints ``u_i >= u_i^{(l-1)}`` (level-l blocks contain level-(l-1)
blocks).  Each level's LP remains feasible because the previous
solution satisfies the larger capacity, and each level's optimum is the
unconstrained-level optimum whenever nesting is slack — tests verify
both facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..util.rationals import log_ratio
from .bounds import CommunicationLowerBound, communication_lower_bound
from .integer import nested_integer_repair
from .loopnest import LoopNest
from .lp import LinearProgram
from .tiling import BUDGETS, TileShape

__all__ = ["MemoryHierarchy", "LevelTiling", "HierarchicalTiling", "solve_hierarchical_tiling"]


@dataclass(frozen=True)
class MemoryHierarchy:
    """Strictly increasing cache capacities, innermost first (words)."""

    capacities: tuple[int, ...]
    name: str = "hierarchy"

    def __post_init__(self) -> None:
        if not self.capacities:
            raise ValueError("need at least one level")
        if any(c < 2 for c in self.capacities):
            raise ValueError("level capacities must be >= 2 words")
        if any(a >= b for a, b in zip(self.capacities, self.capacities[1:])):
            raise ValueError(f"capacities must be strictly increasing, got {self.capacities}")

    @property
    def levels(self) -> int:
        return len(self.capacities)

    def describe(self) -> str:
        caps = " < ".join(str(c) for c in self.capacities)
        return f"{self.name}: {caps} words"


@dataclass(frozen=True)
class LevelTiling:
    """One level's tile, with its own Theorem-2 bound for context."""

    capacity: int
    tile: TileShape
    exponent_base2: Fraction  # sum_i log2(b_i) at the LP vertex
    lower_bound: CommunicationLowerBound


@dataclass(frozen=True)
class HierarchicalTiling:
    """Nested tiles, innermost (smallest cache) first.

    Invariant: ``levels[l].tile.blocks[i] <= levels[l+1].tile.blocks[i]``
    for every loop ``i`` — outer tiles contain inner tiles, so the
    execution "tile within tile" realises every level's blocking at
    once.
    """

    nest: LoopNest
    hierarchy: MemoryHierarchy
    budget: str
    levels: tuple[LevelTiling, ...]

    def tile_at(self, level: int) -> TileShape:
        return self.levels[level].tile

    def summary(self) -> str:
        lines = [f"{self.nest.name} on {self.hierarchy.describe()} [{self.budget}]"]
        for idx, lvl in enumerate(self.levels):
            lines.append(
                f"  L{idx + 1} (M={lvl.capacity}): blocks {lvl.tile.blocks} "
                f"k_hat={lvl.lower_bound.k_hat}"
            )
        return "\n".join(lines)


def _solve_level(
    nest: LoopNest,
    capacity: int,
    lower_u: Sequence[Fraction] | None,
    budget: str,
) -> tuple[tuple[Fraction, ...], Fraction]:
    """Tiling LP in log base 2 with optional per-variable lower bounds.

    Two degeneracies make constraints go *slack* rather than infeasible:

    * a variable's upper bound is ``max(lo, log2 L_i)`` — when the level
      capacity meets or exceeds the full iteration-space footprint every
      capacity row is slack and the optimum is the whole nest;
    * a capacity row's right-hand side is raised to the previous level's
      footprint in that row when the (grown, integer) previous tile
      already exceeds this level's *effective* capacity — possible under
      the aggregate budget when adjacent capacities are nearly equal,
      because the integer grow packs the sum-of-footprints budget with
      individual array footprints above ``M / n``.  Relaxing the row to
      the point it contains keeps the LP feasible; the level tile then
      simply starts at the previous level's blocks.
    """
    effective = capacity if budget == "per-array" else max(2, capacity // nest.num_arrays)
    log_m = log_ratio(effective, 2)
    log_l = [log_ratio(L, 2) for L in nest.bounds]
    lp = LinearProgram(sense="max")
    for i in range(nest.depth):
        lo = lower_u[i] if lower_u is not None else Fraction(0)
        # A previous level's block may already exceed this level's beta
        # cap only if L_i < previous block — impossible since blocks are
        # clamped to L_i; still guard with max for safety.
        lp.add_variable(f"u[{nest.loops[i]}]", lo=lo, hi=max(lo, log_l[i]))
    for arr in nest.arrays:
        if not arr.support:
            continue
        floor_rhs = (
            sum((lower_u[i] for i in arr.support), start=Fraction(0))
            if lower_u is not None
            else Fraction(0)
        )
        lp.add_constraint(
            f"cap[{arr.name}]",
            {f"u[{nest.loops[i]}]": 1 for i in arr.support},
            "<=",
            max(log_m, floor_rhs),
        )
    lp.set_objective({f"u[{nest.loops[i]}]": 1 for i in range(nest.depth)})
    report = lp.solve()
    if not report.is_optimal:  # pragma: no cover - feasible by construction
        raise RuntimeError(
            f"level LP {report.status}: capacity {capacity} cannot nest the previous level"
        )
    u = tuple(report.values[f"u[{nest.loops[i]}]"] for i in range(nest.depth))
    return u, report.objective


def solve_hierarchical_tiling(
    nest: LoopNest,
    hierarchy: MemoryHierarchy,
    budget: str = "per-array",
) -> HierarchicalTiling:
    """Nested communication-optimal tilings for every hierarchy level.

    Levels are solved innermost-out; each level maximises its tile
    volume subject to (a) its own capacity rows and (b) containing the
    previous level's (integer) tile.  Integer repair per level is the
    shared :func:`repro.core.integer.nested_integer_repair` — the same
    round-and-grow scheme as :func:`repro.core.tiling.solve_tiling` but
    floored at the previous level's blocks, preserving nesting.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {BUDGETS}")
    if budget == "aggregate" and hierarchy.capacities[0] < nest.num_arrays:
        raise ValueError(
            f"aggregate budget needs the innermost level >= {nest.num_arrays} words"
        )
    levels: list[LevelTiling] = []
    prev_blocks: tuple[int, ...] | None = None
    prev_u: tuple[Fraction, ...] | None = None
    for capacity in hierarchy.capacities:
        u, exponent = _solve_level(nest, capacity, prev_u, budget)
        fractional = tuple(2.0 ** float(ui) for ui in u)
        (tile,) = nested_integer_repair(
            nest, [fractional], [capacity], budget, floors=prev_blocks
        )
        if not tile.is_feasible(capacity, budget):  # pragma: no cover - by construction
            raise AssertionError("level tile infeasible after repair")
        levels.append(
            LevelTiling(
                capacity=capacity,
                tile=tile,
                exponent_base2=exponent,
                lower_bound=communication_lower_bound(nest, capacity),
            )
        )
        prev_blocks = tile.blocks
        prev_u = tuple(log_ratio(b, 2) for b in tile.blocks)
    return HierarchicalTiling(
        nest=nest, hierarchy=hierarchy, budget=budget, levels=tuple(levels)
    )
