"""Independent verification of claimed tilings and bounds.

A compiler or library integrating this analysis wants to *check* an
artefact without trusting the solver that produced it.  This module
provides self-contained verifiers whose logic is deliberately
independent of the LP pipeline:

* :func:`check_tile` — is a tile feasible for a budget, and how close
  is its volume to the claimed exponent?
* :func:`check_dual_certificate` — does a dual point ``(zeta, s)``
  certify an upper bound on every feasible tile's volume?  (Weak
  duality, verified from the definition by pure arithmetic.)
* :func:`verify_analysis` — cross-examines a full
  :class:`repro.Analysis` bundle: feasibility, weak-duality validity of
  the dual certificate, exact primal/dual equality, and agreement of
  the bound object with the tiling exponent.

The checks use only Fractions and the nest's combinatorial structure —
no LP solves — so they are a genuinely independent audit path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..util.rationals import pow_fraction
from .loopnest import LoopNest
from .tiling import BUDGETS, TileShape

__all__ = [
    "TileCheck",
    "CertificateCheck",
    "check_tile",
    "check_dual_certificate",
    "verify_analysis",
]


@dataclass(frozen=True)
class TileCheck:
    """Outcome of a tile audit."""

    feasible: bool
    volume: int
    claimed_bound: float
    utilisation: float  # volume / M^k (1.0 = attains the fractional bound)
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.feasible and not self.violations


def check_tile(
    nest: LoopNest,
    tile: TileShape,
    cache_words: int,
    claimed_exponent: Fraction,
    budget: str = "per-array",
) -> TileCheck:
    """Audit a tile against the model and a claimed exponent.

    Violations reported: out-of-range blocks (raised by TileShape
    itself), budget violations per array, and volume exceeding the
    claimed fractional bound (which would disprove the claim).
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}")
    violations: list[str] = []
    if budget == "per-array":
        for j, arr in enumerate(nest.arrays):
            fp = tile.footprint(j)
            if fp > cache_words:
                violations.append(f"array {arr.name}: footprint {fp} > M={cache_words}")
    else:
        total = tile.total_footprint()
        if total > cache_words:
            violations.append(f"total footprint {total} > M={cache_words}")
    bound = pow_fraction(cache_words, claimed_exponent)
    if tile.volume > bound * (1 + 1e-12):
        violations.append(
            f"volume {tile.volume} exceeds claimed bound M^{claimed_exponent} = {bound:.6g}"
        )
    feasible = not any(v.startswith(("array", "total")) for v in violations)
    return TileCheck(
        feasible=feasible,
        volume=tile.volume,
        claimed_bound=bound,
        utilisation=tile.volume / bound if bound > 0 else 0.0,
        violations=tuple(violations),
    )


@dataclass(frozen=True)
class CertificateCheck:
    """Outcome of a weak-duality certificate audit."""

    dual_feasible: bool
    certified_exponent: Fraction | None
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.dual_feasible


def check_dual_certificate(
    nest: LoopNest,
    betas: Sequence[Fraction],
    zeta: Sequence[Fraction],
    s: Sequence[Fraction],
) -> CertificateCheck:
    """Verify a dual point certifies tile-volume <= M^(beta.zeta + sum s).

    Weak duality, checked from first principles: for any tile with
    log-sides ``lambda`` (0 <= lambda_i <= beta_i, capacity rows hold),

        sum_i lambda_i <= sum_i lambda_i (zeta_i + sum_{j in R_i} s_j)
                        <= sum_i beta_i zeta_i + sum_j s_j

    provided ``zeta, s >= 0`` and every covering row
    ``zeta_i + sum_{j in R_i} s_j >= 1`` holds.  Only those conditions
    are checked here — no solver involved.
    """
    zeta = [Fraction(z) for z in zeta]
    s = [Fraction(v) for v in s]
    betas = [Fraction(b) for b in betas]
    violations: list[str] = []
    if len(zeta) != nest.depth or len(s) != nest.num_arrays or len(betas) != nest.depth:
        raise ValueError("certificate arity mismatch")
    for i, z in enumerate(zeta):
        if z < 0:
            violations.append(f"zeta[{nest.loops[i]}] = {z} < 0")
    for j, v in enumerate(s):
        if v < 0:
            violations.append(f"s[{nest.arrays[j].name}] = {v} < 0")
    for i in range(nest.depth):
        row = zeta[i] + sum((s[j] for j in nest.arrays_containing(i)), start=Fraction(0))
        if row < 1:
            violations.append(
                f"covering row for loop {nest.loops[i]}: {row} < 1 (certificate invalid)"
            )
    if violations:
        return CertificateCheck(
            dual_feasible=False, certified_exponent=None, violations=tuple(violations)
        )
    certified = sum((b * z for b, z in zip(betas, zeta)), start=Fraction(0)) + sum(
        s, start=Fraction(0)
    )
    return CertificateCheck(dual_feasible=True, certified_exponent=certified, violations=())


def verify_analysis(analysis) -> list[str]:
    """Cross-examine a :class:`repro.Analysis` bundle; return problems found.

    An empty list means: the tile is feasible, the dual point is a
    valid weak-duality certificate, the certified exponent equals the
    primal exponent (tightness), and the bound object used the same
    exponent.  This is the audit a downstream compiler should run on
    received artefacts.
    """
    problems: list[str] = []
    nest: LoopNest = analysis.nest
    M: int = analysis.cache_words

    tile_check = check_tile(
        nest,
        analysis.tiling.tile,
        M,
        analysis.tiling.exponent,
        budget=analysis.tiling.budget,
    )
    if not tile_check.ok:
        problems.extend(f"tile: {v}" for v in tile_check.violations)

    cert = analysis.certificate
    cert_check = check_dual_certificate(nest, cert.betas, cert.dual.zeta, cert.dual.s)
    if not cert_check.ok:
        problems.extend(f"certificate: {v}" for v in cert_check.violations)
    elif cert_check.certified_exponent != cert.dual_value:
        problems.append(
            f"certificate objective mismatch: recomputed {cert_check.certified_exponent}, "
            f"stored {cert.dual_value}"
        )
    if cert.primal_value != cert.dual_value:
        problems.append(
            f"tightness gap: primal {cert.primal_value} != dual {cert.dual_value}"
        )
    if analysis.lower_bound.k_hat != cert.primal_value:
        problems.append(
            f"bound object exponent {analysis.lower_bound.k_hat} != "
            f"certified {cert.primal_value}"
        )
    return problems
