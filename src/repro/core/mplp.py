"""Multiparametric analysis: the exact piecewise-linear value function.

The paper's discussion (§7) observes that for a fixed loop *structure*
the optimal tile cardinality is ``M**f(beta_1..beta_d)`` for a
piecewise-linear ``f``, computable by feeding LP (5.1) to a
multiparametric LP solver [BBM03].  This module computes ``f`` *exactly*
without a general mpLP package by exploiting a structural fact:

The dual (5.5/5.6) of the tiling LP has feasible region::

    D = { (zeta, s) >= 0 : zeta_i + sum_{j in R_i} s_j >= 1  for all i }

which does **not** depend on ``beta``.  By strong duality::

    f(beta) = min_{(zeta, s) in vert(D)}  [ sum_j s_j + sum_i beta_i zeta_i ]

so ``f`` is the lower envelope of finitely many *affine* functions of
``beta``, one per vertex of ``D``.  We enumerate ``vert(D)`` exactly
(rational basis enumeration — the polyhedron has ``d + n`` variables
and ``2d + n + ...`` facets, tiny for real loop nests), prune dominated
pieces with exact LP feasibility tests, and return a
:class:`PiecewiseValueFunction`.

For matmul this reproduces §6.1's closed form: pieces
``3/2``, ``1 + beta_1``, ``1 + beta_2``, ``1 + beta_3``,
``beta_1 + beta_2``, ..., ``beta_1 + beta_2 + beta_3`` — and the
derived communication expression ``max(L1 L2 L3 / sqrt(M), L2 L3,
L1 L3, L1 L2, ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Sequence

from ..util.deadline import checkpoint
from ..util.linalg import SingularMatrixError, solve_square
from ..util.rationals import format_affine, pow_fraction
from .fraction_lp import solve_lp
from .loopnest import LoopNest

__all__ = ["AffinePiece", "PiecewiseValueFunction", "parametric_tile_exponent"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class AffinePiece:
    """One affine piece ``constant + sum_i coeffs[i] * beta_i``.

    ``source`` records the dual vertex ``(zeta, s)`` that generated the
    piece (``coeffs == zeta``, ``constant == sum(s)``), which doubles as
    an exact optimality certificate for the regions where the piece is
    active.
    """

    constant: Fraction
    coeffs: tuple[Fraction, ...]
    source_zeta: tuple[Fraction, ...]
    source_s: tuple[Fraction, ...]

    def evaluate(self, betas: Sequence[Fraction]) -> Fraction:
        if len(betas) != len(self.coeffs):
            raise ValueError("beta vector has wrong length")
        return self.constant + sum(
            (c * Fraction(b) for c, b in zip(self.coeffs, betas)), start=_ZERO
        )

    def render(self, names: Sequence[str]) -> str:
        return format_affine(self.constant, self.coeffs, names)


@dataclass(frozen=True)
class PiecewiseValueFunction:
    """``f(beta) = min_pieces (constant + <coeffs, beta>)`` — exact mpLP output.

    ``pieces`` contains only *essential* pieces: each is uniquely
    minimal somewhere on the open orthant ``beta > 0`` (unless
    ``pruned=False`` was requested).
    """

    nest: LoopNest
    pieces: tuple[AffinePiece, ...]
    pruned: bool

    def evaluate(self, betas: Sequence[Fraction]) -> Fraction:
        """``f(beta)`` — equals the tiling-LP optimum at that beta."""
        return min(p.evaluate(betas) for p in self.pieces)

    def argmin(self, betas: Sequence[Fraction]) -> AffinePiece:
        """The (first) piece attaining the minimum at ``beta``."""
        return min(self.pieces, key=lambda p: p.evaluate(betas))

    def evaluate_with_piece(self, betas: Sequence[Fraction]) -> tuple[Fraction, int]:
        """``(f(beta), index of the attaining piece)`` in one pass.

        The plan cache keys its per-piece primal maps on the returned
        index, so both values are needed together on every lookup.
        """
        best_value: Fraction | None = None
        best_idx = 0
        for idx, piece in enumerate(self.pieces):
            value = piece.evaluate(betas)
            if best_value is None or value < best_value:
                best_value, best_idx = value, idx
        assert best_value is not None
        return best_value, best_idx

    def tile_size(self, cache_words: int, betas: Sequence[Fraction]) -> float:
        """``M**f(beta)``: the optimal tile cardinality."""
        return pow_fraction(cache_words, self.evaluate(betas))

    def communication_pieces(self) -> tuple[AffinePiece, ...]:
        """Pieces of the *communication* exponent ``g = sum(beta) + 1 - f``.

        ``comm >= M**g(beta)``; because ``f`` is a min, ``g`` is a max of
        affine pieces — §6.1's ``max(L1L2L3/sqrt M, L1L2, ...)`` shape.
        """
        d = self.nest.depth
        out = []
        for p in self.pieces:
            out.append(
                AffinePiece(
                    constant=_ONE - p.constant,
                    coeffs=tuple(_ONE - c for c in p.coeffs),
                    source_zeta=p.source_zeta,
                    source_s=p.source_s,
                )
            )
        return tuple(out)

    def region_inequalities(
        self, piece: AffinePiece
    ) -> list[tuple[Fraction, tuple[Fraction, ...]]]:
        """The polyhedral region where ``piece`` is minimal.

        Returns inequalities ``const + <coeffs, beta> >= 0`` (one per
        other piece, i.e. ``other(beta) - piece(beta) >= 0``); together
        with ``beta >= 0`` they cut out the piece's critical region in
        the multiparametric-programming sense [BBM03].
        """
        region = []
        for other in self.pieces:
            if other is piece:
                continue
            region.append(
                (
                    other.constant - piece.constant,
                    tuple(oc - pc for oc, pc in zip(other.coeffs, piece.coeffs)),
                )
            )
        return region

    def render(self) -> str:
        names = [f"b({nm})" for nm in self.nest.loops]
        body = ", ".join(p.render(names) for p in self.pieces)
        return f"f(beta) = min({body})"


def _dual_vertices(nest: LoopNest) -> list[tuple[tuple[Fraction, ...], tuple[Fraction, ...]]]:
    """Enumerate the vertices of the beta-independent dual polyhedron D.

    Variables: ``zeta_0..zeta_{d-1}, s_0..s_{n-1}`` (dimension d+n).
    Facets: ``zeta_i + sum_{j in R_i} s_j >= 1`` (d rows, for loops),
    plus nonnegativity (d+n rows).  A vertex is a feasible point where
    some d+n linearly-independent facets are tight.  Note arrays with
    empty support never appear in covering rows, so their ``s_j`` is 0
    at every vertex (tight nonnegativity is the only option).
    """
    d, n = nest.depth, nest.num_arrays
    dim = d + n
    # Facet list: (row_coeffs, rhs) for rows  a.x >= rhs.
    facets: list[tuple[list[Fraction], Fraction]] = []
    for i in range(d):
        row = [_ZERO] * dim
        row[i] = _ONE
        for j in nest.arrays_containing(i):
            row[d + j] = _ONE
        facets.append((row, _ONE))
    for v in range(dim):
        row = [_ZERO] * dim
        row[v] = _ONE
        facets.append((row, _ZERO))

    vertices: list[tuple[tuple[Fraction, ...], tuple[Fraction, ...]]] = []
    seen: set[tuple[Fraction, ...]] = set()
    for n_combo, combo in enumerate(combinations(range(len(facets)), dim)):
        if n_combo % 32 == 0:
            checkpoint("mplp-enumeration")
        A = [facets[idx][0] for idx in combo]
        b = [facets[idx][1] for idx in combo]
        try:
            x = solve_square(A, b)
        except SingularMatrixError:
            continue
        key = tuple(x)
        if key in seen:
            continue
        # Feasibility w.r.t. all facets.
        ok = True
        for row, rhs in facets:
            total = sum((r * xv for r, xv in zip(row, x) if r != 0), start=_ZERO)
            if total < rhs:
                ok = False
                break
        if not ok:
            continue
        seen.add(key)
        vertices.append((tuple(x[:d]), tuple(x[d:])))
    return vertices


def _is_essential(piece_idx: int, pieces: list[AffinePiece], d: int) -> bool:
    """Exact test: is piece strictly minimal somewhere on ``beta >= 0``?

    LP over (beta, delta): maximise delta subject to
    ``other(beta) - piece(beta) >= delta`` for every other piece and
    ``beta >= 0``.  The piece is essential iff the optimum is positive
    (an unbounded LP also certifies essentiality).  We additionally cap
    ``beta <= BIG`` to keep the LP bounded without affecting the sign
    of the answer (pieces differing only beyond astronomically large
    beta have no modelling value: ``beta_i <= 64`` covers every cache
    size ``M >= 2`` and bound ``L_i <= 2**64``).
    """
    BIG = Fraction(64)
    piece = pieces[piece_idx]
    c = [_ZERO] * d + [-_ONE]  # minimise -delta
    A_ub: list[list[Fraction]] = []
    b_ub: list[Fraction] = []
    for k, other in enumerate(pieces):
        if k == piece_idx:
            continue
        # piece(beta) + delta <= other(beta)
        row = [pc - oc for pc, oc in zip(piece.coeffs, other.coeffs)] + [_ONE]
        A_ub.append(row)
        b_ub.append(other.constant - piece.constant)
    bounds = [(0, BIG)] * d + [(None, None)]
    sol = solve_lp(c, A_ub, b_ub, bounds=bounds, sense="min")
    if sol.status == "unbounded":  # pragma: no cover - delta is capped via rows
        return True
    if not sol.is_optimal:  # pragma: no cover - defensive
        return True
    delta = -sol.objective
    return delta > 0


def parametric_tile_exponent(nest: LoopNest, prune: bool = True) -> PiecewiseValueFunction:
    """Compute the exact piecewise-linear tile-size exponent ``f(beta)``.

    Parameters
    ----------
    nest:
        Only the *structure* (supports) matters; the bounds stored in
        the nest are ignored — ``beta`` is the free parameter.
    prune:
        Drop pieces that are nowhere uniquely minimal on the orthant
        (exact LP domination test).  Disable to inspect the full vertex
        set of the dual polyhedron.
    """
    raw = _dual_vertices(nest)
    pieces = [
        AffinePiece(
            constant=sum(s, start=_ZERO),
            coeffs=zeta,
            source_zeta=zeta,
            source_s=s,
        )
        for zeta, s in raw
    ]
    # Deduplicate pieces that share (constant, coeffs) but come from
    # different dual vertices (degeneracy).
    unique: dict[tuple, AffinePiece] = {}
    for p in pieces:
        unique.setdefault((p.constant, p.coeffs), p)
    pieces = list(unique.values())
    if prune and len(pieces) > 1:
        essential = [
            p for idx, p in enumerate(pieces) if _is_essential(idx, pieces, nest.depth)
        ]
        if essential:  # pragma: no branch - at least one piece always survives
            pieces = essential
    pieces.sort(key=lambda p: (p.constant, p.coeffs))
    return PiecewiseValueFunction(nest=nest, pieces=tuple(pieces), pruned=prune)
