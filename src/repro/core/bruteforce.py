"""Exhaustive validators for the paper's structural claims (tiny instances).

Two oracles, used by the property-based test-suite and by the E9/E11
benchmarks as ground truth:

* :func:`best_rectangle` — the largest *integer rectangle* tile that
  fits the memory budget, by exhaustive search of side lengths with
  monotone footprint pruning (growing a side never shrinks a
  footprint, so infeasible partial assignments cut whole subtrees).
  The LP's fractional optimum ``M**k_hat`` must upper-bound it, and the
  library's rounded tile must match it up to the rounding slack.
* :func:`best_subset` — the largest *arbitrary subset* tile (any set of
  iteration points, not necessarily a rectangle) by enumeration of all
  ``2**(prod L)`` subsets, feasible only for iteration spaces of ~20
  points.  Theorem 2's exchange argument says rectangles are optimal;
  this oracle checks that claim directly on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import prod
from typing import Iterable

from .loopnest import LoopNest

__all__ = ["BruteForceResult", "best_rectangle", "best_subset", "max_subset_of_size"]


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of an exhaustive tile search."""

    volume: int
    blocks: tuple[int, ...] | None  # None for subset searches
    points: frozenset[tuple[int, ...]] | None


def best_rectangle(
    nest: LoopNest, cache_words: int, budget: str = "per-array"
) -> BruteForceResult:
    """Largest feasible integer rectangle by pruned exhaustive search.

    Depth-first over side lengths in the same lexicographic order as
    naive enumeration (so ties resolve identically), carrying each
    array's partial footprint incrementally.  Undecided sides sit at
    their minimum (1), making partial footprints lower bounds; since
    growing any side only grows footprints, a partial assignment that
    already busts the budget prunes its whole subtree, and within one
    dimension the first infeasible side length ends the scan.
    """
    if prod(nest.bounds) > 4_000_000:
        raise ValueError("instance too large for exhaustive rectangle search")
    if budget not in ("per-array", "aggregate"):
        raise ValueError(f"unknown budget {budget!r}")
    per_array = budget == "per-array"
    d = nest.depth
    n = nest.num_arrays
    touching = [
        [j for j in range(n) if i in nest.arrays[j].support] for i in range(d)
    ]
    best_volume = 0
    best_blocks: tuple[int, ...] | None = None
    blocks = [1] * d

    def descend(dim: int, footprints: list[int], volume: int) -> None:
        nonlocal best_volume, best_blocks
        if dim == d:
            # pruning kept every partial feasible, so this tile is feasible
            if volume > best_volume:
                best_volume = volume
                best_blocks = tuple(blocks)
            return
        for side in range(1, nest.bounds[dim] + 1):
            trial = footprints.copy()
            for j in touching[dim]:
                trial[j] = footprints[j] * side
            if per_array:
                if any(trial[j] > cache_words for j in touching[dim]):
                    break  # larger sides only grow footprints
            elif sum(trial) > cache_words:
                break
            blocks[dim] = side
            descend(dim + 1, trial, volume * side)

    descend(0, [1] * n, 1)
    if best_blocks is None:
        # Aggregate budgets below n words reject even the unit tile (one
        # resident word per array); per-array budgets never land here.
        raise AssertionError("no feasible rectangle found (even the unit tile?)")
    return BruteForceResult(volume=best_volume, blocks=best_blocks, points=None)


def _footprints_ok(
    nest: LoopNest, points: Iterable[tuple[int, ...]], cache_words: int, budget: str
) -> bool:
    points = list(points)
    sizes = [len({arr.project(p) for p in points}) for arr in nest.arrays]
    if budget == "per-array":
        return all(s <= cache_words for s in sizes)
    if budget == "aggregate":
        return sum(sizes) <= cache_words
    raise ValueError(f"unknown budget {budget!r}")


def best_subset(
    nest: LoopNest, cache_words: int, budget: str = "per-array", limit_points: int = 20
) -> BruteForceResult:
    """Largest feasible *arbitrary* subset tile, by powerset enumeration.

    Validates the rectangle-optimality claim of Theorem 2 directly:
    on every instance small enough to enumerate, the best arbitrary
    subset is no larger than the best rectangle (they agree; subsets
    never win).  Exponential — restricted to ``prod L <= limit_points``.
    """
    space = list(nest.iteration_points())
    if len(space) > limit_points:
        raise ValueError(
            f"iteration space has {len(space)} points; max {limit_points} for powerset search"
        )
    # Monotonicity: supersets have (weakly) larger footprints, so search
    # by decreasing size and stop at the first feasible cardinality.
    for size in range(len(space), 0, -1):
        for combo in combinations(space, size):
            if _footprints_ok(nest, combo, cache_words, budget):
                return BruteForceResult(
                    volume=size, blocks=None, points=frozenset(combo)
                )
    # The single-point tile has footprint 1 per array; cache_words >= 1
    # makes it feasible.
    return BruteForceResult(volume=0, blocks=None, points=frozenset())


def max_subset_of_size(
    nest: LoopNest, cache_words: int, size: int, budget: str = "per-array"
) -> frozenset[tuple[int, ...]] | None:
    """First feasible subset of exactly ``size`` points, or None.

    Helper for tests that probe the boundary of Theorem 2's bound.
    """
    space = list(nest.iteration_points())
    for combo in combinations(space, size):
        if _footprints_ok(nest, combo, cache_words, budget):
            return frozenset(combo)
    return None
