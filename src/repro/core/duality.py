"""Theorem 3: exact primal/dual tightness certificates (paper §5).

The dual of the tiling LP (5.1), written out in eq. 5.5/5.6, has one
variable ``zeta_i`` per loop (pricing the ``lambda_i <= beta_i`` rows)
and one variable ``s_j`` per array (pricing the capacity rows)::

    min  sum_i beta_i zeta_i + sum_j s_j
    s.t. zeta_i + sum_{j in R_i} s_j >= 1     for each loop i
         zeta, s >= 0

Theorem 3 states its optimum — which is precisely the strongest
Theorem-2 upper-bound exponent — equals the primal tiling-LP optimum,
certifying that the constructed rectangle *attains* the lower bound.

This module constructs the dual explicitly, solves both sides with the
exact rational simplex, and verifies strong duality and complementary
slackness with zero tolerance.  :func:`theorem3_certificate` is used
directly by the test-suite (golden + property-based) and by the
``bench_duality`` experiment (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .bounds import build_subset_lp
from .hbl import svar
from .loopnest import LoopNest
from .lp import LinearProgram
from .tiling import build_tiling_lp, lvar

__all__ = ["DualSolution", "Theorem3Certificate", "build_dual_lp", "theorem3_certificate"]


def _zvar(i: int, nest: LoopNest) -> str:
    return f"zeta[{nest.loops[i]}]"


def build_dual_lp(
    nest: LoopNest, cache_words: int, betas: Sequence[Fraction] | None = None
) -> LinearProgram:
    """The explicit dual (5.5/5.6) of the tiling LP.

    Identical to :func:`repro.core.bounds.build_subset_lp` with
    ``Q = range(d)``; constructed here from the dual transformation for
    independent validation of that identity.
    """
    if betas is None:
        betas = nest.betas(cache_words)
    return build_subset_lp(nest, betas, range(nest.depth))


@dataclass(frozen=True)
class DualSolution:
    """Optimal dual multipliers.

    ``zeta[i]`` prices the loop-bound row ``lambda_i <= beta_i``;
    ``s[j]`` prices the array-capacity row of array ``j``.
    """

    zeta: tuple[Fraction, ...]
    s: tuple[Fraction, ...]
    objective: Fraction


@dataclass(frozen=True)
class Theorem3Certificate:
    """Exact evidence that the tiling attains the lower bound.

    Attributes
    ----------
    primal_value, dual_value:
        Optimal objectives of LP (5.1) and its dual; Theorem 3 asserts
        they are equal (checked exactly — :attr:`tight` is their
        equality).
    lambdas:
        Optimal primal vertex (tile side exponents).
    dual:
        Optimal dual multipliers.
    complementary_slackness:
        Whether every (primal slack, dual multiplier) and every
        (dual slack, primal variable) pair has a zero member — the KKT
        conditions at exact arithmetic.
    """

    nest: LoopNest
    cache_words: int
    betas: tuple[Fraction, ...]
    primal_value: Fraction
    dual_value: Fraction
    lambdas: tuple[Fraction, ...]
    dual: DualSolution
    complementary_slackness: bool

    @property
    def tight(self) -> bool:
        return self.primal_value == self.dual_value

    def summary(self) -> str:
        status = "TIGHT" if self.tight else "GAP"
        return (
            f"{self.nest.name}: primal={self.primal_value} dual={self.dual_value} "
            f"[{status}] cs={'ok' if self.complementary_slackness else 'VIOLATED'}"
        )


def theorem3_certificate(
    nest: LoopNest,
    cache_words: int,
    betas: Sequence[Fraction] | None = None,
    backend: str = "exact",
) -> Theorem3Certificate:
    """Solve primal and dual exactly and verify Theorem 3 for ``nest``."""
    if betas is None:
        betas = nest.betas(cache_words)
    betas = tuple(Fraction(b) for b in betas)

    primal = build_tiling_lp(nest, cache_words, betas=betas)
    primal_report = primal.solve(backend=backend)
    dual = build_dual_lp(nest, cache_words, betas=betas)
    dual_report = dual.solve(backend=backend)
    if not (primal_report.is_optimal and dual_report.is_optimal):  # pragma: no cover
        raise RuntimeError("tiling LP or its dual failed to solve")

    lambdas = tuple(primal_report.values[lvar(i, nest)] for i in range(nest.depth))
    zeta = tuple(dual_report.values[_zvar(i, nest)] for i in range(nest.depth))
    s = tuple(dual_report.values[svar(j, nest)] for j in range(nest.num_arrays))

    cs_ok = _complementary_slackness(nest, betas, lambdas, zeta, s)
    return Theorem3Certificate(
        nest=nest,
        cache_words=cache_words,
        betas=betas,
        primal_value=primal_report.objective,
        dual_value=dual_report.objective,
        lambdas=lambdas,
        dual=DualSolution(zeta=zeta, s=s, objective=dual_report.objective),
        complementary_slackness=cs_ok,
    )


def _complementary_slackness(
    nest: LoopNest,
    betas: tuple[Fraction, ...],
    lambdas: tuple[Fraction, ...],
    zeta: tuple[Fraction, ...],
    s: tuple[Fraction, ...],
) -> bool:
    """Exact KKT complementarity between optimal primal/dual vertices.

    Primal rows: capacity per array (multiplier ``s_j``), loop bounds
    (multiplier ``zeta_i``).  Dual rows: covering per loop (slack
    complementary to ``lambda_i``).

    Note: with degenerate optima, independently-solved primal and dual
    vertices may fail pairwise complementarity even though both are
    optimal; callers treat this flag as diagnostic, while *strong
    duality* (the Theorem-3 claim itself) is exact equality of
    objectives.
    """
    # s_j > 0  =>  capacity row tight.
    for j, arr in enumerate(nest.arrays):
        if s[j] > 0:
            if sum((lambdas[i] for i in arr.support), start=Fraction(0)) != 1:
                return False
    # zeta_i > 0  =>  lambda_i == beta_i.
    for i in range(nest.depth):
        if zeta[i] > 0 and lambdas[i] != betas[i]:
            return False
    # lambda_i > 0  =>  covering row tight: zeta_i + sum_{j in R_i} s_j == 1.
    for i in range(nest.depth):
        if lambdas[i] > 0:
            total = zeta[i] + sum((s[j] for j in nest.arrays_containing(i)), start=Fraction(0))
            if total != 1:
                return False
    return True
