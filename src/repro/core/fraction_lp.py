"""Exact rational linear programming via two-phase primal simplex.

Every linear program in this library — the HBL LP (paper eq. 3.2), its
row-deleted variants (§4), the tiling LP (eq. 5.1) and its dual
(eq. 5.5/5.6) — is small (at most a few dozen variables/rows) but must
be solved *exactly*: the paper's headline results are exact rationals
(``3/2`` for matmul, ``1 + beta_3`` in the small-bound regime), and the
Theorem-3 tightness argument is an exact primal/dual equality that a
floating-point solver can only confirm to tolerance.

This module implements a dense two-phase primal simplex over
:class:`fractions.Fraction` with Bland's anti-cycling rule, supporting
the general form::

    min / max   c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lo_i <= x_i <= hi_i        (lo_i may be -inf, hi_i +inf)

Termination is guaranteed by Bland's rule; arithmetic is exact, so the
returned vertex and objective are the true rational optimum.  The scipy
HiGHS backend in :mod:`repro.core.lp` cross-checks these results in the
test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..util.deadline import checkpoint

__all__ = ["LPSolution", "LPError", "solve_lp"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


class LPError(ValueError):
    """Raised for malformed LP inputs (shape mismatches, bad bounds)."""


@dataclass(frozen=True)
class LPSolution:
    """Outcome of an exact LP solve.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    x:
        Optimal vertex (exact Fractions) when ``status == "optimal"``,
        else ``None``.
    objective:
        Optimal objective value in the *user's* sense (i.e. the max for
        a maximisation problem), else ``None``.
    """

    status: str
    x: tuple[Fraction, ...] | None = None
    objective: Fraction | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


@dataclass
class _Standardizer:
    """Bookkeeping for converting user variables to standard form.

    Each user variable becomes either one nonnegative variable (possibly
    shifted and/or negated) or a pair ``x+ - x-`` for free variables.
    """

    n_user: int
    # per user variable: ("shift", col, lo) | ("neg", col, hi) | ("free", col_pos, col_neg)
    mapping: list[tuple] = field(default_factory=list)
    n_std: int = 0

    def recover(self, std_x: Sequence[Fraction]) -> tuple[Fraction, ...]:
        out: list[Fraction] = []
        for entry in self.mapping:
            kind = entry[0]
            if kind == "shift":
                _, col, lo = entry
                out.append(std_x[col] + lo)
            elif kind == "neg":
                _, col, hi = entry
                out.append(hi - std_x[col])
            else:
                _, cp, cn = entry
                out.append(std_x[cp] - std_x[cn])
        return tuple(out)


def _to_fractions(row: Sequence, width: int, what: str) -> list[Fraction]:
    if len(row) != width:
        raise LPError(f"{what} has length {len(row)}, expected {width}")
    return [Fraction(v) for v in row]


def solve_lp(
    c: Sequence,
    A_ub: Sequence[Sequence] | None = None,
    b_ub: Sequence | None = None,
    A_eq: Sequence[Sequence] | None = None,
    b_eq: Sequence | None = None,
    bounds: Sequence[tuple] | None = None,
    sense: str = "min",
) -> LPSolution:
    """Solve the LP exactly; see module docstring for the accepted form.

    Parameters
    ----------
    c:
        Objective coefficients (length ``n``).
    A_ub, b_ub:
        Inequality block ``A_ub x <= b_ub`` (optional).
    A_eq, b_eq:
        Equality block ``A_eq x == b_eq`` (optional).
    bounds:
        Per-variable ``(lo, hi)`` pairs; ``None`` entries mean
        unbounded on that side.  Defaults to ``(0, None)`` for every
        variable (the LP-standard nonnegativity convention).
    sense:
        ``"min"`` or ``"max"``.
    """
    if sense not in ("min", "max"):
        raise LPError(f"sense must be 'min' or 'max', got {sense!r}")
    n = len(c)
    c_frac = [Fraction(v) for v in c]
    if sense == "max":
        c_frac = [-v for v in c_frac]

    rows_ub = [_to_fractions(r, n, "A_ub row") for r in (A_ub or [])]
    rhs_ub = [Fraction(v) for v in (b_ub or [])]
    rows_eq = [_to_fractions(r, n, "A_eq row") for r in (A_eq or [])]
    rhs_eq = [Fraction(v) for v in (b_eq or [])]
    if len(rows_ub) != len(rhs_ub):
        raise LPError("A_ub / b_ub length mismatch")
    if len(rows_eq) != len(rhs_eq):
        raise LPError("A_eq / b_eq length mismatch")

    if bounds is None:
        bounds = [(0, None)] * n
    if len(bounds) != n:
        raise LPError("bounds length mismatch")

    # --- standardize variables ------------------------------------------
    std = _Standardizer(n_user=n)
    # Columns of the standardized constraint matrix, built as linear
    # combinations of user columns; we materialise by transforming rows.
    # Strategy: express user variable x_i in terms of std variables, then
    # substitute into every row and the objective.
    upper_rows: list[tuple[int, Fraction]] = []  # (std col, upper bound) extra rows
    col = 0
    subst: list[tuple[Fraction, list[tuple[int, Fraction]]]] = []
    # subst[i] = (constant, [(std_col, coeff), ...]) with x_i = constant + sum coeff*std
    for i, (lo, hi) in enumerate(bounds):
        lo_f = None if lo is None else Fraction(lo)
        hi_f = None if hi is None else Fraction(hi)
        if lo_f is not None and hi_f is not None and lo_f > hi_f:
            return LPSolution(status="infeasible")
        if lo_f is not None:
            std.mapping.append(("shift", col, lo_f))
            subst.append((lo_f, [(col, _ONE)]))
            if hi_f is not None:
                upper_rows.append((col, hi_f - lo_f))
            col += 1
        elif hi_f is not None:
            std.mapping.append(("neg", col, hi_f))
            subst.append((hi_f, [(col, -_ONE)]))
            col += 1
        else:
            std.mapping.append(("free", col, col + 1))
            subst.append((_ZERO, [(col, _ONE), (col + 1, -_ONE)]))
            col += 2
    std.n_std = col

    def transform_row(row: list[Fraction], rhs: Fraction) -> tuple[list[Fraction], Fraction]:
        out = [_ZERO] * std.n_std
        shift = _ZERO
        for i, coeff in enumerate(row):
            if coeff == 0:
                continue
            const, terms = subst[i]
            shift += coeff * const
            for sc, scoeff in terms:
                out[sc] += coeff * scoeff
        return out, rhs - shift

    std_ub: list[list[Fraction]] = []
    std_ub_rhs: list[Fraction] = []
    for row, rhs in zip(rows_ub, rhs_ub):
        r, b = transform_row(row, rhs)
        std_ub.append(r)
        std_ub_rhs.append(b)
    for scol, ub in upper_rows:
        r = [_ZERO] * std.n_std
        r[scol] = _ONE
        std_ub.append(r)
        std_ub_rhs.append(ub)
    std_eq: list[list[Fraction]] = []
    std_eq_rhs: list[Fraction] = []
    for row, rhs in zip(rows_eq, rhs_eq):
        r, b = transform_row(row, rhs)
        std_eq.append(r)
        std_eq_rhs.append(b)

    obj = [_ZERO] * std.n_std
    obj_shift = _ZERO
    for i, coeff in enumerate(c_frac):
        if coeff == 0:
            continue
        const, terms = subst[i]
        obj_shift += coeff * const
        for sc, scoeff in terms:
            obj[sc] += coeff * scoeff

    status, x_std, val = _solve_standard(obj, std_ub, std_ub_rhs, std_eq, std_eq_rhs)
    if status != "optimal":
        return LPSolution(status=status)
    x_user = std.recover(x_std)
    objective = val + obj_shift
    if sense == "max":
        objective = -objective
    return LPSolution(status="optimal", x=x_user, objective=objective)


def _solve_standard(
    c: list[Fraction],
    A_ub: list[list[Fraction]],
    b_ub: list[Fraction],
    A_eq: list[list[Fraction]],
    b_eq: list[Fraction],
) -> tuple[str, list[Fraction], Fraction]:
    """Solve ``min c^T x, A_ub x <= b_ub, A_eq x == b_eq, x >= 0`` exactly."""
    n = len(c)
    # Add slacks to inequality rows.
    n_slack = len(A_ub)
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for idx, (row, b) in enumerate(zip(A_ub, b_ub)):
        full = row + [_ZERO] * n_slack
        full[n + idx] = _ONE
        rows.append(full)
        rhs.append(b)
    for row, b in zip(A_eq, b_eq):
        rows.append(row + [_ZERO] * n_slack)
        rhs.append(b)
    m = len(rows)
    width = n + n_slack
    if m == 0:
        # Unconstrained nonnegative minimisation: bounded iff c >= 0.
        if any(v < 0 for v in c):
            return "unbounded", [], _ZERO
        return "optimal", [_ZERO] * n, _ZERO

    # Make RHS nonnegative.
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-v for v in rows[i]]
            rhs[i] = -rhs[i]

    # Artificial columns: one per row; kept through phase 2 (barred from
    # entering) so the final tableau retains a full basis inverse.
    total = width + m
    T: list[list[Fraction]] = []
    for i in range(m):
        T.append(rows[i] + [_ONE if j == i else _ZERO for j in range(m)] + [rhs[i]])
    basis = [width + i for i in range(m)]

    # Phase 1 objective: minimise sum of artificials.
    zrow = [_ZERO] * (total + 1)
    for j in range(width, total):
        zrow[j] = _ONE
    for i in range(m):
        # Eliminate basic (artificial) columns from the objective row.
        _axpy(zrow, T[i], -_ONE)
    T.append(zrow)

    status = _simplex_loop(T, basis, m, total, forbidden_from=None)
    if status == "unbounded":  # pragma: no cover - phase 1 is always bounded below by 0
        raise AssertionError("phase-1 LP cannot be unbounded")
    if -T[m][-1] != 0:  # objective = -zrow rhs
        return "infeasible", [], _ZERO

    # Drive remaining artificials out of the basis where possible.
    for i in range(m):
        if basis[i] >= width:
            pivot_col = next((j for j in range(width) if T[i][j] != 0), None)
            if pivot_col is not None:
                _pivot(T, basis, i, pivot_col)
            # else: the row is all-zero in structural columns (redundant
            # constraint); the artificial stays basic at value 0, which
            # is harmless as it can never become positive again.

    # Phase 2 objective.
    T[m] = [_ZERO] * (total + 1)
    for j in range(width):
        T[m][j] = c[j] if j < n else _ZERO
    for i in range(m):
        bj = basis[i]
        coeff = c[bj] if bj < n else _ZERO
        if coeff != 0:
            _axpy(T[m], T[i], -coeff)

    status = _simplex_loop(T, basis, m, total, forbidden_from=width)
    if status == "unbounded":
        return "unbounded", [], _ZERO

    x = [_ZERO] * width
    for i in range(m):
        if basis[i] < width:
            x[basis[i]] = T[i][-1]
    objective = -T[m][-1]
    return "optimal", x[:n], objective


def _axpy(target: list[Fraction], source: list[Fraction], scale: Fraction) -> None:
    if scale == 0:
        return
    for j, v in enumerate(source):
        if v != 0:
            target[j] += scale * v


def _pivot(T: list[list[Fraction]], basis: list[int], row: int, col: int) -> None:
    pivot_val = T[row][col]
    if pivot_val == 0:
        raise AssertionError("zero pivot")
    inv = _ONE / pivot_val
    T[row] = [v * inv for v in T[row]]
    prow = T[row]
    for i, other in enumerate(T):
        if i == row:
            continue
        factor = other[col]
        if factor != 0:
            T[i] = [ov - factor * pv for ov, pv in zip(other, prow)]
    basis[row] = col


def _simplex_loop(
    T: list[list[Fraction]],
    basis: list[int],
    m: int,
    total: int,
    forbidden_from: int | None,
) -> str:
    """Run Bland-rule simplex iterations on tableau ``T`` until done.

    ``forbidden_from`` bars columns with index >= that value from
    entering the basis (used to freeze artificial columns in phase 2).
    """
    limit = total if forbidden_from is None else forbidden_from
    zrow = T[m]
    while True:
        checkpoint("lp-pivot")
        enter = -1
        for j in range(limit):
            if zrow[j] < 0:
                enter = j
                break
        if enter < 0:
            return "optimal"
        leave = -1
        best: Fraction | None = None
        for i in range(m):
            coeff = T[i][enter]
            if coeff > 0:
                ratio = T[i][-1] / coeff
                if best is None or ratio < best or (ratio == best and basis[i] < basis[leave]):
                    best = ratio
                    leave = i
        if leave < 0:
            return "unbounded"
        _pivot(T, basis, leave, enter)
        zrow = T[m]
