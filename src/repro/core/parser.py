"""Textual front-end: parse statements like ``C[i,k] += A[i,j] * B[j,k]``.

This is the compiler-facing entry point envisioned in the paper's
discussion (§7: "compiler optimization to automatically block projective
nested loops").  The accepted grammar is a single update statement::

    output "[" indices "]"  ("+="|"=")  expr

    expr   := term (("*" | "+" | ",") term)*
    term   := name "[" indices "]" | name "[" "]"
    indices:= index ("," index)*
    index  := ident (("+"|"-") integer)?     # offsets: frontend only

Every identifier appearing inside brackets becomes a loop; the loop
order is the order of first appearance unless ``loop_order`` overrides
it.  Bounds are supplied separately (mapping loop name -> extent).

Two consumers share this grammar:

* :func:`parse_nest` — the strict projective path.  Each index slot
  must be a bare loop name; affine expressions (``i+j``, ``2*i``) and
  constant offsets (``i+1``) are rejected with a pointered error,
  since the paper's machinery covers the projective case only.
* :func:`parse_statement` — the token-level view ``repro.frontend``
  builds multi-statement programs from.  With ``allow_offsets=True``
  it additionally accepts constant-offset (stencil) accesses like
  ``A[i+1,j]``, recording the offsets for halo normalization.

Errors carry a caret (``^``) under the offending character whenever the
position is known, so CLI/HTTP callers can see *where* a statement went
wrong, not just why.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from .loopnest import ArrayRef, LoopNest, LoopNestError

__all__ = [
    "parse_nest",
    "parse_statement",
    "nest_from_statement",
    "ParsedStatement",
    "Access",
    "ParseError",
]


class ParseError(ValueError):
    """Raised on malformed statements, with position information.

    When the offending span is known the message ends with the
    statement and a caret under the first bad character::

        array 'A': index expression 'i+j' is not a bare loop name; ...
            C[i,k] += A[i+j]
                        ^
    """


_ACCESS = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\[([^\]]*)\]")
_INDEX = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*)\s*(?:([+-])\s*([0-9]+))?$")


def _pointered(message: str, statement: str, pos: int | None) -> str:
    """Append the statement with a caret under character ``pos``."""
    if pos is None or not statement.strip():
        return message
    line = statement.rstrip("\n")
    pos = max(0, min(pos, len(line)))
    return f"{message}\n    {line}\n    {' ' * pos}^"


@dataclass(frozen=True)
class Access:
    """One array access: ``A[i+1, j]`` -> indices ``(i, j)``, offsets ``(1, 0)``."""

    array: str
    indices: tuple[str, ...]
    offsets: tuple[int, ...]
    is_output: bool
    #: Char offset of the array name within the statement (caret anchor).
    position: int

    @property
    def has_offsets(self) -> bool:
        return any(self.offsets)


@dataclass(frozen=True)
class ParsedStatement:
    """The token-level view of one update statement.

    ``repro.frontend`` builds program IRs from this (keeping constant
    offsets for halo normalization); :func:`parse_nest` lowers it
    directly to a projective :class:`LoopNest` via
    :func:`nest_from_statement`.
    """

    text: str
    #: Output access first, then inputs in source order (no dedup).
    accesses: tuple[Access, ...]

    @property
    def output(self) -> Access:
        return self.accesses[0]

    @property
    def inputs(self) -> tuple[Access, ...]:
        return self.accesses[1:]

    def loop_names(self) -> tuple[str, ...]:
        """Loops in first-appearance order (output access first)."""
        seen: list[str] = []
        for acc in self.accesses:
            for ident in acc.indices:
                if ident not in seen:
                    seen.append(ident)
        return tuple(seen)


def _parse_indices(
    statement: str, array: str, blob: str, base: int, allow_offsets: bool
) -> tuple[tuple[str, ...], tuple[int, ...]]:
    """``"i+1, j"`` -> ``(("i", "j"), (1, 0))``, with pointered errors."""
    if not blob.strip():
        return (), ()
    names: list[str] = []
    offsets: list[int] = []
    cursor = 0
    for piece in blob.split(","):
        pos = base + cursor + (len(piece) - len(piece.lstrip()))
        cursor += len(piece) + 1
        ident = piece.strip()
        match = _INDEX.match(ident)
        if match is None:
            raise ParseError(
                _pointered(
                    f"array {array!r}: index expression {ident!r} is not a "
                    "bare loop name; only projective accesses are supported",
                    statement,
                    pos,
                )
            )
        name, sign, magnitude = match.group(1), match.group(2), match.group(3)
        offset = 0
        if sign is not None:
            if not allow_offsets:
                raise ParseError(
                    _pointered(
                        f"array {array!r}: index expression {ident!r} is not a "
                        "bare loop name; only projective accesses are supported "
                        "here (the repro.frontend program parser accepts "
                        "constant offsets and halo-normalizes them)",
                        statement,
                        pos,
                    )
                )
            offset = int(magnitude) if sign == "+" else -int(magnitude)
        names.append(name)
        offsets.append(offset)
    if len(set(names)) != len(names):
        raise ParseError(
            _pointered(f"array {array!r} repeats an index: {names}", statement, base)
        )
    return tuple(names), tuple(offsets)


def parse_statement(statement: str, *, allow_offsets: bool = False) -> ParsedStatement:
    """Tokenize one update statement (no loop-order/bounds resolution).

    Surrounding whitespace is tolerated; blank input raises a clear
    :class:`ParseError`.  ``allow_offsets=True`` admits constant-offset
    (stencil) accesses like ``A[i-1,j]``; the default is the strict
    projective grammar.
    """
    text = statement
    if not text.strip():
        raise ParseError(
            "empty statement; expected an update like 'C[i,j] += A[i,k] * B[k,j]'"
        )
    if "=" not in text:
        raise ParseError(
            _pointered(
                "statement must contain '=' or '+='", text, len(text.rstrip())
            )
        )
    lhs_text, sep, rhs_text = text.partition("+=")
    if not rhs_text:
        lhs_text, sep, rhs_text = text.partition("=")
    rhs_base = len(lhs_text) + len(sep)
    if not rhs_text.strip():
        raise ParseError(_pointered("empty right-hand side", text, rhs_base))

    lhs_matches = list(_ACCESS.finditer(lhs_text))
    if len(lhs_matches) != 1 or lhs_text[: lhs_matches[0].start()].strip():
        raise ParseError(
            _pointered(
                f"left-hand side {lhs_text.strip()!r} must be a single array access",
                text,
                len(lhs_text) - len(lhs_text.lstrip()),
            )
        )
    m = lhs_matches[0]
    names, offsets = _parse_indices(text, m.group(1), m.group(2), m.start(2), allow_offsets)
    accesses = [Access(m.group(1), names, offsets, True, m.start(1))]

    consumed_until = 0
    rhs_matches = list(_ACCESS.finditer(rhs_text))
    if not rhs_matches:
        raise ParseError(
            _pointered(
                f"no array accesses found on right-hand side {rhs_text.strip()!r}",
                text,
                rhs_base + (len(rhs_text) - len(rhs_text.lstrip())),
            )
        )
    for m in rhs_matches:
        gap = rhs_text[consumed_until : m.start()]
        if gap.strip() and not all(ch in "*+,()" or ch.isspace() for ch in gap):
            raise ParseError(
                _pointered(
                    f"unexpected token {gap.strip()!r} between accesses",
                    text,
                    rhs_base + consumed_until + (len(gap) - len(gap.lstrip())),
                )
            )
        consumed_until = m.end()
        names, offsets = _parse_indices(
            text, m.group(1), m.group(2), rhs_base + m.start(2), allow_offsets
        )
        accesses.append(Access(m.group(1), names, offsets, False, rhs_base + m.start(1)))
    trailing = rhs_text[consumed_until:]
    if trailing.strip() and not all(ch in "*+,()" or ch.isspace() for ch in trailing):
        raise ParseError(
            _pointered(
                f"unexpected trailing token {trailing.strip()!r}",
                text,
                rhs_base + consumed_until + (len(trailing) - len(trailing.lstrip())),
            )
        )
    return ParsedStatement(text=text, accesses=tuple(accesses))


def nest_from_statement(
    parsed: ParsedStatement,
    bounds: Mapping[str, int],
    name: str = "nest",
    loop_order: Sequence[str] | None = None,
) -> LoopNest:
    """Lower one tokenized projective statement to a :class:`LoopNest`.

    Repeated references to the same array with the same index tuple
    collapse (a no-op for the bounds); the same array with two different
    index tuples is a distinct phi and must be renamed by the caller.
    """
    unique: list[Access] = []
    seen: dict[str, Access] = {}
    for acc in parsed.accesses:
        if acc.has_offsets:
            raise ParseError(
                _pointered(
                    f"array {acc.array!r}: constant-offset access is not projective; "
                    "halo-normalize it first (repro.frontend does)",
                    parsed.text,
                    acc.position,
                )
            )
        existing = seen.get(acc.array)
        if existing is not None:
            if existing.indices != acc.indices:
                raise ParseError(
                    _pointered(
                        f"array {acc.array!r} accessed with two different index tuples "
                        f"({list(existing.indices)} vs {list(acc.indices)}); "
                        "give the accesses distinct names",
                        parsed.text,
                        acc.position,
                    )
                )
            continue
        seen[acc.array] = acc
        unique.append(acc)

    first_seen = parsed.loop_names()
    loops = list(loop_order) if loop_order is not None else list(first_seen)
    if sorted(loops) != sorted(first_seen):
        raise ParseError(
            f"loop_order {loops} does not match loops used in the statement "
            f"{list(first_seen)}"
        )

    missing = [l for l in loops if l not in bounds]
    if missing:
        raise ParseError(f"no bounds given for loops {missing}")
    position = {l: i for i, l in enumerate(loops)}

    arrays = tuple(
        ArrayRef(
            name=acc.array,
            support=tuple(sorted(position[ident] for ident in acc.indices)),
            is_output=acc.is_output,
        )
        for acc in unique
    )
    try:
        return LoopNest(
            name=name,
            loops=tuple(loops),
            bounds=tuple(int(bounds[l]) for l in loops),
            arrays=arrays,
        )
    except LoopNestError as exc:
        raise ParseError(str(exc)) from exc


def parse_nest(
    statement: str,
    bounds: Mapping[str, int],
    name: str = "nest",
    loop_order: Sequence[str] | None = None,
) -> LoopNest:
    """Parse ``statement`` into a :class:`LoopNest`.

    Parameters
    ----------
    statement:
        e.g. ``"C[i,k] += A[i,j] * B[j,k]"`` or the §6.5 pointwise
        convolution ``"Out[k,h,w,b] += Image[w,h,c,b] * Filter[k,c]"``.
    bounds:
        Extent of every loop appearing in the statement.
    name:
        Name for the resulting nest.
    loop_order:
        Optional explicit loop ordering; defaults to first-appearance
        order (output array first).

    Raises
    ------
    ParseError
        On syntax errors, non-projective accesses, or missing bounds —
        with a caret under the offending character where known.
    """
    return nest_from_statement(
        parse_statement(statement), bounds, name=name, loop_order=loop_order
    )
