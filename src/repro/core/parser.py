"""Textual front-end: parse statements like ``C[i,k] += A[i,j] * B[j,k]``.

This is the compiler-facing entry point envisioned in the paper's
discussion (§7: "compiler optimization to automatically block projective
nested loops").  The accepted grammar is a single update statement::

    output "[" indices "]"  ("+="|"=")  expr

    expr   := term (("*" | "+" | ",") term)*
    term   := name "[" indices "]" | name "[" "]"
    indices:= ident ("," ident)*

Every identifier appearing inside brackets becomes a loop; the loop
order is the order of first appearance unless ``loop_order`` overrides
it.  Bounds are supplied separately (mapping loop name -> extent).

Only *projective* accesses are accepted: each index slot must be a bare
loop name.  Affine expressions (``i+j``, ``2*i``) are rejected with a
pointered error message, since the paper's machinery (and this library)
covers the projective case only.
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

from .loopnest import ArrayRef, LoopNest, LoopNestError

__all__ = ["parse_nest", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed statements, with position information."""


_ACCESS = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\[([^\]]*)\]")
_IDENT = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def _parse_indices(array: str, blob: str, offset: int) -> list[str]:
    blob = blob.strip()
    if not blob:
        return []
    names = []
    for piece in blob.split(","):
        ident = piece.strip()
        if not _IDENT.match(ident):
            raise ParseError(
                f"array {array!r}: index expression {ident!r} (at char {offset}) is not a "
                "bare loop name; only projective accesses are supported"
            )
        names.append(ident)
    if len(set(names)) != len(names):
        raise ParseError(f"array {array!r} repeats an index: {names}")
    return names


def parse_nest(
    statement: str,
    bounds: Mapping[str, int],
    name: str = "nest",
    loop_order: Sequence[str] | None = None,
) -> LoopNest:
    """Parse ``statement`` into a :class:`LoopNest`.

    Parameters
    ----------
    statement:
        e.g. ``"C[i,k] += A[i,j] * B[j,k]"`` or the §6.5 pointwise
        convolution ``"Out[k,h,w,b] += Image[w,h,c,b] * Filter[k,c]"``.
    bounds:
        Extent of every loop appearing in the statement.
    name:
        Name for the resulting nest.
    loop_order:
        Optional explicit loop ordering; defaults to first-appearance
        order (output array first).

    Raises
    ------
    ParseError
        On syntax errors, non-projective accesses, or missing bounds.
    """
    if "=" not in statement:
        raise ParseError("statement must contain '=' or '+='")
    lhs_text, _, rhs_text = statement.partition("+=")
    if not rhs_text:
        lhs_text, _, rhs_text = statement.partition("=")
    if not rhs_text.strip():
        raise ParseError("empty right-hand side")

    accesses: list[tuple[str, list[str], bool]] = []
    seen_arrays: set[str] = set()

    lhs_matches = list(_ACCESS.finditer(lhs_text))
    if len(lhs_matches) != 1 or lhs_text[: lhs_matches[0].start()].strip():
        raise ParseError(f"left-hand side {lhs_text.strip()!r} must be a single array access")
    m = lhs_matches[0]
    accesses.append((m.group(1), _parse_indices(m.group(1), m.group(2), m.start(2)), True))
    seen_arrays.add(m.group(1))

    consumed_until = 0
    rhs_matches = list(_ACCESS.finditer(rhs_text))
    if not rhs_matches:
        raise ParseError(f"no array accesses found on right-hand side {rhs_text.strip()!r}")
    for m in rhs_matches:
        gap = rhs_text[consumed_until : m.start()].strip()
        if gap and not all(ch in "*+,()" or ch.isspace() for ch in gap):
            raise ParseError(f"unexpected token {gap!r} between accesses")
        consumed_until = m.end()
        arr_name = m.group(1)
        indices = _parse_indices(arr_name, m.group(2), m.start(2))
        if arr_name in seen_arrays:
            # Repeated reference to the same array with the same support is a
            # no-op for the bounds; with a different support it would be a
            # distinct phi and must be renamed by the caller.
            existing = next(a for a in accesses if a[0] == arr_name)
            if existing[1] != indices:
                raise ParseError(
                    f"array {arr_name!r} accessed with two different index tuples "
                    f"({existing[1]} vs {indices}); give the accesses distinct names"
                )
            continue
        seen_arrays.add(arr_name)
        accesses.append((arr_name, indices, False))
    trailing = rhs_text[consumed_until:].strip()
    if trailing and not all(ch in "*+,()" or ch.isspace() for ch in trailing):
        raise ParseError(f"unexpected trailing token {trailing!r}")

    # Loop ordering.
    first_seen: list[str] = []
    for _, indices, _ in accesses:
        for ident in indices:
            if ident not in first_seen:
                first_seen.append(ident)
    loops = list(loop_order) if loop_order is not None else first_seen
    if sorted(loops) != sorted(first_seen):
        raise ParseError(
            f"loop_order {loops} does not match loops used in the statement {first_seen}"
        )

    missing = [l for l in loops if l not in bounds]
    if missing:
        raise ParseError(f"no bounds given for loops {missing}")
    position = {l: i for i, l in enumerate(loops)}

    arrays = tuple(
        ArrayRef(
            name=arr_name,
            support=tuple(sorted(position[ident] for ident in indices)),
            is_output=is_out,
        )
        for arr_name, indices, is_out in accesses
    )
    try:
        return LoopNest(
            name=name,
            loops=tuple(loops),
            bounds=tuple(int(bounds[l]) for l in loops),
            arrays=arrays,
        )
    except LoopNestError as exc:
        raise ParseError(str(exc)) from exc
