"""Structured linear-program wrapper with exact and floating backends.

The rest of the library builds LPs through :class:`LinearProgram`,
which keeps named variables and named constraints so that duality
arguments (paper §5) and certificates can refer to rows symbolically.
Solving defaults to the exact rational simplex
(:mod:`repro.core.fraction_lp`); ``backend="scipy"`` uses HiGHS through
:func:`scipy.optimize.linprog`, and ``backend="both"`` runs the two and
asserts agreement — the configuration used throughout the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

import numpy as np

from .fraction_lp import LPError, LPSolution, solve_lp

__all__ = ["LinearProgram", "Constraint", "SolveReport"]

_FLOAT_TOL = 1e-7


@dataclass(frozen=True)
class Constraint:
    """A single named row ``sum_i coeffs[name] * x_name  (<= | >= | ==)  rhs``."""

    name: str
    coeffs: Mapping[str, Fraction]
    relation: str  # "<=", ">=", "=="
    rhs: Fraction

    def __post_init__(self) -> None:
        if self.relation not in ("<=", ">=", "=="):
            raise LPError(f"bad relation {self.relation!r}")


@dataclass(frozen=True)
class SolveReport:
    """Named view of an LP solution."""

    status: str
    objective: Fraction | None
    values: dict[str, Fraction]

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def __getitem__(self, name: str) -> Fraction:
        return self.values[name]


@dataclass
class LinearProgram:
    """Builder for small named LPs.

    Example
    -------
    >>> lp = LinearProgram(sense="max")
    >>> for v in ("l1", "l2", "l3"):
    ...     lp.add_variable(v, lo=0)
    >>> _ = lp.add_constraint("A1", {"l1": 1, "l3": 1}, "<=", 1)
    >>> _ = lp.add_constraint("A2", {"l1": 1, "l2": 1}, "<=", 1)
    >>> _ = lp.add_constraint("A3", {"l2": 1, "l3": 1}, "<=", 1)
    >>> lp.set_objective({"l1": 1, "l2": 1, "l3": 1})
    >>> lp.solve().objective
    Fraction(3, 2)
    """

    sense: str = "min"
    variables: list[str] = field(default_factory=list)
    bounds: dict[str, tuple[Fraction | None, Fraction | None]] = field(default_factory=dict)
    constraints: list[Constraint] = field(default_factory=list)
    objective: dict[str, Fraction] = field(default_factory=dict)

    def add_variable(self, name: str, lo=0, hi=None) -> str:
        """Register variable ``name`` with bounds ``[lo, hi]`` (None = unbounded)."""
        if name in self.bounds:
            raise LPError(f"duplicate variable {name!r}")
        self.variables.append(name)
        self.bounds[name] = (
            None if lo is None else Fraction(lo),
            None if hi is None else Fraction(hi),
        )
        return name

    def add_constraint(
        self, name: str, coeffs: Mapping[str, object], relation: str, rhs
    ) -> Constraint:
        unknown = [v for v in coeffs if v not in self.bounds]
        if unknown:
            raise LPError(f"constraint {name!r} references unknown variables {unknown}")
        con = Constraint(
            name=name,
            coeffs={k: Fraction(v) for k, v in coeffs.items()},
            relation=relation,
            rhs=Fraction(rhs),
        )
        self.constraints.append(con)
        return con

    def set_objective(self, coeffs: Mapping[str, object]) -> None:
        unknown = [v for v in coeffs if v not in self.bounds]
        if unknown:
            raise LPError(f"objective references unknown variables {unknown}")
        self.objective = {k: Fraction(v) for k, v in coeffs.items()}

    # -- matrix form -------------------------------------------------------

    def matrix_form(self):
        """Return ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` over self.variables order."""
        index = {v: i for i, v in enumerate(self.variables)}
        n = len(self.variables)
        c = [Fraction(0)] * n
        for v, coeff in self.objective.items():
            c[index[v]] = coeff
        A_ub: list[list[Fraction]] = []
        b_ub: list[Fraction] = []
        A_eq: list[list[Fraction]] = []
        b_eq: list[Fraction] = []
        for con in self.constraints:
            row = [Fraction(0)] * n
            for v, coeff in con.coeffs.items():
                row[index[v]] = coeff
            if con.relation == "<=":
                A_ub.append(row)
                b_ub.append(con.rhs)
            elif con.relation == ">=":
                A_ub.append([-v for v in row])
                b_ub.append(-con.rhs)
            else:
                A_eq.append(row)
                b_eq.append(con.rhs)
        bnds = [self.bounds[v] for v in self.variables]
        return c, A_ub, b_ub, A_eq, b_eq, bnds

    # -- solving -----------------------------------------------------------

    def solve(self, backend: str = "exact") -> SolveReport:
        """Solve and return a :class:`SolveReport`.

        ``backend``: ``"exact"`` (rational simplex), ``"scipy"``
        (HiGHS, float), or ``"both"`` (exact result, with a scipy
        agreement assertion — raises ``AssertionError`` on mismatch).
        """
        if backend not in ("exact", "scipy", "both"):
            raise LPError(f"unknown backend {backend!r}")
        if backend in ("exact", "both"):
            exact = self._solve_exact()
            if backend == "both":
                floating = self._solve_scipy()
                self._assert_agreement(exact, floating)
            return exact
        return self._solve_scipy()

    def _solve_exact(self) -> SolveReport:
        c, A_ub, b_ub, A_eq, b_eq, bnds = self.matrix_form()
        sol: LPSolution = solve_lp(
            c, A_ub or None, b_ub or None, A_eq or None, b_eq or None, bnds, sense=self.sense
        )
        if not sol.is_optimal:
            return SolveReport(status=sol.status, objective=None, values={})
        values = dict(zip(self.variables, sol.x))
        return SolveReport(status="optimal", objective=sol.objective, values=values)

    def _solve_scipy(self) -> SolveReport:
        from scipy.optimize import linprog

        c, A_ub, b_ub, A_eq, b_eq, bnds = self.matrix_form()
        sign = 1.0 if self.sense == "min" else -1.0
        res = linprog(
            c=[sign * float(v) for v in c],
            A_ub=np.array([[float(v) for v in r] for r in A_ub]) if A_ub else None,
            b_ub=np.array([float(v) for v in b_ub]) if b_ub else None,
            A_eq=np.array([[float(v) for v in r] for r in A_eq]) if A_eq else None,
            b_eq=np.array([float(v) for v in b_eq]) if b_eq else None,
            bounds=[
                (None if lo is None else float(lo), None if hi is None else float(hi))
                for lo, hi in bnds
            ],
            method="highs",
        )
        if res.status == 2:
            return SolveReport(status="infeasible", objective=None, values={})
        if res.status == 3:
            return SolveReport(status="unbounded", objective=None, values={})
        if not res.success:  # pragma: no cover - defensive
            return SolveReport(status=f"error:{res.status}", objective=None, values={})
        values = {
            v: Fraction(x).limit_denominator(10**9) for v, x in zip(self.variables, res.x)
        }
        obj = Fraction(float(sign * res.fun)).limit_denominator(10**9)
        return SolveReport(status="optimal", objective=obj, values=values)

    @staticmethod
    def _assert_agreement(exact: SolveReport, floating: SolveReport) -> None:
        if exact.status != floating.status:
            raise AssertionError(
                f"backend disagreement: exact={exact.status} scipy={floating.status}"
            )
        if exact.is_optimal:
            diff = abs(float(exact.objective) - float(floating.objective))
            if diff > _FLOAT_TOL * max(1.0, abs(float(exact.objective))):
                raise AssertionError(
                    f"objective disagreement: exact={float(exact.objective)} "
                    f"scipy={float(floating.objective)}"
                )

    # -- introspection -------------------------------------------------------

    def pretty(self) -> str:
        """Multi-line human-readable rendering of the program."""
        lines = [f"{self.sense} " + " + ".join(
            f"{coeff}*{v}" if coeff != 1 else v for v, coeff in self.objective.items()
        )]
        for con in self.constraints:
            terms = " + ".join(
                f"{coeff}*{v}" if coeff != 1 else v for v, coeff in con.coeffs.items()
            )
            lines.append(f"  [{con.name}] {terms} {con.relation} {con.rhs}")
        for v in self.variables:
            lo, hi = self.bounds[v]
            lines.append(
                f"  {lo if lo is not None else '-inf'} <= {v} "
                f"<= {hi if hi is not None else 'inf'}"
            )
        return "\n".join(lines)
