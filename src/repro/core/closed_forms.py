"""Hand-derived closed forms from the paper's §6 examples.

These formulas are written down independently of the general LP
machinery so the test-suite and the benchmark harness can check the
general pipeline *against the paper's own algebra*:

* §6.1 matmul — tile exponent ``min(3/2, 1 + min(beta))`` and the
  communication bound ``max(L1 L2 L3 / sqrt(M), L1 L2, L2 L3, L1 L3)``;
* §6.2 tensor contraction — the gamma-reduction to the matmul LP:
  ``min(3/2, 1 + min(B_left, B_shared, B_right))`` where ``B_g`` sums
  the betas of index group ``g``;
* §6.3 n-body — tile size ``min(M**2, L1*M, L2*M, L1*L2)`` and traffic
  ``min(L1 L2 / M, L2, L1, M)`` with the small-footprint caveat.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from ..util.rationals import log_ratio, pow_fraction

__all__ = [
    "matmul_tile_exponent",
    "matmul_comm_lower_bound",
    "matmul_optimal_blocks",
    "contraction_tile_exponent",
    "nbody_max_tile_size",
    "nbody_comm_lower_bound",
]


def matmul_tile_exponent(L1: int, L2: int, L3: int, M: int) -> Fraction:
    """§6.1: ``min(3/2, 1 + beta_min)`` where ``beta_min = min_i log_M L_i``.

    Derivation: with all betas >= 1/2 the unconstrained optimum
    ``lambda = (1/2, 1/2, 1/2)`` is feasible (value 3/2); otherwise the
    smallest loop saturates (``lambda_j = beta_j``) and the two capacity
    rows through it give value ``1 + beta_j``.  If *two or more* bounds
    are small the optimum is ``min over pairs`` — covered by evaluating
    all three single-loop caps and the all-loops cap, exactly the
    pieces the multiparametric analysis produces.
    """
    betas = [log_ratio(L, M) for L in (L1, L2, L3)]
    b1, b2, b3 = betas
    # Exactly the dual-vertex pieces (see repro.core.mplp): pairwise
    # sums like b1+b2 are NOT valid upper bounds — the corresponding
    # dual point violates the covering row of the third loop (a tile
    # with sides (L1, L2, *) still grows unboundedly in x3 only until
    # the A1/A3 footprints bind, which is what the 1+b pieces encode).
    candidates = [
        Fraction(3, 2),
        1 + b1,
        1 + b2,
        1 + b3,
        b1 + b2 + b3,
    ]
    return min(candidates)


def matmul_comm_lower_bound(L1: int, L2: int, L3: int, M: int) -> float:
    """§6.1's final closed form, extended with the all-fits term ``M``.

    The paper states ``max(L1 L2 L3/sqrt M, L1 L2, L2 L3, L1 L3)``; the
    complete piece list (one per dual vertex, cf. the k = b1+b2+b3
    piece) adds ``M`` — the value the §4 machinery reports when the
    whole iteration space is a single tile.  In that regime the §6.3
    caveat applies: the true cost is the footprint, not ``M`` — use
    :class:`repro.core.bounds.CommunicationLowerBound` for the
    always-valid composite.
    """
    return max(
        L1 * L2 * L3 / math.sqrt(M),
        float(L1 * L2),
        float(L2 * L3),
        float(L1 * L3),
        float(M),
    )


def matmul_optimal_blocks(L1: int, L2: int, L3: int, M: int) -> tuple[float, float, float]:
    """A §6.1-style optimal fractional block triple.

    Sorted so the smallest loop (say ``L3 <= sqrt(M)``) gets block
    ``L3`` and the complementary dimensions get ``M/L3`` and ``L3`` —
    the paper's ``(M/L3) x L3 x L3`` tile; for all-large bounds returns
    the classical ``sqrt(M)`` cube.  (Only one member of the alpha
    family; the general machinery enumerates the rest.)
    """
    Ls = [L1, L2, L3]
    smallest = min(range(3), key=lambda i: Ls[i])
    root = math.sqrt(M)
    if Ls[smallest] >= root:
        return (root, root, root)
    small = float(Ls[smallest])
    blocks = [small] * 3
    # One of the two capacity rows through the small loop is saturated
    # by the big block M / L_small.
    big_dim = next(i for i in range(3) if i != smallest)
    blocks[big_dim] = M / small
    return tuple(blocks)  # type: ignore[return-value]


def contraction_tile_exponent(
    left: Sequence[int], shared: Sequence[int], right: Sequence[int], M: int
) -> Fraction:
    """§6.2: contraction optimum via the gamma-reduction to matmul.

    ``gamma_1 = sum of left lambdas``, etc.; the reduced LP is the
    matmul LP with ``beta`` caps ``B_left, B_shared, B_right`` (sums of
    group betas), so the optimum is
    ``min(3/2, 1 + min(B_left, B_shared, B_right), pairwise / total
    sums)`` exactly as in :func:`matmul_tile_exponent`.
    """
    B = [
        sum((log_ratio(L, M) for L in group), start=Fraction(0))
        for group in (left, shared, right)
    ]
    b1, b2, b3 = B
    # Same piece list as matmul (the gamma-reduction maps group beta
    # sums onto the matmul betas; pairwise sums remain dual-infeasible).
    candidates = [
        Fraction(3, 2),
        1 + b1,
        1 + b2,
        1 + b3,
        b1 + b2 + b3,
    ]
    return min(candidates)


def nbody_max_tile_size(L1: int, L2: int, M: int) -> int:
    """§6.3: ``min(M**2, L1*M, L2*M, L1*L2)``."""
    return min(M * M, L1 * M, L2 * M, L1 * L2)


def nbody_comm_lower_bound(L1: int, L2: int, M: int) -> float:
    """§6.3 communication bound in words: ``max(L1 L2/M, L1, L2, M)``.

    Derivation: comm >= (#operations / max-tile-size) * M, and the tile
    size is ``min(M^2, L1 M, L2 M, L1 L2)``, so the *binding* (smallest)
    tile term yields the *largest* comm term — the four candidates are
    ``L1 L2/M, L2, L1, M`` respectively and the bound is their max.
    (The paper lists the same four candidates with the min-tile pairing
    spelled out.)  The trailing ``M`` term carries §6.3's caveat: when
    everything fits in cache the true cost is the footprint, not ``M``.
    """
    return max(L1 * L2 / M, float(L1), float(L2), float(M))


def contraction_comm_lower_bound(
    left: Sequence[int], shared: Sequence[int], right: Sequence[int], M: int
) -> float:
    """Communication bound ``prod(L) * M**(1-k)`` from the §6.2 exponent."""
    k = contraction_tile_exponent(left, shared, right, M)
    ops = 1
    for group in (left, shared, right):
        for L in group:
            ops *= L
    return ops * pow_fraction(M, Fraction(1) - k)
