"""Bounds-independent canonical form of a projective loop nest (plan keying).

The LP machinery of the paper — the HBL LP (§3), the tiling LP (5.1),
and its multiparametric value function (§7) — depends only on the nest's
*projection pattern*: the 0/1 support matrix, up to renaming of loops
(columns) and arrays (rows).  Loop bounds enter solely through the
parameter vector ``beta_i = log_M L_i``.  This is the invariant
[CDK+13]/[DR16] exploit, and it is exactly what a plan cache should key
on: structurally identical queries (a 512x512x64 matmul, a transposed
4096x16x4096 matmul, a fully-connected layer) must share one solve.

:func:`canonicalize` reduces a :class:`LoopNest` to a
:class:`CanonicalForm` — a renaming-invariant normal form of the
support matrix (rows sorted, columns ordered canonically) — plus the
loop/array orders that realise it, so parametric answers computed on
the canonical structure can be mapped back to the query nest.

Algorithm: iterative signature refinement (Weisfeiler–Lehman style on
the loop/array incidence bigraph) partitions the loops into ordered
cells — the cell order is itself structure-derived, hence invariant —
and the lexicographically least matrix is then taken over the
permutations that respect the cells.  For every realistic nest the
cells are near-singletons and the search is a handful of candidates;
a cap guards against pathological fully-symmetric structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from math import factorial, prod

from .loopnest import ArrayRef, LoopNest, LoopNestError

__all__ = [
    "CanonicalForm",
    "Canonicalization",
    "CanonicalizationError",
    "canonicalize",
    "canonical_key",
]

#: Upper bound on within-cell permutations the exact search will try.
#: ``prod(|cell|!)`` exceeds this only for near-fully-symmetric patterns
#: far outside the catalog; those fall back to refinement order (still
#: deterministic, possibly not permutation-minimal).
SEARCH_CAP = 40_320  # 8!


class CanonicalizationError(LoopNestError):
    """Raised for inputs that cannot be canonicalized."""


@dataclass(frozen=True)
class CanonicalForm:
    """A projection pattern in normal form.

    ``rows`` is the sorted multiset of array supports expressed in
    canonical loop positions — the nest's support matrix with columns
    permuted to the lexicographic minimum and rows sorted.  Two nests
    have equal forms iff their patterns differ only by loop/array
    renaming (bounds and output flags are deliberately excluded: neither
    enters LP (5.1) or its dual).
    """

    depth: int
    rows: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise CanonicalizationError("depth must be nonnegative")
        for row in self.rows:
            if list(row) != sorted(set(row)):
                raise CanonicalizationError(f"row {row} must be strictly increasing")
            if row and not 0 <= row[0] <= row[-1] < self.depth:
                raise CanonicalizationError(f"row {row} out of range for depth {self.depth}")
        if list(self.rows) != sorted(self.rows):
            raise CanonicalizationError("rows must be sorted")

    @property
    def num_arrays(self) -> int:
        return len(self.rows)

    def key(self) -> str:
        """Stable string form, usable as a JSON cache key.

        Example: matmul (any bounds, any names) -> ``"d3:0.1|0.2|1.2"``.
        """
        body = "|".join(".".join(str(i) for i in row) for row in self.rows)
        return f"d{self.depth}:{body}"

    @classmethod
    def from_key(cls, key: str) -> CanonicalForm:
        """Inverse of :meth:`key`."""
        try:
            head, _, body = key.partition(":")
            depth = int(head.removeprefix("d"))
            rows = tuple(
                tuple(int(p) for p in chunk.split(".") if p != "")
                for chunk in body.split("|")
            )
        except ValueError as exc:
            raise CanonicalizationError(f"malformed canonical key {key!r}") from exc
        return cls(depth=depth, rows=rows)

    def to_nest(self, bounds: tuple[int, ...] | None = None, name: str = "canonical") -> LoopNest:
        """Materialise a :class:`LoopNest` with generic names.

        The default bounds are all 2 — callers doing structure-only work
        (mpLP, dual-vertex enumeration) ignore them.
        """
        if bounds is None:
            bounds = tuple(2 for _ in range(self.depth))
        return LoopNest(
            name=name,
            loops=tuple(f"x{i}" for i in range(self.depth)),
            bounds=bounds,
            arrays=tuple(ArrayRef(name=f"A{j}", support=row) for j, row in enumerate(self.rows)),
        )


@dataclass(frozen=True)
class Canonicalization:
    """A canonical form plus the witness renaming.

    ``loop_order[k]`` is the original loop position sitting at canonical
    position ``k``; ``array_order[r]`` is the original array index of
    canonical row ``r``.  ``exact`` records whether the lexicographic
    minimum was certified (False only past :data:`SEARCH_CAP`).
    """

    form: CanonicalForm
    loop_order: tuple[int, ...]
    array_order: tuple[int, ...]
    exact: bool

    def to_canonical(self, per_loop: tuple) -> tuple:
        """Reorder a per-original-loop vector into canonical positions."""
        return tuple(per_loop[i] for i in self.loop_order)

    def from_canonical(self, per_canonical: tuple) -> tuple:
        """Reorder a per-canonical-position vector back to original loops."""
        out = [None] * len(self.loop_order)
        for k, i in enumerate(self.loop_order):
            out[i] = per_canonical[k]
        return tuple(out)


def _refine_cells(supports: list[frozenset[int]], depth: int) -> list[list[int]]:
    """Partition loop positions into ordered cells by iterated signatures.

    The initial signature of a loop is the sorted multiset of sizes of
    the rows containing it; refinement folds in the neighbours'
    signatures until the partition stabilises.  Signatures are built
    from structure only, so the resulting ordered partition is invariant
    under loop/array renaming.
    """
    sig: list[tuple] = [
        tuple(sorted(len(row) for row in supports if i in row)) for i in range(depth)
    ]
    for _ in range(depth):
        ranks = {s: r for r, s in enumerate(sorted(set(sig)))}
        ranked = [ranks[s] for s in sig]
        new_sig = [
            (
                ranked[i],
                tuple(
                    sorted(
                        tuple(sorted(ranked[j] for j in row if j != i))
                        for row in supports
                        if i in row
                    )
                ),
            )
            for i in range(depth)
        ]
        if len(set(new_sig)) == len(set(sig)) and all(
            (sig[i] == sig[j]) == (new_sig[i] == new_sig[j])
            for i in range(depth)
            for j in range(i + 1, depth)
        ):
            break
        sig = new_sig
    cells: dict[tuple, list[int]] = {}
    for i in range(depth):
        cells.setdefault(sig[i], []).append(i)
    return [cells[s] for s in sorted(cells)]


def _rows_for_order(
    supports: list[frozenset[int]], order: tuple[int, ...]
) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...]]:
    """Rows (sorted) and the witnessing array order for a loop order."""
    inverse = [0] * len(order)
    for new_pos, old_pos in enumerate(order):
        inverse[old_pos] = new_pos
    mapped = [(tuple(sorted(inverse[i] for i in sup)), j) for j, sup in enumerate(supports)]
    mapped.sort()
    return tuple(row for row, _ in mapped), tuple(j for _, j in mapped)


def canonicalize(nest: LoopNest) -> Canonicalization:
    """Compute the canonical form of ``nest``'s projection pattern.

    Invariant under loop permutation/renaming, array permutation/
    renaming, bound changes, and output-flag changes; structurally
    distinct patterns yield distinct forms (the form itself is a valid
    pattern, so equality of forms is equality of patterns).
    """
    supports = [frozenset(arr.support) for arr in nest.arrays]
    depth = nest.depth
    cells = _refine_cells(supports, depth)
    n_candidates = prod(factorial(len(c)) for c in cells)
    exact = n_candidates <= SEARCH_CAP
    if exact:
        candidates = (
            tuple(i for cell in perm for i in cell)
            for perm in product(*(permutations(cell) for cell in cells))
        )
    else:
        # Fully-symmetric pattern past the cap: refinement order only
        # (deterministic, but not guaranteed minimal across renamings).
        candidates = iter([tuple(i for cell in cells for i in cell)])
    best_rows = None
    best_order = None
    best_arrays = None
    for order in candidates:
        rows, array_order = _rows_for_order(supports, order)
        if best_rows is None or rows < best_rows:
            best_rows, best_order, best_arrays = rows, order, array_order
    assert best_rows is not None and best_order is not None and best_arrays is not None
    return Canonicalization(
        form=CanonicalForm(depth=depth, rows=best_rows),
        loop_order=best_order,
        array_order=best_arrays,
        exact=exact,
    )


def canonical_key(nest: LoopNest) -> str:
    """Shorthand for ``canonicalize(nest).form.key()``."""
    return canonicalize(nest).form.key()
