"""General numpy executor: any projective nest, tile by tile.

Each tile's work is one ``numpy.einsum`` over the tile's array slices
(views — no copies), with subscripts synthesised from the supports.
The execution order over tiles follows the analytic executor's loop
order, so measured traffic assumptions and computed results line up.

This is the "numpy/C backend" the reproduction hint calls for: per-tile
compute runs at BLAS/einsum speed while the tile structure — the
paper's contribution — stays under library control.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.loopnest import LoopNest, LoopNestError
from ..core.tiling import TileShape
from ..simulate.footprint import validate_order
from .naive import _check_arrays

__all__ = ["ExecutionStats", "einsum_spec", "execute_tiled", "execute_untiled"]


@dataclass(frozen=True)
class ExecutionStats:
    """What one tiled execution did."""

    tiles_executed: int
    multiply_adds: int
    einsum_spec: str


def einsum_spec(nest: LoopNest) -> str:
    """The einsum subscript string for a nest, inputs -> output.

    Loops are assigned letters a, b, c, ... in nest order; e.g. matmul
    (C[x1,x3] += A[x1,x2] B[x2,x3]) yields ``"ab,bc->ac"``.
    """
    if nest.depth > len(string.ascii_lowercase):
        raise LoopNestError("too many loops for einsum letters")
    letters = string.ascii_lowercase[: nest.depth]
    output = next(a for a in nest.arrays if a.is_output)
    inputs = [a for a in nest.arrays if not a.is_output]
    in_specs = [
        "".join(letters[i] for i in arr.support) for arr in inputs
    ]
    out_spec = "".join(letters[i] for i in output.support)
    return ",".join(in_specs) + "->" + out_spec


def _tile_starts(L: int, b: int) -> list[tuple[int, int]]:
    return [(s, min(s + b, L)) for s in range(0, L, b)]


def execute_tiled(
    nest: LoopNest,
    arrays: Mapping[str, np.ndarray],
    tile: TileShape,
    order: Sequence[int] | None = None,
) -> ExecutionStats:
    """Execute the nest tile-by-tile with per-tile einsum accumulation.

    Mutates the output array in place and returns execution statistics.
    """
    _check_arrays(nest, arrays)
    order = validate_order(nest, order)
    spec = einsum_spec(nest)
    output_ref = next(a for a in nest.arrays if a.is_output)
    inputs = [a for a in nest.arrays if not a.is_output]
    out = arrays[output_ref.name]

    ranges_per_loop = [_tile_starts(nest.bounds[i], tile.blocks[i]) for i in range(nest.depth)]
    tiles = 0
    madds = 0
    # Iterate the tile grid in the requested loop order (outermost first).
    indices = [0] * nest.depth

    def recurse(depth: int) -> None:
        nonlocal tiles, madds
        if depth == nest.depth:
            bounds = [ranges_per_loop[i][indices[i]] for i in range(nest.depth)]
            operands = []
            for arr in inputs:
                slicer = tuple(slice(bounds[i][0], bounds[i][1]) for i in arr.support)
                operands.append(arrays[arr.name][slicer])
            out_slicer = tuple(
                slice(bounds[i][0], bounds[i][1]) for i in output_ref.support
            )
            out[out_slicer] += np.einsum(spec, *operands, optimize=True)
            tiles += 1
            vol = 1
            for lo, hi in bounds:
                vol *= hi - lo
            madds += vol
            return
        loop = order[depth]
        for t in range(len(ranges_per_loop[loop])):
            indices[loop] = t
            recurse(depth + 1)

    recurse(0)
    return ExecutionStats(tiles_executed=tiles, multiply_adds=madds, einsum_spec=spec)


def execute_untiled(
    nest: LoopNest, arrays: Mapping[str, np.ndarray]
) -> ExecutionStats:
    """Whole-problem einsum in one shot (the BLAS-style baseline)."""
    _check_arrays(nest, arrays)
    spec = einsum_spec(nest)
    output_ref = next(a for a in nest.arrays if a.is_output)
    inputs = [a for a in nest.arrays if not a.is_output]
    operands = [arrays[a.name] for a in inputs]
    arrays[output_ref.name][...] += np.einsum(spec, *operands, optimize=True)
    return ExecutionStats(
        tiles_executed=1, multiply_adds=nest.num_operations, einsum_spec=spec
    )
