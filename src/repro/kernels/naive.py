"""Pure-Python reference kernels (oracles for the numpy backend).

Executes a projective nest with multiply-accumulate semantics::

    out[phi_out(x)] += prod_j in_j[phi_j(x)]        for every point x

one iteration point at a time.  Deliberately slow and obviously
correct — the numpy tiled executor is tested against this on small
instances.  Exactly one output array is required (the common case for
every catalog problem; multi-output nests are analysable for bounds but
not executable by this semiring backend).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.loopnest import LoopNest, LoopNestError

__all__ = ["allocate_arrays", "execute_reference"]


def allocate_arrays(
    nest: LoopNest, rng: np.random.Generator | None = None, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Allocate input arrays (random) and the output array (zeros).

    Shapes follow each access's support: array ``j`` has one axis per
    supported loop, extents taken from the nest bounds.
    """
    rng = rng or np.random.default_rng(0)
    arrays: dict[str, np.ndarray] = {}
    for arr in nest.arrays:
        shape = tuple(nest.bounds[i] for i in arr.support)
        if arr.is_output:
            arrays[arr.name] = np.zeros(shape, dtype=dtype)
        else:
            arrays[arr.name] = rng.standard_normal(shape).astype(dtype)
    return arrays


def _check_arrays(nest: LoopNest, arrays: Mapping[str, np.ndarray]) -> None:
    outputs = [a for a in nest.arrays if a.is_output]
    if len(outputs) != 1:
        raise LoopNestError(
            f"executable kernels need exactly one output array, nest has {len(outputs)}"
        )
    for arr in nest.arrays:
        if arr.name not in arrays:
            raise LoopNestError(f"missing array {arr.name!r}")
        expected = tuple(nest.bounds[i] for i in arr.support)
        if arrays[arr.name].shape != expected:
            raise LoopNestError(
                f"array {arr.name!r} has shape {arrays[arr.name].shape}, expected {expected}"
            )


def execute_reference(nest: LoopNest, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
    """Run the multiply-accumulate nest point-by-point; returns the output.

    Guarded to small iteration spaces (inherits the
    :meth:`LoopNest.iteration_points` limit).
    """
    _check_arrays(nest, arrays)
    output_ref = next(a for a in nest.arrays if a.is_output)
    inputs = [a for a in nest.arrays if not a.is_output]
    out = arrays[output_ref.name]
    for point in nest.iteration_points():
        value = 1.0
        for arr in inputs:
            value *= arrays[arr.name][arr.project(point)]
        out[output_ref.project(point)] += value
    return out
