"""Executable numpy kernels: general einsum-tiled executor + specialised benches."""

from .codegen import compile_kernel, generate_tiled_source, run_generated
from .einsum_exec import ExecutionStats, einsum_spec, execute_tiled, execute_untiled
from .naive import allocate_arrays, execute_reference
from .tiled import (
    blocked_matmul,
    blocked_nbody,
    blocked_pointwise_conv,
    naive_matmul,
    naive_nbody,
    naive_pointwise_conv,
)

__all__ = [
    "compile_kernel",
    "generate_tiled_source",
    "run_generated",
    "allocate_arrays",
    "execute_reference",
    "ExecutionStats",
    "einsum_spec",
    "execute_tiled",
    "execute_untiled",
    "blocked_matmul",
    "naive_matmul",
    "blocked_nbody",
    "naive_nbody",
    "blocked_pointwise_conv",
    "naive_pointwise_conv",
]
