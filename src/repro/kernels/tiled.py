"""Hand-specialised numpy kernels for the timing benchmarks (E12).

Three workloads the paper motivates, each in a *blocked* variant whose
block sizes come straight from :func:`repro.core.tiling.solve_tiling`
and a baseline variant, so the benchmark harness can report the shape
of blocked-vs-baseline timing alongside the word-count story:

* :func:`blocked_matmul` — per-tile ``A_blk @ B_blk`` accumulation;
* :func:`blocked_nbody` — per-tile broadcasting pairwise interaction;
* :func:`blocked_pointwise_conv` — §6.5 as a blocked image-matrix
  product over channel tiles.

Python loop overhead means wall-time gains only appear once tiles carry
enough arithmetic; the benchmarks pick sizes accordingly and the README
documents the caveat (absolute times are numpy-bound, the *shape* of
the comparison is what reproduces).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "blocked_matmul",
    "naive_matmul",
    "blocked_nbody",
    "naive_nbody",
    "blocked_pointwise_conv",
    "naive_pointwise_conv",
]


def naive_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Whole-problem ``A @ B`` (BLAS handles blocking internally)."""
    return A @ B


def blocked_matmul(A: np.ndarray, B: np.ndarray, b1: int, b2: int, b3: int) -> np.ndarray:
    """Matmul as an explicit b1 x b2 x b3 tiled triple loop.

    Block sizes are the paper's tile dimensions for loops (x1, x2, x3) —
    (rows of A, contraction, cols of B).
    """
    L1, L2 = A.shape
    L2b, L3 = B.shape
    if L2 != L2b:
        raise ValueError(f"inner dimensions disagree: {A.shape} x {B.shape}")
    if min(b1, b2, b3) < 1:
        raise ValueError("block sizes must be positive")
    C = np.zeros((L1, L3), dtype=np.result_type(A, B))
    for i0 in range(0, L1, b1):
        i1 = min(i0 + b1, L1)
        for k0 in range(0, L3, b3):
            k1 = min(k0 + b3, L3)
            acc = C[i0:i1, k0:k1]
            for j0 in range(0, L2, b2):
                j1 = min(j0 + b2, L2)
                acc += A[i0:i1, j0:j1] @ B[j0:j1, k0:k1]
    return C


def naive_nbody(
    P: np.ndarray,
    Q: np.ndarray,
    interaction: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """All-pairs interaction F[i] = sum_j f(P[i], Q[j]) in one broadcast."""
    f = interaction or _default_interaction
    return f(P[:, None], Q[None, :]).sum(axis=1)


def blocked_nbody(
    P: np.ndarray,
    Q: np.ndarray,
    b1: int,
    b2: int,
    interaction: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """All-pairs interaction evaluated over b1 x b2 tiles of (i, j)."""
    if min(b1, b2) < 1:
        raise ValueError("block sizes must be positive")
    f = interaction or _default_interaction
    F = np.zeros_like(P)
    n1, n2 = len(P), len(Q)
    for i0 in range(0, n1, b1):
        i1 = min(i0 + b1, n1)
        acc = F[i0:i1]
        for j0 in range(0, n2, b2):
            j1 = min(j0 + b2, n2)
            acc += f(P[i0:i1, None], Q[None, j0:j1]).sum(axis=1)
    return F


def _default_interaction(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    # A softened inverse-square law: smooth, no singularities at p == q.
    return (p - q) / (1.0 + (p - q) ** 2)


def naive_pointwise_conv(image: np.ndarray, filt: np.ndarray) -> np.ndarray:
    """§6.5 pointwise convolution: Out[k,h,w,b] = sum_c Image[w,h,c,b] Filter[k,c].

    Shapes: image (W, H, C, B), filt (K, C) -> out (K, H, W, B).
    """
    return np.einsum("whcb,kc->khwb", image, filt, optimize=True)


def blocked_pointwise_conv(
    image: np.ndarray, filt: np.ndarray, bc: int, bk: int
) -> np.ndarray:
    """Pointwise conv blocked over the channel (c) and filter (k) loops.

    The spatial/batch loops stream; c and k are the loops the tiling LP
    shortens when C is small (the common CNN regime the paper targets).
    """
    if min(bc, bk) < 1:
        raise ValueError("block sizes must be positive")
    W, H, C, B = image.shape
    K, Cf = filt.shape
    if C != Cf:
        raise ValueError(f"channel dims disagree: image C={C}, filter C={Cf}")
    out = np.zeros((K, H, W, B), dtype=np.result_type(image, filt))
    for k0 in range(0, K, bk):
        k1 = min(k0 + bk, K)
        for c0 in range(0, C, bc):
            c1 = min(c0 + bc, C)
            out[k0:k1] += np.einsum(
                "whcb,kc->khwb", image[:, :, c0:c1, :], filt[k0:k1, c0:c1], optimize=True
            )
    return out
