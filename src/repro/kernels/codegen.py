"""Tiled-loop code generation: the §7 compiler pass, made literal.

Given a nest and a tile, emit runnable Python/numpy source implementing
the blocked loop nest — outer loops over tile origins in a chosen
order, one einsum per tile — and compile it to a callable.  This is the
artefact a compiler integration would produce (cf. the paper's remark
on icc's ``--opt-matmul``): the *structure* is general, only block
sizes come from the analysis.

Generated code is deliberately human-readable; examples and tests
exercise it against the reference executor.
"""

from __future__ import annotations

import string
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.loopnest import LoopNest, LoopNestError
from ..core.tiling import TileShape
from ..simulate.footprint import validate_order

__all__ = ["generate_tiled_source", "compile_kernel"]


def _slice_expr(nest: LoopNest, support: Sequence[int]) -> str:
    parts = [f"{nest.loops[i]}0:{nest.loops[i]}1" for i in support]
    return ", ".join(parts) if parts else "..."


def generate_tiled_source(
    nest: LoopNest,
    tile: TileShape,
    order: Sequence[int] | None = None,
    func_name: str = "tiled_kernel",
) -> str:
    """Emit Python source for the blocked execution of ``nest``.

    The function signature lists the output array first, then inputs in
    nest order; it mutates the output in place and returns it.
    """
    order = validate_order(nest, order)
    outputs = [a for a in nest.arrays if a.is_output]
    if len(outputs) != 1:
        raise LoopNestError("code generation needs exactly one output array")
    output = outputs[0]
    inputs = [a for a in nest.arrays if not a.is_output]
    if nest.depth > len(string.ascii_lowercase):
        raise LoopNestError("too many loops for einsum letters")
    letters = string.ascii_lowercase[: nest.depth]
    spec_in = ",".join("".join(letters[i] for i in arr.support) for arr in inputs)
    spec = f"{spec_in}->" + "".join(letters[i] for i in output.support)

    args = ", ".join([output.name] + [a.name for a in inputs])
    lines = [
        f"def {func_name}({args}):",
        f'    """Blocked {nest.name}: tile {tile.blocks}, loop order '
        f'{tuple(nest.loops[i] for i in order)}."""',
    ]
    indent = "    "
    for depth, loop in enumerate(order):
        name = nest.loops[loop]
        L = nest.bounds[loop]
        b = tile.blocks[loop]
        pad = indent * (depth + 1)
        lines.append(f"{pad}for {name}0 in range(0, {L}, {b}):")
        lines.append(f"{pad}    {name}1 = min({name}0 + {b}, {L})")
    body_pad = indent * (nest.depth + 1)
    operand_exprs = [f"{arr.name}[{_slice_expr(nest, arr.support)}]" for arr in inputs]
    out_expr = f"{output.name}[{_slice_expr(nest, output.support)}]"
    lines.append(
        f"{body_pad}{out_expr} += _einsum({spec!r}, "
        + ", ".join(operand_exprs)
        + ", optimize=True)"
    )
    lines.append(f"    return {output.name}")
    return "\n".join(lines) + "\n"


def compile_kernel(
    nest: LoopNest,
    tile: TileShape,
    order: Sequence[int] | None = None,
    func_name: str = "tiled_kernel",
) -> Callable[..., np.ndarray]:
    """Compile the generated source into a callable.

    The callable takes arrays positionally (output first, inputs in
    nest order) or can be applied to an array mapping via
    ``kernel(**arrays)`` after renaming — tests use positional form.
    """
    source = generate_tiled_source(nest, tile, order=order, func_name=func_name)
    namespace: dict[str, object] = {"_einsum": np.einsum}
    exec(compile(source, f"<generated {nest.name}>", "exec"), namespace)
    return namespace[func_name]  # type: ignore[return-value]


def run_generated(
    nest: LoopNest,
    tile: TileShape,
    arrays: Mapping[str, np.ndarray],
    order: Sequence[int] | None = None,
) -> np.ndarray:
    """Convenience: compile and invoke on a name-keyed array dict."""
    kernel = compile_kernel(nest, tile, order=order)
    output = next(a for a in nest.arrays if a.is_output)
    inputs = [a for a in nest.arrays if not a.is_output]
    return kernel(arrays[output.name], *(arrays[a.name] for a in inputs))
