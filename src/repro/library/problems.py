"""Catalog of named projective loop nests.

Every example the paper derives by hand (§6) plus the standard
projective kernels mentioned in its introduction (dense linear algebra,
tensor contractions, pointwise convolutions, fully-connected layers,
n-body interactions) and several additional projective workloads
(MTTKRP, TTM, batched matmul, database-join aggregation) used by the
benchmark suite.  Each constructor returns a validated
:class:`~repro.core.loopnest.LoopNest`.

Two scenario families are built *through* :mod:`repro.frontend` rather
than by hand, as living proof the frontend lowers onto the same
vocabulary: the einsum twins (``einsum_matmul`` et al., bit-identical
to their hand-built library counterparts — same names, loops and
supports — so both spellings share one canonical structure and
plan-cache entry) and the time-tiled stencils (``jacobi1d_time``,
``jacobi2d``, ``heat3d``), whose constant-offset accesses are
halo-normalized to projective bands.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from ..core.loopnest import ArrayRef, LoopNest
from ..frontend.bands import split_bands
from ..frontend.einsum import einsum_nest
from ..frontend.program import parse_program

__all__ = [
    "matmul",
    "matvec",
    "outer_product",
    "dot_product",
    "nbody",
    "tensor_contraction",
    "pointwise_conv",
    "fully_connected",
    "mttkrp",
    "ttm",
    "batched_matmul",
    "join_aggregate",
    "syrk",
    "tucker_core",
    "attention_scores",
    "einsum_matmul",
    "einsum_mttkrp",
    "einsum_batched_matmul",
    "jacobi1d_time",
    "jacobi2d",
    "heat3d",
    "catalog",
    "build_problem",
    "CATALOG_BUILDERS",
]


def matmul(L1: int, L2: int, L3: int) -> LoopNest:
    """§6.1 triple loop: ``C[x1,x3] += A[x1,x2] * B[x2,x3]``.

    Loop order (x1, x2, x3) follows the paper, so the matvec limit is
    ``L3 = 1`` and the classical bound is ``L1 L2 L3 / sqrt(M)``.
    """
    return LoopNest(
        name="matmul",
        loops=("x1", "x2", "x3"),
        bounds=(L1, L2, L3),
        arrays=(
            ArrayRef("C", (0, 2), is_output=True),
            ArrayRef("A", (0, 1)),
            ArrayRef("B", (1, 2)),
        ),
    )


def matvec(L1: int, L2: int) -> LoopNest:
    """Matrix-vector multiply ``y[x1] += A[x1,x2] * x[x2]`` (matmul with L3=1)."""
    return LoopNest(
        name="matvec",
        loops=("x1", "x2"),
        bounds=(L1, L2),
        arrays=(
            ArrayRef("y", (0,), is_output=True),
            ArrayRef("A", (0, 1)),
            ArrayRef("x", (1,)),
        ),
    )


def outer_product(L1: int, L2: int) -> LoopNest:
    """Rank-1 update ``C[x1,x2] += u[x1] * v[x2]``."""
    return LoopNest(
        name="outer_product",
        loops=("x1", "x2"),
        bounds=(L1, L2),
        arrays=(
            ArrayRef("C", (0, 1), is_output=True),
            ArrayRef("u", (0,)),
            ArrayRef("v", (1,)),
        ),
    )


def dot_product(L: int) -> LoopNest:
    """``s[] += u[x1] * v[x1]`` — a depth-1 nest (scalar output support is empty).

    The scalar output has empty support; by the paper's w.l.o.g.
    assumption the loop must appear in some support, which the two
    vector inputs provide.
    """
    return LoopNest(
        name="dot_product",
        loops=("x1",),
        bounds=(L,),
        arrays=(
            ArrayRef("s", (), is_output=True),
            ArrayRef("u", (0,)),
            ArrayRef("v", (0,)),
        ),
    )


def nbody(L1: int, L2: int) -> LoopNest:
    """§6.3 pairwise interactions: ``F[x1] = f(P[x1], Q[x2])``.

    Two loops, three arrays; the paper derives max tile size
    ``min(M^2, L1*M, L2*M, L1*L2)``.
    """
    return LoopNest(
        name="nbody",
        loops=("x1", "x2"),
        bounds=(L1, L2),
        arrays=(
            ArrayRef("F", (0,), is_output=True),
            ArrayRef("P", (0,)),
            ArrayRef("Q", (1,)),
        ),
    )


def tensor_contraction(
    left: Sequence[int], shared: Sequence[int], right: Sequence[int], name: str = "contraction"
) -> LoopNest:
    """§6.2 contraction ``A1[left+right] += A2[left+shared] * A3[shared+right]``.

    ``left``, ``shared``, ``right`` are the loop extents of the three
    index groups (the paper's ``x_1..x_j``, ``x_{j+1}..x_{k-1}``,
    ``x_k..x_d``).  Any of the groups may be empty — e.g. an empty
    ``shared`` gives an outer product of tensors.
    """
    left = list(left)
    shared = list(shared)
    right = list(right)
    j, mid, r = len(left), len(shared), len(right)
    d = j + mid + r
    if d == 0:
        raise ValueError("contraction needs at least one loop")
    loops = tuple(
        [f"l{i+1}" for i in range(j)]
        + [f"s{i+1}" for i in range(mid)]
        + [f"r{i+1}" for i in range(r)]
    )
    sup_left = tuple(range(j))
    sup_shared = tuple(range(j, j + mid))
    sup_right = tuple(range(j + mid, d))
    return LoopNest(
        name=name,
        loops=loops,
        bounds=tuple(left + shared + right),
        arrays=(
            ArrayRef("A1", sup_left + sup_right, is_output=True),
            ArrayRef("A2", sup_left + sup_shared),
            ArrayRef("A3", sup_shared + sup_right),
        ),
    )


def pointwise_conv(B: int, C: int, K: int, W: int, H: int) -> LoopNest:
    """§6.2 eq. (6.5): ``Out[k,h,w,b] += Image[w,h,c,b] * Filter[k,c]``.

    A 1x1-filter convolution, i.e. a tensor contraction over the channel
    dimension ``c``; loop order (b, c, k, w, h) matches the paper's
    listing.
    """
    return LoopNest(
        name="pointwise_conv",
        loops=("b", "c", "k", "w", "h"),
        bounds=(B, C, K, W, H),
        arrays=(
            ArrayRef("Out", (0, 2, 3, 4), is_output=True),
            ArrayRef("Image", (0, 1, 3, 4)),
            ArrayRef("Filter", (1, 2)),
        ),
    )


def fully_connected(B: int, Cin: int, Cout: int) -> LoopNest:
    """Fully-connected layer ``Out[b,o] += In[b,i] * W[i,o]`` (matmul shape)."""
    return LoopNest(
        name="fully_connected",
        loops=("b", "i", "o"),
        bounds=(B, Cin, Cout),
        arrays=(
            ArrayRef("Out", (0, 2), is_output=True),
            ArrayRef("In", (0, 1)),
            ArrayRef("W", (1, 2)),
        ),
    )


def mttkrp(I: int, J: int, K: int, R: int) -> LoopNest:
    """Matricised-tensor times Khatri-Rao product (projective 4-nest).

    ``A[i,r] += T[i,j,k] * B[j,r] * C[k,r]`` — the core kernel of CP
    tensor decomposition; a standard projective example beyond the
    paper's worked set.
    """
    return LoopNest(
        name="mttkrp",
        loops=("i", "j", "k", "r"),
        bounds=(I, J, K, R),
        arrays=(
            ArrayRef("A", (0, 3), is_output=True),
            ArrayRef("T", (0, 1, 2)),
            ArrayRef("B", (1, 3)),
            ArrayRef("C", (2, 3)),
        ),
    )


def ttm(I: int, J: int, K: int, R: int) -> LoopNest:
    """Tensor-times-matrix ``Y[i,j,r] += X[i,j,k] * U[k,r]``."""
    return LoopNest(
        name="ttm",
        loops=("i", "j", "k", "r"),
        bounds=(I, J, K, R),
        arrays=(
            ArrayRef("Y", (0, 1, 3), is_output=True),
            ArrayRef("X", (0, 1, 2)),
            ArrayRef("U", (2, 3)),
        ),
    )


def batched_matmul(B: int, L1: int, L2: int, L3: int) -> LoopNest:
    """Batched matmul ``C[b,i,k] += A[b,i,j] * B_[b,j,k]``."""
    return LoopNest(
        name="batched_matmul",
        loops=("b", "i", "j", "k"),
        bounds=(B, L1, L2, L3),
        arrays=(
            ArrayRef("C", (0, 1, 3), is_output=True),
            ArrayRef("A", (0, 1, 2)),
            ArrayRef("B_", (0, 2, 3)),
        ),
    )


def syrk(N: int, K: int) -> LoopNest:
    """Symmetric rank-K update ``C[i,j] += A[i,k] * A'[j,k]``.

    The two reads of ``A`` have different supports, so they are distinct
    projections ``phi`` (named ``A`` and ``A_t``); the communication
    analysis is oblivious to their aliasing (it can only *overestimate*
    the footprint by at most 2x, a model constant).
    """
    return LoopNest(
        name="syrk",
        loops=("i", "j", "k"),
        bounds=(N, N, K),
        arrays=(
            ArrayRef("C", (0, 1), is_output=True),
            ArrayRef("A", (0, 2)),
            ArrayRef("A_t", (1, 2)),
        ),
    )


def tucker_core(I: int, J: int, K: int, A: int, B: int, C: int) -> LoopNest:
    """Tucker-decomposition core update ``G[a,b,c] += X[i,j,k] U1[i,a] U2[j,b] U3[k,c]``.

    A 6-deep, 5-array projective nest — a stress test well beyond the
    paper's worked examples (three small "rank" loops a, b, c).
    """
    return LoopNest(
        name="tucker_core",
        loops=("i", "j", "k", "a", "b", "c"),
        bounds=(I, J, K, A, B, C),
        arrays=(
            ArrayRef("G", (3, 4, 5), is_output=True),
            ArrayRef("X", (0, 1, 2)),
            ArrayRef("U1", (0, 3)),
            ArrayRef("U2", (1, 4)),
            ArrayRef("U3", (2, 5)),
        ),
    )


def attention_scores(B: int, H: int, S: int, T: int, D: int) -> LoopNest:
    """Transformer attention scores ``Sc[b,h,s,t] += Q[b,h,s,d] * K[b,h,t,d]``.

    A batched matmul with a small head dimension ``d`` — precisely the
    small-bound regime (d = 64 or 128 while s, t reach thousands) the
    paper's machinery prices correctly and the classical bound misses.
    """
    return LoopNest(
        name="attention_scores",
        loops=("b", "h", "s", "t", "d"),
        bounds=(B, H, S, T, D),
        arrays=(
            ArrayRef("Sc", (0, 1, 2, 3), is_output=True),
            ArrayRef("Q", (0, 1, 2, 4)),
            ArrayRef("K", (0, 1, 3, 4)),
        ),
    )


def join_aggregate(L1: int, L2: int) -> LoopNest:
    """Database-join aggregation ``Agg[x1] += R[x1, x2] * S[x2]``.

    The paper's §6.3 mentions database joins as an n-body-style
    application; this variant aggregates a joined relation.
    """
    return LoopNest(
        name="join_aggregate",
        loops=("x1", "x2"),
        bounds=(L1, L2),
        arrays=(
            ArrayRef("Agg", (0,), is_output=True),
            ArrayRef("R", (0, 1)),
            ArrayRef("S", (1,)),
        ),
    )


# -- frontend-built scenarios ------------------------------------------------


def einsum_matmul(L1: int, L2: int, L3: int) -> LoopNest:
    """§6.1 matmul ingested from its einsum string ``"ik,kj->ij"``.

    Bit-identical to :func:`matmul` (same name, loops, supports), so
    both spellings share one canonical structure and plan-cache entry —
    the frontend's golden equivalence scenario.
    """
    return einsum_nest(
        "ik,kj->ij",
        {"i": L1, "k": L2, "j": L3},
        name="matmul",
        operands=("A", "B"),
        output="C",
        loop_names={"i": "x1", "k": "x2", "j": "x3"},
    )


def einsum_mttkrp(I: int, J: int, K: int, R: int) -> LoopNest:
    """MTTKRP ingested from ``"ijk,jr,kr->ir"`` — bit-identical to :func:`mttkrp`."""
    return einsum_nest(
        "ijk,jr,kr->ir",
        {"i": I, "j": J, "k": K, "r": R},
        name="mttkrp",
        operands=("T", "B", "C"),
        output="A",
    )


def einsum_batched_matmul(B: int, L1: int, L2: int, L3: int) -> LoopNest:
    """Batched matmul from ``"bij,bjk->bik"`` — bit-identical to :func:`batched_matmul`."""
    return einsum_nest(
        "bij,bjk->bik",
        {"b": B, "i": L1, "j": L2, "k": L3},
        name="batched_matmul",
        operands=("A", "B_"),
        output="C",
    )


def _stencil_nest(name: str, statement: str, bounds: Mapping[str, int]) -> LoopNest:
    """Build a single-band stencil nest through the frontend pipeline."""
    program = parse_program(statement, bounds, name=name)
    (band,) = split_bands(program)
    return replace(band.nest, name=name)


def jacobi1d_time(T: int, N: int) -> LoopNest:
    """Time-tiled 1-D Jacobi: ``A[t,i] = sum of A[t-1, i +/- 1] + F[i]``.

    The in-place write and the offset reads all project ``A`` through
    the same ``(t, i)`` support, so halo normalization merges them into
    one output reference; the forcing term ``F`` keeps the nest's
    loop-coverage honest.  Tiling the ``t`` loop alongside ``i`` is the
    classical time-tiling transformation, priced by the same Theorem.
    """
    return _stencil_nest(
        "jacobi1d_time",
        "A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] + F[i]",
        {"t": T, "i": N},
    )


def jacobi2d(T: int, N1: int, N2: int) -> LoopNest:
    """5-point 2-D Jacobi sweep over ``T`` time steps (halo-normalized)."""
    return _stencil_nest(
        "jacobi2d",
        "A[t,i,j] = A[t-1,i,j] + A[t-1,i-1,j] + A[t-1,i+1,j]"
        " + A[t-1,i,j-1] + A[t-1,i,j+1] + F[i,j]",
        {"t": T, "i": N1, "j": N2},
    )


def heat3d(T: int, N1: int, N2: int, N3: int) -> LoopNest:
    """7-point 3-D heat equation over ``T`` time steps (halo-normalized)."""
    return _stencil_nest(
        "heat3d",
        "A[t,i,j,k] = A[t-1,i,j,k] + A[t-1,i-1,j,k] + A[t-1,i+1,j,k]"
        " + A[t-1,i,j-1,k] + A[t-1,i,j+1,k] + A[t-1,i,j,k-1] + A[t-1,i,j,k+1]"
        " + F[i,j,k]",
        {"t": T, "i": N1, "j": N2, "k": N3},
    )


#: name -> (builder, default arguments) used by the CLI, tests, benches.
CATALOG_BUILDERS: dict[str, tuple] = {
    "matmul": (matmul, (512, 512, 512)),
    "matvec": (matvec, (512, 512)),
    "outer_product": (outer_product, (512, 512)),
    "dot_product": (dot_product, (4096,)),
    "nbody": (nbody, (4096, 4096)),
    "contraction": (tensor_contraction, ((64, 64), (64,), (64, 64))),
    "pointwise_conv": (pointwise_conv, (32, 64, 128, 28, 28)),
    "fully_connected": (fully_connected, (128, 1024, 1024)),
    "mttkrp": (mttkrp, (128, 128, 128, 32)),
    "ttm": (ttm, (128, 128, 128, 32)),
    "batched_matmul": (batched_matmul, (16, 128, 128, 128)),
    "join_aggregate": (join_aggregate, (4096, 4096)),
    "syrk": (syrk, (512, 64)),
    "tucker_core": (tucker_core, (64, 64, 64, 8, 8, 8)),
    "attention_scores": (attention_scores, (8, 12, 512, 512, 64)),
    "einsum_matmul": (einsum_matmul, (512, 512, 512)),
    "einsum_mttkrp": (einsum_mttkrp, (128, 128, 128, 32)),
    "einsum_batched_matmul": (einsum_batched_matmul, (16, 128, 128, 128)),
    "jacobi1d_time": (jacobi1d_time, (64, 4096)),
    "jacobi2d": (jacobi2d, (16, 256, 256)),
    "heat3d": (heat3d, (8, 64, 64, 64)),
}


def build_problem(name: str, sizes: Sequence | None = None) -> LoopNest:
    """Instantiate catalog problem ``name`` with ``sizes`` (or its defaults).

    The single entry point the CLI and the batch-request parser share;
    raises ``KeyError`` for unknown names and ``TypeError`` when
    ``sizes`` has the wrong arity for the constructor.
    """
    try:
        builder, default_sizes = CATALOG_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; choices: {', '.join(sorted(CATALOG_BUILDERS))}"
        ) from None
    args = tuple(sizes) if sizes else default_sizes
    return builder(*args)


def catalog(overrides: Mapping[str, Sequence] | None = None) -> dict[str, LoopNest]:
    """Instantiate every catalog problem with default (or overridden) sizes."""
    overrides = dict(overrides or {})
    out: dict[str, LoopNest] = {}
    for name, (builder, default_args) in CATALOG_BUILDERS.items():
        args = overrides.get(name, default_args)
        out[name] = builder(*args)
    return out
