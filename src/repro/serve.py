"""``repro-tile serve`` — a stdlib JSON endpoint over one shared Session.

The paper's value function is piecewise-linear in the loop bounds (§7),
which makes "ask many questions about many nests" a natural service
shape: one process holds a warm :class:`~repro.api.Session` (one
multiparametric solve per canonical structure, ever) and answers every
query by exact piecewise evaluation.  This module is that shape over
HTTP, with zero dependencies beyond the standard library:

====================  ======  =============================================
``/v1/health``        GET     liveness + plan-cache stats
``/v1/analyze``       POST    one :class:`~repro.api.AnalyzeRequest`
``/v1/batch``         POST    ``{"requests": [...]}`` — ordered results
``/v1/sweep``         POST    one :class:`~repro.api.SweepRequest` grid
``/v1/simulate``      POST    one :class:`~repro.api.SimulateRequest`
``/v1/tune``          POST    one :class:`~repro.api.TuneRequest`
``/v1/hierarchy``     POST    one :class:`~repro.api.HierarchyRequest`
``/v1/distributed``   POST    one :class:`~repro.api.DistributedRequest`
====================  ======  =============================================

Every response body is a schema-versioned envelope
(:class:`repro.api.Result` for single answers; batch/sweep wrap a
result list).  Request validation failures map to structured 4xx
payloads of kind ``"error"`` — never a bare traceback.

The server is intentionally an in-process building block: ``make_server``
returns a ``ThreadingHTTPServer`` bound to an ephemeral port when
``port=0``, which is exactly how the test suite and the service
benchmark drive it.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .api import (
    SCHEMA_VERSION,
    AnalyzeRequest,
    RequestError,
    Result,
    Session,
    SweepRequest,
)
from .api.requests import (
    DistributedRequest,
    HierarchyRequest,
    SimulateRequest,
    TuneRequest,
)
from .core.loopnest import LoopNestError
from .core.parser import ParseError

__all__ = ["make_server", "serve", "ServiceHandler", "MAX_BODY_BYTES", "MAX_BATCH_REQUESTS"]

#: Request-body guard: tiling queries are tiny; anything bigger is abuse.
MAX_BODY_BYTES = 8 << 20

#: One POST may expand to at most this many analyze queries.
MAX_BATCH_REQUESTS = 10_000


def _error_body(message: str, status: int, detail: dict | None = None) -> dict:
    return Result.error(message, status=status, detail=detail).to_json()


def _results_body(kind: str, results: list[Result]) -> dict:
    """The list envelope for batch/sweep: same version tag, ordered items."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "count": len(results),
        "results": [r.to_json() for r in results],
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the shared :class:`~repro.api.Session`."""

    server_version = "repro-tile/1"
    #: Installed by :func:`make_server`.
    session: Session = None
    #: Quiet by default; ``make_server(verbose=True)`` restores logging.
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    def _send(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body; POST a JSON object")
        try:
            blob = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(blob, dict):
            raise RequestError("request body must be a JSON object")
        return blob

    def _guarded(self, handler: Callable[[], tuple[int, dict]]) -> None:
        try:
            status, body = handler()
        except RequestError as exc:
            self._send(400, _error_body(str(exc), 400, exc.detail or None))
        except (LoopNestError, ParseError, ValueError, TypeError, KeyError) as exc:
            self._send(400, _error_body(str(exc) or type(exc).__name__, 400))
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send(500, _error_body(f"internal error: {exc}", 500))
        else:
            self._send(status, body)

    # -- endpoints ----------------------------------------------------------

    def _route(self) -> str:
        """Request path normalised for matching (query string stripped)."""
        return self.path.partition("?")[0].rstrip("/")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        if route == "/v1/health":
            self._guarded(lambda: (200, self.session.health().to_json()))
        elif route in (
            "/v1/analyze", "/v1/batch", "/v1/sweep", "/v1/simulate", "/v1/tune",
            "/v1/hierarchy", "/v1/distributed",
        ):
            self._send(405, _error_body("use POST with a JSON body", 405))
        else:
            self._send(404, _error_body(f"unknown path {self.path!r}", 404))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        if route == "/v1/analyze":
            self._guarded(self._post_analyze)
        elif route == "/v1/batch":
            self._guarded(self._post_batch)
        elif route == "/v1/sweep":
            self._guarded(self._post_sweep)
        elif route == "/v1/simulate":
            self._guarded(self._post_simulate)
        elif route == "/v1/tune":
            self._guarded(self._post_tune)
        elif route == "/v1/hierarchy":
            self._guarded(self._post_hierarchy)
        elif route == "/v1/distributed":
            self._guarded(self._post_distributed)
        elif route == "/v1/health":
            self._guarded(lambda: (200, self.session.health().to_json()))
        else:
            self._send(404, _error_body(f"unknown path {self.path!r}", 404))

    def _post_analyze(self) -> tuple[int, dict]:
        request = AnalyzeRequest.from_json(self._read_json(), "analyze")
        return 200, self.session.analyze(request).to_json()

    def _post_batch(self) -> tuple[int, dict]:
        blob = self._read_json()
        entries = blob.get("requests")
        if not isinstance(entries, list):
            raise RequestError("batch body needs a 'requests' list")
        if len(entries) > MAX_BATCH_REQUESTS:
            raise RequestError(f"batch of {len(entries)} exceeds {MAX_BATCH_REQUESTS} requests")
        requests = [
            AnalyzeRequest.from_json(entry, f"requests[{idx}]")
            for idx, entry in enumerate(entries)
        ]
        # Serial structure solves: worker pools belong to offline batch
        # jobs, not to a threaded request handler.
        return 200, _results_body("batch", self.session.batch(requests, workers=0))

    def _post_sweep(self) -> tuple[int, dict]:
        sweep = SweepRequest.from_json(self._read_json(), "sweep")
        expanded = sweep.expand()
        if len(expanded) > MAX_BATCH_REQUESTS:
            raise RequestError(f"sweep grid exceeds {MAX_BATCH_REQUESTS} requests")
        return 200, _results_body("sweep", self.session.batch(expanded, workers=0))

    def _post_simulate(self) -> tuple[int, dict]:
        request = SimulateRequest.from_json(self._read_json(), "simulate")
        return 200, self.session.simulate(request).to_json()

    def _post_tune(self) -> tuple[int, dict]:
        request = TuneRequest.from_json(self._read_json(), "tune")
        # Serial candidate evaluation: worker pools belong to offline
        # jobs, not to a threaded request handler (same as batch).
        return 200, self.session.tune(request, workers=0).to_json()

    def _post_hierarchy(self) -> tuple[int, dict]:
        request = HierarchyRequest.from_json(self._read_json(), "hierarchy")
        # Serial candidate evaluation, same reason as tune.
        return 200, self.session.hierarchy(request, workers=0).to_json()

    def _post_distributed(self) -> tuple[int, dict]:
        request = DistributedRequest.from_json(self._read_json(), "distributed")
        return 200, self.session.distributed(request).to_json()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    session: Session | None = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bound, ready-to-``serve_forever`` server (``port=0`` = ephemeral).

    The handler class is specialised per server so concurrent servers
    (tests, benchmarks) never share a session by accident.
    """
    handler = type(
        "BoundServiceHandler",
        (ServiceHandler,),
        {"session": session if session is not None else Session(), "verbose": verbose},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    session: Session | None = None,
    verbose: bool = True,
) -> int:
    """Run the JSON service until interrupted (the CLI entry point)."""
    server = make_server(host, port, session=session, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-tile serve: listening on http://{bound_host}:{bound_port}/v1/ "
          f"(schema v{SCHEMA_VERSION}; Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-tile serve: shutting down")
    finally:
        server.server_close()
    return 0
