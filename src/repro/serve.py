"""``repro-tile serve`` — a stdlib JSON endpoint over one shared Session.

The paper's value function is piecewise-linear in the loop bounds (§7),
which makes "ask many questions about many nests" a natural service
shape: one process holds a warm :class:`~repro.api.Session` (one
multiparametric solve per canonical structure, ever) and answers every
query by exact piecewise evaluation.  This module is that shape over
HTTP, with zero dependencies beyond the standard library:

====================  ======  =============================================
``/v1/health``        GET     liveness + plan-cache stats
``/v1/analyze``       POST    one :class:`~repro.api.AnalyzeRequest`
``/v1/batch``         POST    ``{"requests": [...]}`` — ordered results
``/v1/sweep``         POST    one :class:`~repro.api.SweepRequest` grid
``/v1/simulate``      POST    one :class:`~repro.api.SimulateRequest`
``/v1/tune``          POST    one :class:`~repro.api.TuneRequest`
``/v1/hierarchy``     POST    one :class:`~repro.api.HierarchyRequest`
``/v1/distributed``   POST    one :class:`~repro.api.DistributedRequest`
====================  ======  =============================================

Every response body is a schema-versioned envelope
(:class:`repro.api.Result` for single answers; batch/sweep wrap a
result list) — including every failure.  The error catalogue (see
``docs/resilience.md``): validation ``400``, unknown path ``404``,
wrong method ``405``, over capacity ``429`` (+ ``Retry-After``),
draining ``503`` (+ ``Retry-After``), expired deadline ``504``, and a
structured ``500`` carrying an ``error_id`` whose traceback goes to the
server log — never into the body.

**Deadlines**: a request may carry ``"deadline_ms"`` (stripped before
schema validation); otherwise the server's ``default_deadline_ms``
applies.  The budget is enforced cooperatively at solver checkpoints
(:mod:`repro.util.deadline`), so a cold exact-rational solve cannot pin
a handler thread past its budget.

**Backpressure**: at most ``max_inflight`` POST bodies are processed
concurrently; excess load is shed immediately with ``429`` rather than
queued into memory, and a draining server sheds everything with
``503``.  ``/v1/health`` bypasses admission control so load balancers
can always probe.

The server is intentionally an in-process building block: ``make_server``
returns a :class:`ServiceServer` (a ``ThreadingHTTPServer``) bound to an
ephemeral port when ``port=0``, which is exactly how the test suite and
the service benchmark drive it.
"""

from __future__ import annotations

import json
import logging
import threading
import traceback
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .api import (
    SCHEMA_VERSION,
    AnalyzeRequest,
    RequestError,
    Result,
    Session,
    SweepRequest,
)
from .api.requests import (
    DistributedRequest,
    HierarchyRequest,
    SimulateRequest,
    TuneRequest,
)
from .core.loopnest import LoopNestError
from .core.parser import ParseError
from .util.deadline import Deadline, DeadlineExceeded, activate, deactivate
from .util.faults import InjectedFault

__all__ = [
    "make_server",
    "serve",
    "ServiceHandler",
    "ServiceServer",
    "MAX_BODY_BYTES",
    "MAX_BATCH_REQUESTS",
    "DEFAULT_MAX_INFLIGHT",
]

_log = logging.getLogger("repro.serve")

#: Request-body guard: tiling queries are tiny; anything bigger is abuse.
MAX_BODY_BYTES = 8 << 20

#: One POST may expand to at most this many analyze queries.
MAX_BATCH_REQUESTS = 10_000

#: Default bound on concurrently-processed POST requests.
DEFAULT_MAX_INFLIGHT = 64


def _error_body(message: str, status: int, detail: dict | None = None) -> dict:
    return Result.error(message, status=status, detail=detail).to_json()


def _results_body(kind: str, results: list[Result]) -> dict:
    """The list envelope for batch/sweep: same version tag, ordered items."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "count": len(results),
        "results": [r.to_json() for r in results],
    }


def _result_response(result: Result) -> tuple[int, dict]:
    """HTTP status + body for one Result (error envelopes carry their own)."""
    blob = result.to_json()
    if result.kind == "error":
        return int(blob["payload"].get("status", 500)), blob
    return 200, blob


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer + admission control state.

    ``max_inflight`` bounds concurrently-processed POSTs (load beyond it
    is shed with 429); ``default_deadline_ms`` applies to requests that
    do not carry their own ``deadline_ms``; :meth:`drain` flips the
    server into load-shedding-everything mode (503) ahead of shutdown.
    """

    max_inflight: int = DEFAULT_MAX_INFLIGHT
    default_deadline_ms: float | None = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def drain(self) -> None:
        """Start refusing new work (503) while in-flight requests finish."""
        self.draining = True


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the shared :class:`~repro.api.Session`."""

    server_version = "repro-tile/1"
    #: Installed by :func:`make_server`.
    session: Session = None
    #: Quiet by default; ``make_server(verbose=True)`` restores logging.
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    def _send(self, status: int, body: dict, headers: dict | None = None) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        """Parse the POST body; install the request's deadline as a side effect.

        ``deadline_ms`` is an envelope-level field shared by every POST
        schema, so it is validated and stripped here (before per-request
        ``from_json``), and the cooperative :class:`Deadline` it names —
        or the server default — becomes ambient for the rest of the
        request.  :meth:`_guarded` clears it in its ``finally``.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body; POST a JSON object")
        try:
            blob = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(blob, dict):
            raise RequestError("request body must be a JSON object")
        deadline_ms = blob.pop("deadline_ms", None)
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise RequestError("deadline_ms must be a positive number of milliseconds")
        else:
            deadline_ms = getattr(self.server, "default_deadline_ms", None)
        if deadline_ms is not None:
            self._deadline_token = activate(Deadline(float(deadline_ms)))
        return blob

    def _guarded(self, handler: Callable[[], tuple[int, dict]]) -> None:
        self._deadline_token = None
        try:
            status, body = handler()
        except RequestError as exc:
            self._send(400, _error_body(str(exc), 400, exc.detail or None))
        except DeadlineExceeded as exc:
            # Normally the Session converts expiry into a 504 Result;
            # this catches expiry in serve-layer code outside a Session
            # entry point, so a deadline can never surface as a 500.
            self._send(504, _error_body(str(exc), 504, {
                "reason": "deadline_exceeded",
                "deadline_ms": exc.budget_ms,
                "where": exc.where,
            }))
        except (LoopNestError, ParseError, ValueError, TypeError, KeyError) as exc:
            self._send(400, _error_body(str(exc) or type(exc).__name__, 400))
        except InjectedFault as exc:
            # The chaos suite's escape hatch: an armed fault that nothing
            # degraded around still maps to a structured envelope.
            self._send(500, _error_body(str(exc), 500, {
                "reason": "injected-fault", "point": exc.point,
            }))
        except Exception as exc:
            # The defensive 500: a structured envelope with an error id;
            # the traceback goes to the log, never into the body.
            error_id = uuid.uuid4().hex[:12]
            _log.error(
                "internal error %s serving %s\n%s",
                error_id, self.path, traceback.format_exc(),
            )
            self._send(500, _error_body(
                f"internal error (id {error_id})", 500,
                {
                    "reason": "internal",
                    "error_id": error_id,
                    "exception": type(exc).__name__,
                },
            ))
        else:
            self._send(status, body)
        finally:
            if self._deadline_token is not None:
                deactivate(self._deadline_token)
                self._deadline_token = None

    # -- endpoints ----------------------------------------------------------

    def _route(self) -> str:
        """Request path normalised for matching (query string stripped)."""
        return self.path.partition("?")[0].rstrip("/")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        if route == "/v1/health":
            self._guarded(lambda: (200, self.session.health().to_json()))
        elif route in (
            "/v1/analyze", "/v1/batch", "/v1/sweep", "/v1/simulate", "/v1/tune",
            "/v1/hierarchy", "/v1/distributed",
        ):
            self._send(405, _error_body("use POST with a JSON body", 405))
        else:
            self._send(404, _error_body(f"unknown path {self.path!r}", 404))

    _POST_ROUTES = {
        "/v1/analyze": "_post_analyze",
        "/v1/batch": "_post_batch",
        "/v1/sweep": "_post_sweep",
        "/v1/simulate": "_post_simulate",
        "/v1/tune": "_post_tune",
        "/v1/hierarchy": "_post_hierarchy",
        "/v1/distributed": "_post_distributed",
    }

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        if route == "/v1/health":
            # Health bypasses admission control: probes must always land.
            self._guarded(lambda: (200, self.session.health().to_json()))
            return
        name = self._POST_ROUTES.get(route)
        if name is None:
            self._send(404, _error_body(f"unknown path {self.path!r}", 404))
            return
        server = self.server
        if getattr(server, "draining", False):
            self._send(
                503,
                _error_body("server is draining; retry against another instance",
                            503, {"reason": "draining"}),
                headers={"Retry-After": "5"},
            )
            return
        if hasattr(server, "try_acquire") and not server.try_acquire():
            self._send(
                429,
                _error_body(
                    f"server is over its in-flight limit of {server.max_inflight}; "
                    "retry after a short backoff",
                    429,
                    {"reason": "overloaded", "max_inflight": server.max_inflight},
                ),
                headers={"Retry-After": "1"},
            )
            return
        try:
            self._guarded(getattr(self, name))
        finally:
            if hasattr(server, "release"):
                server.release()

    def _post_analyze(self) -> tuple[int, dict]:
        request = AnalyzeRequest.from_json(self._read_json(), "analyze")
        return _result_response(self.session.analyze(request))

    def _post_batch(self) -> tuple[int, dict]:
        blob = self._read_json()
        entries = blob.get("requests")
        if not isinstance(entries, list):
            raise RequestError("batch body needs a 'requests' list")
        if len(entries) > MAX_BATCH_REQUESTS:
            raise RequestError(f"batch of {len(entries)} exceeds {MAX_BATCH_REQUESTS} requests")
        requests = [
            AnalyzeRequest.from_json(entry, f"requests[{idx}]")
            for idx, entry in enumerate(entries)
        ]
        # Serial structure solves: worker pools belong to offline batch
        # jobs, not to a threaded request handler.
        return self._batch_response("batch", self.session.batch(requests, workers=0))

    def _post_sweep(self) -> tuple[int, dict]:
        sweep = SweepRequest.from_json(self._read_json(), "sweep")
        expanded = sweep.expand()
        if len(expanded) > MAX_BATCH_REQUESTS:
            raise RequestError(f"sweep grid exceeds {MAX_BATCH_REQUESTS} requests")
        return self._batch_response("sweep", self.session.batch(expanded, workers=0))

    @staticmethod
    def _batch_response(kind: str, results: list[Result]) -> tuple[int, dict]:
        if results and all(not r.ok for r in results):
            # The batch failed as one unit (an expired deadline maps every
            # request to the same envelope): answer with that envelope and
            # its own status rather than a 200 wrapping N copies.
            return _result_response(results[0])
        return 200, _results_body(kind, results)

    def _post_simulate(self) -> tuple[int, dict]:
        request = SimulateRequest.from_json(self._read_json(), "simulate")
        return _result_response(self.session.simulate(request))

    def _post_tune(self) -> tuple[int, dict]:
        request = TuneRequest.from_json(self._read_json(), "tune")
        # Serial candidate evaluation: worker pools belong to offline
        # jobs, not to a threaded request handler (same as batch).
        return _result_response(self.session.tune(request, workers=0))

    def _post_hierarchy(self) -> tuple[int, dict]:
        request = HierarchyRequest.from_json(self._read_json(), "hierarchy")
        # Serial candidate evaluation, same reason as tune.
        return _result_response(self.session.hierarchy(request, workers=0))

    def _post_distributed(self) -> tuple[int, dict]:
        request = DistributedRequest.from_json(self._read_json(), "distributed")
        return _result_response(self.session.distributed(request))


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    session: Session | None = None,
    verbose: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    default_deadline_ms: float | None = None,
) -> ServiceServer:
    """Bound, ready-to-``serve_forever`` server (``port=0`` = ephemeral).

    The handler class is specialised per server so concurrent servers
    (tests, benchmarks) never share a session by accident.
    ``max_inflight`` bounds concurrently-processed POSTs (excess load is
    shed with 429); ``default_deadline_ms`` deadline-bounds requests
    that do not set their own ``deadline_ms``.
    """
    if max_inflight < 1:
        raise ValueError("max_inflight must be >= 1")
    if default_deadline_ms is not None and default_deadline_ms <= 0:
        raise ValueError("default_deadline_ms must be positive")
    handler = type(
        "BoundServiceHandler",
        (ServiceHandler,),
        {"session": session if session is not None else Session(), "verbose": verbose},
    )
    server = ServiceServer((host, port), handler)
    server.max_inflight = int(max_inflight)
    server.default_deadline_ms = default_deadline_ms
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    session: Session | None = None,
    verbose: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    default_deadline_ms: float | None = None,
) -> int:
    """Run the JSON service until interrupted (the CLI entry point)."""
    server = make_server(
        host, port, session=session, verbose=verbose,
        max_inflight=max_inflight, default_deadline_ms=default_deadline_ms,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-tile serve: listening on http://{bound_host}:{bound_port}/v1/ "
          f"(schema v{SCHEMA_VERSION}; Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.drain()
        print("repro-tile serve: shutting down")
    finally:
        server.server_close()
    return 0
