"""``repro-tile serve`` — an asyncio JSON endpoint over one shared Session.

The paper's value function is piecewise-linear in the loop bounds (§7),
which makes "ask many questions about many nests" a natural service
shape: one process holds a warm :class:`~repro.api.Session` (one
multiparametric solve per canonical structure, ever) and answers every
query by exact piecewise evaluation.  This module is that shape over
HTTP, with zero dependencies beyond the standard library:

====================  ======  =============================================
``/v1/health``        GET     liveness + plan-cache + worker-pool stats
``/v1/metrics``       GET     Prometheus text exposition (repro.obs)
``/v1/analyze``       POST    one :class:`~repro.api.AnalyzeRequest`
``/v1/batch``         POST    ``{"requests": [...]}`` — ordered results
``/v1/sweep``         POST    one :class:`~repro.api.SweepRequest` grid
``/v1/simulate``      POST    one :class:`~repro.api.SimulateRequest`
``/v1/tune``          POST    one :class:`~repro.api.TuneRequest`
``/v1/hierarchy``     POST    one :class:`~repro.api.HierarchyRequest`
``/v1/program``       POST    one :class:`~repro.api.ProgramRequest`
``/v1/distributed``   POST    one :class:`~repro.api.DistributedRequest`
====================  ======  =============================================

Architecture (see ``docs/serving.md``): an asyncio event loop owns the
sockets (keep-alive, ``TCP_NODELAY``) and never blocks on solver work —
request handling runs on a bounded thread pool, cold multiparametric
solves can be dispatched to a **process pool** (``workers > 0``), and
three caches stack in front of the solver:

* a **response cache** (``response_cache > 0``): verbatim repeats of a
  single-result request are answered on the event loop by splicing the
  cached payload bytes under fresh ``meta`` — no thread handoff at all;
* **request coalescing**: identical in-flight requests share one
  execution (the planner additionally coalesces concurrent solves of
  the same canonical structure, so N distinct requests needing one new
  structure still cost one solve);
* the planner's **shared cross-process plan store** (wire it via
  ``Session(shared_cache=...)``), so sibling server processes warm each
  other.

Every response body is a schema-versioned envelope
(:class:`repro.api.Result` for single answers; batch/sweep wrap a
result list) — including every failure.  The error catalogue (see
``docs/resilience.md``): validation ``400``, unknown path ``404``,
wrong method ``405``, over capacity ``429`` (+ ``Retry-After``),
draining ``503`` (+ ``Retry-After``), expired deadline ``504``, and a
structured ``500`` carrying an ``error_id`` whose traceback goes to the
server log — never into the body.

**Deadlines**: a request may carry ``"deadline_ms"`` (stripped before
schema validation); otherwise the server's ``default_deadline_ms``
applies.  The budget is enforced cooperatively at solver checkpoints
(:mod:`repro.util.deadline`), so a cold exact-rational solve cannot pin
a handler thread past its budget.

**Backpressure**: at most ``max_inflight`` POST bodies are processed
concurrently; excess load is shed immediately with ``429`` rather than
queued into memory, and a draining server sheds everything with
``503``.  ``/v1/health`` bypasses admission control so load balancers
can always probe.

The server is intentionally an in-process building block: ``make_server``
returns a :class:`ServiceServer` bound to an ephemeral port when
``port=0`` whose blocking ``serve_forever()``/thread-safe ``shutdown()``
mirror the stdlib server API, which is exactly how the test suite and
the service benchmark drive it.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import socket
import sys
import threading
import time
import traceback
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

from .api import (
    SCHEMA_VERSION,
    AnalyzeRequest,
    RequestError,
    Result,
    Session,
    SweepRequest,
)
from .api.requests import (
    DistributedRequest,
    HierarchyRequest,
    ProgramRequest,
    SimulateRequest,
    TuneRequest,
)
from .core.loopnest import LoopNestError
from .core.parser import ParseError
from .obs import (
    PROMETHEUS_CONTENT_TYPE,
    RequestTrace,
    coerce_trace_id,
    global_registry,
    merge_worker_delta,
    mint_trace_id,
    render_counters,
    render_registry,
    span,
)
from .obs import trace as obs_trace
from .plan.batch import _solve_structure
from .util import faults
from .util.deadline import (
    Deadline,
    DeadlineExceeded,
    activate,
    checkpoint,
    current_deadline,
    deactivate,
)
from .util.faults import InjectedFault

__all__ = [
    "make_server",
    "serve",
    "ServiceServer",
    "MAX_BODY_BYTES",
    "MAX_BATCH_REQUESTS",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_RESPONSE_CACHE",
    "DEFAULT_SLOW_REQUEST_MS",
    "WORKERS_ENV_VAR",
]

_log = logging.getLogger("repro.serve")

#: Request-body guard: tiling queries are tiny; anything bigger is abuse.
MAX_BODY_BYTES = 8 << 20

#: One POST may expand to at most this many analyze queries.
MAX_BATCH_REQUESTS = 10_000

#: Default bound on concurrently-processed POST requests.
DEFAULT_MAX_INFLIGHT = 64

#: Response-cache capacity the CLI server runs with (``make_server``
#: defaults to 0 = off, so tests opt in explicitly).
DEFAULT_RESPONSE_CACHE = 1024

#: ``make_server(workers=None)`` reads the worker-pool size from here,
#: so an unmodified test suite can run against a multi-worker server.
WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"

#: Requests slower than this get their span tree logged (structured
#: JSON on the ``repro.serve`` logger); CLI flag ``--slow-request-ms``.
DEFAULT_SLOW_REQUEST_MS = 1000.0

#: Bodies larger than this skip response-cache/coalescing key building
#: (hashing a huge batch on the event loop would defeat the point).
_COALESCE_MAX_BODY = 64 << 10

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Routes answered from the response cache (single-Result 200 bodies;
#: batch/sweep envelopes and health are excluded by construction).
_CACHEABLE_ROUTES = frozenset(
    {
        "/v1/analyze",
        "/v1/simulate",
        "/v1/tune",
        "/v1/hierarchy",
        "/v1/program",
        "/v1/distributed",
    }
)


def _error_body(message: str, status: int, detail: dict | None = None) -> dict:
    return Result.error(message, status=status, detail=detail).to_json()


def _results_body(kind: str, results: list[Result]) -> dict:
    """The list envelope for batch/sweep: same version tag, ordered items."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "count": len(results),
        "results": [r.to_json() for r in results],
    }


def _result_response(result: Result) -> tuple[int, dict]:
    """HTTP status + body for one Result (error envelopes carry their own)."""
    blob = result.to_json()
    if result.kind == "error":
        return int(blob["payload"].get("status", 500)), blob
    return 200, blob


def _dump(body: dict) -> bytes:
    return json.dumps(body).encode()


def _splice_envelope(kind: str, payload_json: str, meta_json: str) -> bytes:
    """A Result envelope assembled from pre-serialised payload bytes.

    Key order and separators match ``json.dumps(Result.to_json())``
    exactly (``schema_version``, ``kind``, ``payload``, ``meta``), so a
    response-cache hit is byte-identical to a fresh response in
    everything but ``meta``.  ``meta_json`` arrives pre-serialised —
    the caller hand-builds it so the hot splice path never pays
    ``json.dumps`` for a three-key dict.
    """
    return (
        f'{{"schema_version": {SCHEMA_VERSION}, "kind": {json.dumps(kind)}, '
        f'"payload": {payload_json}, "meta": {meta_json}}}'
    ).encode()


def _parse_head(header: bytes) -> tuple[str, str, str, dict]:
    """(method, target, version, lowercased headers) of one request head."""
    lines = header.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return parts[0], parts[1], parts[2], headers


class ServiceServer:
    """Asyncio front-end + admission control behind the stdlib-server API.

    The listening socket is bound in ``__init__`` (so ``server_address``
    is final before ``serve_forever`` runs on its thread), the event
    loop lives entirely inside :meth:`serve_forever`, and
    :meth:`shutdown` is thread-safe and blocks until the loop exits —
    the exact contract tests and benchmarks relied on with
    ``ThreadingHTTPServer``.

    ``max_inflight`` bounds concurrently-processed POSTs (load beyond it
    is shed with 429); ``default_deadline_ms`` applies to requests that
    do not carry their own ``deadline_ms``; :meth:`drain` flips the
    server into load-shedding-everything mode (503) ahead of shutdown;
    ``workers > 0`` adds a process pool for cold structure solves;
    ``response_cache > 0`` turns on the full-request response cache.
    """

    def __init__(
        self,
        address: tuple[str, int],
        session: Session,
        *,
        verbose: bool = False,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        default_deadline_ms: float | None = None,
        workers: int = 0,
        response_cache: int = 0,
        slow_request_ms: float | None = DEFAULT_SLOW_REQUEST_MS,
    ):
        self.session = session
        self.verbose = verbose
        self.max_inflight = int(max_inflight)
        self.default_deadline_ms = default_deadline_ms
        self.workers = int(workers)
        self.slow_request_ms = slow_request_ms
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: One lock makes every server-stat snapshot atomic (satellite
        #: fix: health/metrics taken mid-drain() must never see torn
        #: worker/cache state).  Order: _stats_lock before _pool_lock /
        #: _response_cache_lock / _inflight_lock, never the reverse.
        self._stats_lock = threading.Lock()
        self._registry = global_registry()
        #: Event-loop-confined caches of live metric handles, so the
        #: per-request cost is a dict lookup, not label-key building.
        self._request_counters: dict[tuple[str, int], object] = {}
        self._request_hists: dict[str, object] = {}
        self._socket = socket.create_server(address, backlog=128)
        self.server_address = self._socket.getsockname()
        # Handler threads: admission control bounds real work at
        # max_inflight; the slack absorbs health probes and shed (429/
        # 503) responses so probes never queue behind solver work.
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight + 4, thread_name_prefix="repro-serve"
        )
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._pool_dispatched = 0
        self._pool_failures = 0
        #: Per-structure prewarm gate: concurrent same-structure
        #: requests ride one pool dispatch (mirrors the planner's gate).
        self._prewarming: dict[str, threading.Event] = {}
        self._prewarm_lock = threading.Lock()
        self._response_cache_cap = int(response_cache)
        self._response_cache: OrderedDict[tuple, tuple[str, str]] = OrderedDict()
        self._response_cache_lock = threading.Lock()
        self._response_hits = 0
        self._response_misses = 0
        self._coalesced = 0
        self._requests_served = 0
        #: Per-route served-request counts (event-loop confined), so
        #: health shows every kind — frontend programs included —
        #: counted exactly like the rest.
        self._route_counts: dict[str, int] = {}
        #: In-flight coalescing map (event-loop confined): key -> Future.
        self._pending: dict[tuple, asyncio.Future] = {}
        self._client_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stop_requested = False
        self._closed = False
        self._done = threading.Event()
        self._done.set()  # not running until serve_forever

    # -- admission control (same contract as the stdlib-based server) -------

    def try_acquire(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def drain(self) -> None:
        """Start refusing new work (503) while in-flight requests finish."""
        with self._stats_lock:
            self.draining = True

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`.

        ``poll_interval`` is accepted for stdlib-server signature
        compatibility and ignored (the loop wakes on events, not polls).
        """
        del poll_interval
        if self._closed:
            raise RuntimeError("server is closed")
        self._done.clear()
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve_main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                self._loop = None
                loop.close()
                self._done.set()

    async def _serve_main(self) -> None:
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            return
        server = await asyncio.start_server(self._client_connected, sock=self._socket)
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(*list(self._client_tasks), return_exceptions=True)

    def _request_stop(self) -> None:
        self._stop_requested = True
        if self._stop_event is not None:
            self._stop_event.set()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread; blocks until it returns."""
        self._stop_requested = True
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._request_stop)
        self._done.wait(timeout=30)

    def server_close(self) -> None:
        """Release the socket and the worker pools (idempotent)."""
        self._closed = True
        with contextlib.suppress(OSError):
            self._socket.close()
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- connection handling (event loop) ------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown
        except (ConnectionError, TimeoutError, OSError):
            pass  # client went away mid-exchange
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # clean close between requests
            except asyncio.LimitOverrunError:
                await self._write_response(
                    writer, 431, _dump(_error_body("request head too large", 431)),
                    close=True,
                )
                return
            try:
                method, target, version, headers = _parse_head(head)
            except ValueError as exc:
                await self._write_response(
                    writer, 400, _dump(_error_body(str(exc), 400)), close=True
                )
                return
            if "chunked" in headers.get("transfer-encoding", "").lower():
                await self._write_response(
                    writer, 400,
                    _dump(_error_body("chunked request bodies are not supported", 400)),
                    close=True,
                )
                return
            try:
                length = int(headers.get("content-length") or 0)
            except ValueError:
                length = -1
            if length < 0:
                await self._write_response(
                    writer, 400, _dump(_error_body("bad Content-Length", 400)),
                    close=True,
                )
                return
            if length > MAX_BODY_BYTES:
                # The old server let RequestError produce this message;
                # keep the wording but refuse to read the body at all.
                await self._write_response(
                    writer, 400,
                    _dump(_error_body(
                        f"request body exceeds {MAX_BODY_BYTES} bytes", 400)),
                    close=True,
                )
                return
            if headers.get("expect", "").lower() == "100-continue":
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            body = b""
            if length:
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
            keep_alive = (
                version != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close"
                and not self._stop_requested
            )
            try:
                status, payload, extra = await self._dispatch(
                    method, target, body, headers
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                # Transport-layer defensive 500 (executor refused work,
                # loop-side bug): still a structured envelope.
                error_id = uuid.uuid4().hex[:12]
                _log.error(
                    "internal error %s dispatching %s\n%s",
                    error_id, target, traceback.format_exc(),
                )
                status, extra = 500, None
                payload = _dump(_error_body(
                    f"internal error (id {error_id})", 500,
                    {"reason": "internal", "error_id": error_id},
                ))
            if self.verbose:
                peer = writer.get_extra_info("peername") or ("-",)
                print(
                    f'{peer[0]} - "{method} {target} {version}" {status} -',
                    file=sys.stderr,
                )
            await self._write_response(
                writer, status, payload, headers=extra, close=not keep_alive
            )
            if not keep_alive:
                return

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        headers: dict | None = None,
        close: bool = False,
    ) -> None:
        content_type = "application/json"
        if headers and "Content-Type" in headers:
            headers = dict(headers)
            content_type = headers.pop("Content-Type")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Server: repro-tile/2\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
        )
        if headers:
            head += "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.drain()

    # -- routing (event loop) -------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes, headers: dict | None = None
    ) -> tuple[int, bytes, dict | None]:
        route = target.partition("?")[0].rstrip("/")
        loop = asyncio.get_running_loop()
        trace_id = coerce_trace_id(headers.get("x-trace-id")) if headers else None
        if method == "GET":
            if route == "/v1/health":
                return await self._run_guarded(loop, "/v1/health", b"", trace_id)
            if route == "/v1/metrics":
                # Like health, metrics bypasses admission control:
                # scrapers must see an overloaded or draining server.
                return await self._run_guarded(loop, "/v1/metrics", b"", trace_id)
            if route in self._POST_ROUTES or route == "/v1/batch":
                return 405, _dump(_error_body("use POST with a JSON body", 405)), None
            self._count_rejected("not-found")
            return 404, _dump(_error_body(f"unknown path {target!r}", 404)), None
        if method != "POST":
            self._count_rejected("bad-method")
            return 405, _dump(_error_body(f"method {method} not supported", 405)), None
        if route == "/v1/health":
            # Health bypasses admission control: probes must always land.
            return await self._run_guarded(loop, "/v1/health", b"", trace_id)
        if route == "/v1/metrics":
            return 405, _dump(_error_body("use GET to scrape /v1/metrics", 405)), None
        if route not in self._POST_ROUTES:
            self._count_rejected("not-found")
            return 404, _dump(_error_body(f"unknown path {target!r}", 404)), None
        if self.draining:
            self._count_rejected("draining")
            return (
                503,
                _dump(_error_body(
                    "server is draining; retry against another instance",
                    503, {"reason": "draining"})),
                {"Retry-After": "5"},
            )
        if not self.try_acquire():
            self._count_rejected("overloaded")
            return (
                429,
                _dump(_error_body(
                    f"server is over its in-flight limit of {self.max_inflight}; "
                    "retry after a short backoff",
                    429,
                    {"reason": "overloaded", "max_inflight": self.max_inflight})),
                {"Retry-After": "1"},
            )
        try:
            return await self._admitted(loop, route, body, trace_id)
        finally:
            self.release()

    def _request_key(self, route: str, body: bytes) -> tuple[tuple | None, str | None]:
        """(request identity for caching/coalescing, body-level trace id).

        ``trace_id`` is an envelope field like ``deadline_ms``; it is
        excluded from the key so retries carrying fresh ids still hit
        the response cache and coalesce.
        """
        if len(body) > _COALESCE_MAX_BODY:
            return None, None
        try:
            blob = json.loads(body)
        except ValueError:
            return None, None
        if not isinstance(blob, dict):
            return None, None
        trace_id = coerce_trace_id(blob.pop("trace_id", None))
        try:
            key = route, json.dumps(blob, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            return None, trace_id
        return key, trace_id

    async def _admitted(
        self,
        loop: asyncio.AbstractEventLoop,
        route: str,
        body: bytes,
        header_tid: str | None = None,
    ) -> tuple[int, bytes, dict | None]:
        started = time.perf_counter()
        key, body_tid = self._request_key(route, body)
        trace_id = body_tid or header_tid
        if key is not None and self._response_cache_cap and route in _CACHEABLE_ROUTES:
            entry = self._response_cache_get(key)
            if entry is not None:
                kind, payload_json = entry
                elapsed_ms = round((time.perf_counter() - started) * 1000, 3)
                # Meta is hand-serialised: trace ids are regex-vetted
                # ([0-9a-zA-Z._-], no escapes needed) and elapsed_ms is
                # a rounded float, so this matches json.dumps exactly.
                headers = None
                if obs_trace.enabled():
                    # The splice path runs no handler, so the trace is
                    # this meta itself: id + a stage-free timing.
                    tid = trace_id or mint_trace_id()
                    meta_json = (
                        f'{{"elapsed_ms": {elapsed_ms}, "cache_hit": true, '
                        f'"response_cache": true, "trace_id": "{tid}", '
                        f'"timings": {{"total_ms": {elapsed_ms}, "stages": {{}}}}}}'
                    )
                    headers = {"X-Trace-Id": tid}
                else:
                    meta_json = (
                        f'{{"elapsed_ms": {elapsed_ms}, "cache_hit": true, '
                        f'"response_cache": true}}'
                    )
                self._count_served(route, 200, time.perf_counter() - started)
                return 200, _splice_envelope(kind, payload_json, meta_json), headers
        if key is not None:
            pending = self._pending.get(key)
            if pending is not None:
                # Identical request already executing: wait for its
                # outcome instead of burning a second handler thread.
                # Followers share the leader's envelope verbatim —
                # including the leader's trace id.
                with self._stats_lock:
                    self._coalesced += 1
                try:
                    status, payload, headers, _ = await asyncio.shield(pending)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    return await self._run_guarded(loop, route, body, trace_id)
                self._count_served(route, status, time.perf_counter() - started)
                return status, payload, headers
            fut: asyncio.Future = loop.create_future()
            self._pending[key] = fut
        outcome = None
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._handle_request, route, body, trace_id
            )
        finally:
            if key is not None:
                pending = self._pending.pop(key, None)
                if pending is not None and not pending.done():
                    if outcome is not None:
                        pending.set_result(outcome)
                    else:
                        pending.cancel()
        status, payload, headers, cache_entry = outcome
        if (
            cache_entry is not None
            and key is not None
            and self._response_cache_cap
            and route in _CACHEABLE_ROUTES
        ):
            self._response_cache_put(key, cache_entry)
        self._count_served(route, status, time.perf_counter() - started)
        return status, payload, headers

    async def _run_guarded(
        self,
        loop: asyncio.AbstractEventLoop,
        route: str,
        body: bytes,
        trace_id: str | None = None,
    ) -> tuple[int, bytes, dict | None]:
        """One uncoalesced, uncached pass through the guarded handler."""
        started = time.perf_counter()
        status, payload, headers, _ = await loop.run_in_executor(
            self._executor, self._handle_request, route, body, trace_id
        )
        self._count_served(route, status, time.perf_counter() - started)
        return status, payload, headers

    def _count_served(self, route: str, status: int = 200,
                      elapsed_s: float | None = None) -> None:
        """Tally one served request, total and per route (event loop only).

        Updates both the legacy health counters and the registry
        (``repro_requests_total{route,status}`` +
        ``repro_request_seconds{route}``); metric handles are cached per
        route so the hot path is two dict lookups.
        """
        with self._stats_lock:
            self._requests_served += 1
            self._route_counts[route] = self._route_counts.get(route, 0) + 1
        counter_key = (route, status)
        counter = self._request_counters.get(counter_key)
        if counter is None:
            counter = self._registry.counter(
                "repro_requests_total", route=route, status=str(status)
            )
            self._request_counters[counter_key] = counter
        counter.inc()
        if elapsed_s is not None:
            hist = self._request_hists.get(route)
            if hist is None:
                hist = self._registry.histogram("repro_request_seconds", route=route)
                self._request_hists[route] = hist
            hist.observe(elapsed_s)

    def _count_rejected(self, reason: str) -> None:
        """One shed/refused request (404/405/429/503) by reason."""
        self._registry.counter("repro_rejected_total", reason=reason).inc()

    # -- response cache -------------------------------------------------------

    def _response_cache_get(self, key: tuple) -> tuple[str, str] | None:
        with self._response_cache_lock:
            entry = self._response_cache.get(key)
            if entry is None:
                self._response_misses += 1
                return None
            self._response_cache.move_to_end(key)
            self._response_hits += 1
            return entry

    def _response_cache_put(self, key: tuple, entry: tuple[str, str]) -> None:
        with self._response_cache_lock:
            self._response_cache[key] = entry
            self._response_cache.move_to_end(key)
            while len(self._response_cache) > self._response_cache_cap:
                self._response_cache.popitem(last=False)

    # -- request handling (thread pool) ---------------------------------------

    def _handle_request(
        self, route: str, raw: bytes, trace_id: str | None = None
    ) -> tuple[int, bytes, dict | None, tuple[str, str] | None]:
        """Parse, guard, and answer one request body on a handler thread.

        Returns ``(status, body_bytes, extra_headers, cache_entry)``;
        ``cache_entry`` is ``(kind, payload_json)`` for cacheable 200s.
        ``trace_id`` is the caller-supplied id (``X-Trace-Id`` header or
        ``trace_id`` envelope field); the trace itself is activated here,
        on the handler thread, because ContextVars do not propagate into
        ``run_in_executor``.
        """
        if route == "/v1/metrics":
            return self._metrics_response()
        token = None
        trace = None
        trace_token = None
        if obs_trace.enabled():
            trace = RequestTrace(trace_id)
            trace_token = obs_trace.activate(trace)
        try:
            try:
                if route == "/v1/health":
                    status, body = 200, self._health_body()
                else:
                    blob = self._parse_body(raw)
                    body_tid = coerce_trace_id(blob.pop("trace_id", None))
                    if body_tid is not None and trace is not None:
                        # The envelope field wins over the header (it is
                        # part of the request proper); adopt it before
                        # any failure path can echo the id.
                        trace.trace_id = body_tid
                    token = self._activate_deadline(blob)
                    status, body = getattr(self, self._POST_ROUTES[route])(blob)
            except RequestError as exc:
                status, body = 400, _error_body(str(exc), 400, exc.detail or None)
            except DeadlineExceeded as exc:
                # Normally the Session converts expiry into a 504 Result;
                # this catches expiry in serve-layer code outside a Session
                # entry point, so a deadline can never surface as a 500.
                detail = {
                    "reason": "deadline_exceeded",
                    "deadline_ms": exc.budget_ms,
                    "where": exc.where,
                }
                if trace is not None:
                    detail["trace_id"] = trace.trace_id
                status, body = 504, _error_body(str(exc), 504, detail)
            except (LoopNestError, ParseError, ValueError, TypeError, KeyError) as exc:
                status, body = 400, _error_body(str(exc) or type(exc).__name__, 400)
            except InjectedFault as exc:
                # The chaos suite's escape hatch: an armed fault that nothing
                # degraded around still maps to a structured envelope.
                status, body = 500, _error_body(str(exc), 500, {
                    "reason": "injected-fault", "point": exc.point,
                })
            except Exception as exc:
                # The defensive 500: a structured envelope with an error id;
                # the traceback goes to the log (as a structured line
                # correlating error_id with trace_id), never into the body.
                error_id = uuid.uuid4().hex[:12]
                _log.error("%s", json.dumps({
                    "event": "internal-error",
                    "error_id": error_id,
                    "trace_id": trace.trace_id if trace is not None else None,
                    "route": route,
                    "exception": type(exc).__name__,
                    "traceback": traceback.format_exc(),
                }))
                detail = {
                    "reason": "internal",
                    "error_id": error_id,
                    "exception": type(exc).__name__,
                }
                if trace is not None:
                    detail["trace_id"] = trace.trace_id
                status, body = 500, _error_body(
                    f"internal error (id {error_id})", 500, detail,
                )
            finally:
                if token is not None:
                    deactivate(token)
            headers = None
            if status == 429:
                headers = {"Retry-After": "1"}
            elif status == 503:
                headers = {"Retry-After": "5"}
            cache_entry = None
            if status == 200 and route in _CACHEABLE_ROUTES:
                cache_entry = (body["kind"], json.dumps(body["payload"]))
            if trace is not None:
                self._stamp_trace_meta(body, trace)
                headers = dict(headers or {})
                headers["X-Trace-Id"] = trace.trace_id
                with span("serialize"):
                    data = _dump(body)
            else:
                data = _dump(body)
        finally:
            if trace_token is not None:
                obs_trace.deactivate(trace_token)
        if trace is not None:
            self._finish_trace(trace, route, status)
        return status, data, headers, cache_entry

    @staticmethod
    def _stamp_trace_meta(body: dict, trace: RequestTrace) -> None:
        """``meta.trace_id`` + ``meta.timings`` on every envelope in
        ``body`` — the single-result meta and each batch/sweep item.
        Meta-only, so cached payload bytes and goldens are untouched."""
        timings = trace.timings_ms()
        results = body.get("results")
        if isinstance(results, list):
            for item in results:
                if isinstance(item, dict) and isinstance(item.get("meta"), dict):
                    item["meta"]["trace_id"] = trace.trace_id
                    item["meta"]["timings"] = timings
        meta = body.get("meta")
        if isinstance(meta, dict):
            meta["trace_id"] = trace.trace_id
            meta["timings"] = timings

    def _finish_trace(self, trace: RequestTrace, route: str, status: int) -> None:
        """Harvest stage totals into the registry; log slow requests."""
        obs_trace.harvest(trace)
        threshold = self.slow_request_ms
        if threshold is None:
            return
        total_ms = trace.total_seconds() * 1000.0
        if total_ms >= threshold:
            _log.warning("%s", json.dumps({
                "event": "slow-request",
                "trace_id": trace.trace_id,
                "route": route,
                "status": status,
                "total_ms": round(total_ms, 3),
                "threshold_ms": threshold,
                "stages": {k: round(v * 1000.0, 3)
                           for k, v in sorted(trace.stages.items())},
                "spans": trace.span_tree_lines(),
            }))

    def _metrics_response(self) -> tuple[int, bytes, dict | None, None]:
        """The ``GET /v1/metrics`` Prometheus text exposition."""
        try:
            text = self._metrics_text()
        except Exception:
            error_id = uuid.uuid4().hex[:12]
            _log.error("%s", json.dumps({
                "event": "internal-error",
                "error_id": error_id,
                "route": "/v1/metrics",
                "traceback": traceback.format_exc(),
            }))
            body = _error_body(f"internal error (id {error_id})", 500,
                               {"reason": "internal", "error_id": error_id})
            return 500, _dump(body), None, None
        return (
            200,
            text.encode("utf-8"),
            {"Content-Type": PROMETHEUS_CONTENT_TYPE},
            None,
        )

    def _metrics_text(self) -> str:
        """Registry metrics + live planner/shared-store/server counters."""
        parts = [render_registry(self._registry)]
        stats = self._server_stats()
        parts.append(render_counters(
            "repro_server_requests_total", "route", stats["requests_by_route"],
            "Requests served, by route.",
        ))
        planner_stats = getattr(getattr(self.session, "planner", None), "stats", None)
        if planner_stats is not None:
            parts.append(render_counters(
                "repro_plan_cache_events_total", "event", planner_stats.as_dict(),
                "Planner structure-cache events (hits, solves, coalesced, ...).",
            ))
        shared = stats.get("shared_cache")
        if shared:
            parts.append(render_counters(
                "repro_shared_store_events_total", "event",
                {k: v for k, v in shared.items()
                 if k not in ("version", "shards")},
                "Cross-process shared plan-store events.",
            ))
        response_cache = stats["response_cache"]
        parts.append(render_counters(
            "repro_response_cache_events_total", "event",
            {"hits": response_cache["hits"], "misses": response_cache["misses"]},
            "Full-request response-cache events.",
        ))
        workers = stats["workers"]
        parts.append(render_counters(
            "repro_pool_events_total", "event",
            {"dispatched": workers["dispatched"], "failures": workers["failures"]},
            "Worker-pool prewarm dispatches and failures.",
        ))
        parts.append(
            "# TYPE repro_coalesced_total counter\n"
            f"repro_coalesced_total {stats['coalesced']}\n"
            "# TYPE repro_requests_served_total counter\n"
            f"repro_requests_served_total {stats['requests_served']}\n"
            "# TYPE repro_inflight gauge\n"
            f"repro_inflight {stats['inflight']}\n"
            "# TYPE repro_draining gauge\n"
            f"repro_draining {int(stats['draining'])}\n"
        )
        return "".join(parts)

    def _parse_body(self, raw: bytes) -> dict:
        if not raw:
            raise RequestError("empty request body; POST a JSON object")
        try:
            blob = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(blob, dict):
            raise RequestError("request body must be a JSON object")
        return blob

    def _activate_deadline(self, blob: dict):
        """Strip/validate ``deadline_ms`` and make the budget ambient.

        ``deadline_ms`` is an envelope-level field shared by every POST
        schema, so it is validated here (before per-request
        ``from_json``); the caller's ``finally`` clears the token.
        """
        deadline_ms = blob.pop("deadline_ms", None)
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise RequestError("deadline_ms must be a positive number of milliseconds")
        else:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is None:
            return None
        return activate(Deadline(float(deadline_ms)))

    def _health_body(self) -> dict:
        body = self.session.health().to_json()
        body["payload"]["server"] = self._server_stats()
        return body

    def _server_stats(self) -> dict:
        # The whole snapshot is taken under _stats_lock (satellite fix):
        # health/metrics scraped mid-drain() see one consistent moment —
        # never a drained flag next to pre-drain counters, and never a
        # route-count dict mutating underfoot.  Lock order is always
        # _stats_lock -> _pool_lock / _response_cache_lock /
        # _inflight_lock; no path takes them in reverse.
        with self._stats_lock:
            with self._pool_lock:
                pool = self._pool
                pool_alive = pool is not None and not getattr(pool, "_broken", False)
            with self._response_cache_lock:
                response_cache = {
                    "capacity": self._response_cache_cap,
                    "entries": len(self._response_cache),
                    "hits": self._response_hits,
                    "misses": self._response_misses,
                }
            store = getattr(
                getattr(self.session, "planner", None), "shared_store", None
            )
            return {
                "workers": {
                    "configured": self.workers,
                    "pool_started": pool is not None,
                    "pool_alive": pool_alive,
                    "dispatched": self._pool_dispatched,
                    "failures": self._pool_failures,
                },
                "shared_cache": store.stats_dict() if store is not None else None,
                "response_cache": response_cache,
                "coalesced": self._coalesced,
                "requests_served": self._requests_served,
                "requests_by_route": dict(sorted(self._route_counts.items())),
                "inflight": self.inflight,
                "draining": self.draining,
            }

    # -- worker pool (cold structure solves) ----------------------------------

    def _get_pool(self) -> ProcessPoolExecutor | None:
        failed = False
        try:
            with self._pool_lock:
                if self._pool is None and not self._closed:
                    try:
                        self._pool = ProcessPoolExecutor(max_workers=self.workers)
                    except (OSError, RuntimeError):
                        # Restricted sandbox (no semaphores, fork
                        # disabled): the inline solve path is the
                        # documented fallback.  (The failure is counted
                        # outside _pool_lock — _stats_lock is always the
                        # outer lock of the pair.)
                        failed = True
                        return None
                return self._pool
        finally:
            if failed:
                with self._stats_lock:
                    self._pool_failures += 1

    def _prewarm(self, nest) -> None:
        """Solve a missing canonical structure in the worker pool.

        Best-effort: any pool problem falls back to the inline solve the
        session would do anyway.  Skipped while faults are armed —
        in-process injected faults are invisible to pool workers, and
        the chaos suite's contracts are about the inline path.
        """
        if self.workers <= 0 or faults.any_active():
            return
        planner = getattr(self.session, "planner", None)
        if planner is None or not hasattr(planner, "probe_structure"):
            return
        try:
            key = planner.canonicalization(nest).form.key()
        except Exception:
            return  # invalid nests surface properly in the session call
        if planner.probe_structure(key):
            return
        checkpoint("serve-prewarm")
        while True:
            with self._prewarm_lock:
                event = self._prewarming.get(key)
                if event is None:
                    event = threading.Event()
                    self._prewarming[key] = event
                    break
            # Another handler is already dispatching this structure:
            # wait it out, then answer from the (now warm) planner.
            while not event.wait(0.02):
                checkpoint("serve-prewarm")
            if planner.probe_structure(key):
                return
            # The leader failed (broken pool, timeout): take over.
        try:
            pool = self._get_pool()
            if pool is None:
                return
            timeout = None
            ambient = current_deadline()
            if ambient is not None:
                timeout = max(ambient.remaining_ms, 0.0) / 1000.0
            try:
                solved_key, pieces, delta = pool.submit(
                    _solve_structure, key
                ).result(timeout)
            except FuturesTimeoutError:
                return  # the inline path will raise DeadlineExceeded cleanly
            except BrokenProcessPool:
                with self._stats_lock:
                    self._pool_failures += 1
                with self._pool_lock:
                    broken, self._pool = self._pool, None
                if broken is not None:
                    broken.shutdown(wait=False, cancel_futures=True)
                return
            except (OSError, RuntimeError):
                with self._stats_lock:
                    self._pool_failures += 1
                return
            with self._stats_lock:
                self._pool_dispatched += 1
            planner.install_structure(solved_key, pieces)
            merge_worker_delta(delta)
        finally:
            with self._prewarm_lock:
                self._prewarming.pop(key, None)
            event.set()
        checkpoint("serve-prewarm")

    # -- endpoints (thread pool) ----------------------------------------------

    _POST_ROUTES = {
        "/v1/analyze": "_post_analyze",
        "/v1/batch": "_post_batch",
        "/v1/sweep": "_post_sweep",
        "/v1/simulate": "_post_simulate",
        "/v1/tune": "_post_tune",
        "/v1/hierarchy": "_post_hierarchy",
        "/v1/program": "_post_program",
        "/v1/distributed": "_post_distributed",
    }

    def _batch_workers(self) -> int:
        # Injected faults must hit the inline path (pool workers cannot
        # see in-process fault state), mirroring _prewarm's guard.
        if self.workers > 0 and not faults.any_active():
            return self.workers
        return 0

    def _post_analyze(self, blob: dict) -> tuple[int, dict]:
        request = AnalyzeRequest.from_json(blob, "analyze")
        self._prewarm(request.nest)
        return _result_response(self.session.analyze(request))

    def _post_batch(self, blob: dict) -> tuple[int, dict]:
        entries = blob.get("requests")
        if not isinstance(entries, list):
            raise RequestError("batch body needs a 'requests' list")
        if len(entries) > MAX_BATCH_REQUESTS:
            raise RequestError(f"batch of {len(entries)} exceeds {MAX_BATCH_REQUESTS} requests")
        requests = [
            AnalyzeRequest.from_json(entry, f"requests[{idx}]")
            for idx, entry in enumerate(entries)
        ]
        return self._batch_response(
            "batch", self.session.batch(requests, workers=self._batch_workers())
        )

    def _post_sweep(self, blob: dict) -> tuple[int, dict]:
        sweep = SweepRequest.from_json(blob, "sweep")
        expanded = sweep.expand()
        if len(expanded) > MAX_BATCH_REQUESTS:
            raise RequestError(f"sweep grid exceeds {MAX_BATCH_REQUESTS} requests")
        return self._batch_response(
            "sweep", self.session.batch(expanded, workers=self._batch_workers())
        )

    @staticmethod
    def _batch_response(kind: str, results: list[Result]) -> tuple[int, dict]:
        if results and all(not r.ok for r in results):
            # The batch failed as one unit (an expired deadline maps every
            # request to the same envelope): answer with that envelope and
            # its own status rather than a 200 wrapping N copies.
            return _result_response(results[0])
        return 200, _results_body(kind, results)

    def _post_simulate(self, blob: dict) -> tuple[int, dict]:
        request = SimulateRequest.from_json(blob, "simulate")
        return _result_response(self.session.simulate(request))

    def _post_tune(self, blob: dict) -> tuple[int, dict]:
        request = TuneRequest.from_json(blob, "tune")
        # Serial candidate evaluation: tuner pools fan out far wider
        # than a request should (they belong to offline jobs).
        return _result_response(self.session.tune(request, workers=0))

    def _post_hierarchy(self, blob: dict) -> tuple[int, dict]:
        request = HierarchyRequest.from_json(blob, "hierarchy")
        # Serial candidate evaluation, same reason as tune.
        return _result_response(self.session.hierarchy(request, workers=0))

    def _post_program(self, blob: dict) -> tuple[int, dict]:
        request = ProgramRequest.from_json(blob, "program")
        # Serial band tuning, same reason as tune.
        return _result_response(self.session.program(request, workers=0))

    def _post_distributed(self, blob: dict) -> tuple[int, dict]:
        request = DistributedRequest.from_json(blob, "distributed")
        return _result_response(self.session.distributed(request))


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    session: Session | None = None,
    verbose: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    default_deadline_ms: float | None = None,
    workers: int | None = None,
    response_cache: int = 0,
    slow_request_ms: float | None = DEFAULT_SLOW_REQUEST_MS,
) -> ServiceServer:
    """Bound, ready-to-``serve_forever`` server (``port=0`` = ephemeral).

    ``max_inflight`` bounds concurrently-processed POSTs (excess load is
    shed with 429); ``default_deadline_ms`` deadline-bounds requests
    that do not set their own ``deadline_ms``; ``workers`` sizes the
    process pool for cold structure solves (``None`` reads
    ``REPRO_SERVE_WORKERS``, default 0 = no pool); ``response_cache``
    turns on the full-request response cache (entries; 0 = off);
    ``slow_request_ms`` sets the slow-request span-tree log threshold
    (``None`` disables it).
    """
    if max_inflight < 1:
        raise ValueError("max_inflight must be >= 1")
    if default_deadline_ms is not None and default_deadline_ms <= 0:
        raise ValueError("default_deadline_ms must be positive")
    if slow_request_ms is not None and slow_request_ms <= 0:
        raise ValueError("slow_request_ms must be positive (or None to disable)")
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        try:
            workers = int(raw) if raw else 0
        except ValueError as exc:
            raise ValueError(f"bad {WORKERS_ENV_VAR} value {raw!r}") from exc
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if response_cache < 0:
        raise ValueError("response_cache must be >= 0")
    return ServiceServer(
        (host, port),
        session if session is not None else Session(),
        verbose=verbose,
        max_inflight=int(max_inflight),
        default_deadline_ms=default_deadline_ms,
        workers=int(workers),
        response_cache=int(response_cache),
        slow_request_ms=slow_request_ms,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    session: Session | None = None,
    verbose: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    default_deadline_ms: float | None = None,
    workers: int | None = None,
    response_cache: int = DEFAULT_RESPONSE_CACHE,
    slow_request_ms: float | None = DEFAULT_SLOW_REQUEST_MS,
) -> int:
    """Run the JSON service until interrupted (the CLI entry point)."""
    server = make_server(
        host, port, session=session, verbose=verbose,
        max_inflight=max_inflight, default_deadline_ms=default_deadline_ms,
        workers=workers, response_cache=response_cache,
        slow_request_ms=slow_request_ms,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-tile serve: listening on http://{bound_host}:{bound_port}/v1/ "
          f"(schema v{SCHEMA_VERSION}; workers={server.workers}; Ctrl-C to stop)",
          flush=True)

    # SIGTERM (what `kill`, systemd, and containers send) must take the
    # same graceful path as Ctrl-C: the default handler would kill only
    # this process, orphaning fork-started pool workers that inherited
    # the listening socket — the port would stay busy and a restarted
    # server could never bind it.
    def _graceful_term(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _graceful_term)
    except (ValueError, OSError):  # non-main thread (embedded use)
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.drain()
        print("repro-tile serve: shutting down")
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()
    return 0
