"""Wire-format vocabulary shared by every façade request and result.

The schema-v1 conventions, in one place:

* **Fractions** travel as exact ``"p/q"`` strings (``str(Fraction)``
  and ``Fraction(str)`` are exact inverses), never as floats.
* **Loop nests** travel as the :meth:`repro.core.loopnest.LoopNest.to_json`
  dict, or — in requests only — as the two CLI shorthands
  ``{"problem": name, "sizes": [...]}`` and
  ``{"statement": "...", "bounds": {...}}``.
* **Payloads** are plain JSON types; :func:`json_safe` normalises
  tuples to lists and Fractions to strings so a
  :class:`repro.api.Result` compares equal across a JSON round trip.

Validation failures raise :class:`RequestError`, which the HTTP layer
maps to structured 4xx payloads and the CLI maps to exit code 2.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..core.loopnest import LoopNest, LoopNestError
from ..core.parser import ParseError, parse_nest
from ..library.problems import build_problem

__all__ = ["RequestError", "SCHEMA_VERSION", "json_safe", "nest_from_json", "parse_fraction"]

#: Version tag stamped on every Result envelope and checked on decode.
SCHEMA_VERSION = 1


class RequestError(ValueError):
    """A malformed or invalid façade request.

    ``detail`` carries a JSON-safe context dict the service layer
    forwards verbatim in its 4xx payloads.
    """

    def __init__(self, message: str, detail: dict | None = None):
        super().__init__(message)
        self.detail = detail or {}


def parse_fraction(blob: object, field: str = "value") -> Fraction:
    """Exact Fraction from a ``"p/q"`` string (or int)."""
    try:
        return Fraction(blob) if isinstance(blob, (str, int)) else Fraction(str(blob))
    except (ValueError, ZeroDivisionError) as exc:
        raise RequestError(f"bad fraction for {field!r}: {blob!r}") from exc


def nest_from_json(blob: object, where: str = "request") -> LoopNest:
    """Build a nest from any of the three request spellings.

    Accepts an inline nest dict (under ``"nest"`` or at top level), a
    catalog reference (``"problem"`` + optional ``"sizes"``), or a
    statement (``"statement"`` + ``"bounds"``).
    """
    if not isinstance(blob, Mapping):
        raise RequestError(f"{where}: expected an object, got {type(blob).__name__}")
    try:
        if "nest" in blob:
            return LoopNest.from_json(blob["nest"])
        if "problem" in blob:
            sizes = blob.get("sizes")
            if sizes is not None and not isinstance(sizes, (list, tuple)):
                raise RequestError(f"{where}: 'sizes' must be a list")
            return build_problem(str(blob["problem"]), sizes)
        if "statement" in blob:
            bounds = blob.get("bounds")
            if not isinstance(bounds, Mapping):
                raise RequestError(f"{where}: statement requests need a 'bounds' object")
            return parse_nest(
                str(blob["statement"]),
                {str(k): int(v) for k, v in bounds.items()},
                name=str(blob.get("name", "request")),
            )
        if "loops" in blob and "arrays" in blob:
            return LoopNest.from_json(blob)
    except RequestError:
        raise
    except (KeyError, TypeError, ValueError, LoopNestError, ParseError) as exc:
        raise RequestError(f"{where}: {exc}") from exc
    raise RequestError(f"{where}: need one of 'nest', 'problem' or 'statement'")


def json_safe(value: object, where: str = "payload") -> object:
    """Normalise to plain JSON types (lists, ``"p/q"`` strings, scalars).

    Guarantees ``json.loads(json.dumps(x)) == x`` for the result, which
    is what makes Result equality survive serialization.
    """
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): json_safe(v, where) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v, where) for v in value]
    raise TypeError(f"{where}: {type(value).__name__} is not JSON-serializable")
