"""The session-scoped service façade: one object, every entry point.

A :class:`Session` owns the machinery a stream of queries shares —

* a :class:`~repro.plan.Planner` (the canonical-structure plan cache,
  optionally JSON-persistent),
* a trace-engine choice and machine-model defaults for simulation,
* a worker-count default for parallel cold-structure solves —

and exposes the typed entry points ``analyze``/``batch``/``sweep``/
``simulate``/``tune``/``hierarchy``/``distributed``/``health``, each
returning a versioned
:class:`~repro.api.Result` envelope with timing and cache-hit metadata.
The CLI, the HTTP service (:mod:`repro.serve`), the benchmarks and the
examples all go through this class; the flat top-level helpers
(``repro.analyze`` and friends) delegate to a process-wide
:func:`default_session`, which is what makes repeated one-call analyses
of structurally identical nests hit the plan cache instead of
re-running the rational simplex.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import replace
from typing import Iterable

from ..core.bounds import CommunicationLowerBound, communication_lower_bound
from ..core.duality import Theorem3Certificate, theorem3_certificate
from ..core.loopnest import LoopNest
from ..core.tiling import TileShape, TilingSolution, solve_tiling
from ..frontend.pipeline import plan_program
from ..machine.model import MachineModel
from ..obs import current_trace, global_registry, span, trace_scope
from ..parallel.distributed import DistributedReport, simulate_grid
from ..plan.batch import plan_batch
from ..plan.planner import Planner, PlanRequest, TilePlan
from ..simulate.trace_sim import run_trace_simulation
from ..tune.tuner import tune_hierarchy, tune_tile
from ..util.deadline import DeadlineExceeded, deadline_scope
from .requests import (
    AnalyzeRequest,
    DistributedRequest,
    HierarchyRequest,
    ProgramRequest,
    SimulateRequest,
    SweepRequest,
    TuneRequest,
)
from .result import Result
from .wire import RequestError

__all__ = ["Session", "default_session", "reset_default_session"]


def _ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


def _deadline_error(exc: DeadlineExceeded) -> Result:
    """The structured 504 envelope for an expired request deadline."""
    detail = {
        "reason": "deadline_exceeded",
        "deadline_ms": exc.budget_ms,
        "where": exc.where,
    }
    trace = current_trace()
    if trace is not None:
        # Correlate the timeout with the request trace, next to `where`.
        detail["trace_id"] = trace.trace_id
    return Result.error(str(exc), status=504, detail=detail)


def _stamp_trace(out, trace) -> None:
    """Write ``meta.trace_id``/``meta.timings`` onto a Result (or each of
    a batch's Results) in place — meta-only, so golden payloads stay
    byte-identical with tracing enabled."""
    timings = trace.timings_ms()
    for result in out if isinstance(out, list) else (out,):
        if isinstance(result, Result):
            result.meta["trace_id"] = trace.trace_id
            result.meta["timings"] = timings


def _traced(method):
    """Run a Session entry point under an ambient request trace.

    Reuses the trace the HTTP layer installed (same id end to end) or
    creates one for direct library/CLI calls; either way the returned
    envelope(s) carry the stage breakdown in meta.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with trace_scope() as trace:
            out = method(self, *args, **kwargs)
            if trace is not None:
                _stamp_trace(out, trace)
            return out

    return wrapper


def _degraded_meta(events: dict) -> dict | None:
    """Meta fields describing observed degradation; None when clean.

    Returning ``None`` on the clean path keeps fault-free payloads
    byte-identical to the historical golden envelopes — ``degraded``
    never appears unless something actually degraded.
    """
    if not events.get("degraded"):
        return None
    extra: dict = {"degraded": True}
    reasons = events.get("degraded_reasons")
    if reasons:
        extra["degraded_reasons"] = sorted(set(reasons))
    return extra


class Session:
    """A service scope: plan cache + engine defaults + typed entry points.

    Parameters
    ----------
    planner:
        An existing :class:`~repro.plan.Planner` to share; a private one
        is created from ``plan_capacity``/``plan_cache`` when omitted.
    plan_capacity:
        LRU capacity (canonical structures) of the private planner.
    plan_cache:
        Optional JSON path for plan persistence (loaded eagerly, written
        by :meth:`save_plans`).
    shared_cache:
        Optional cross-process plan store — a
        :class:`~repro.util.sharedstore.SharedPlanStore` or a directory
        path for one.  Structure misses consult it before solving and
        fresh solves publish back, so concurrent server processes warm
        each other.  Only valid for the private planner (pass a
        pre-wired planner otherwise).
    line_words:
        Cache-line granularity for :meth:`simulate` (1 = paper model).
    engine:
        Trace engine for :meth:`simulate`: ``"batched"`` or
        ``"reference"``.
    workers:
        Default worker-process count for cold structure solves in
        :meth:`batch` (None = executor default; 0 = serial).
    """

    def __init__(
        self,
        planner: Planner | None = None,
        *,
        plan_capacity: int = 128,
        plan_cache=None,
        shared_cache=None,
        line_words: int = 1,
        engine: str = "batched",
        workers: int | None = None,
    ):
        if engine not in ("batched", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if line_words < 1:
            raise ValueError("line_words must be >= 1")
        if planner is not None and shared_cache is not None:
            raise ValueError(
                "pass shared_cache to the planner itself, not alongside one"
            )
        self.planner = planner if planner is not None else Planner(
            capacity=plan_capacity, cache_path=plan_cache, shared_store=shared_cache
        )
        self.line_words = line_words
        self.engine = engine
        self.workers = workers
        self._started = time.time()

    # -- request coercion ---------------------------------------------------

    def _as_analyze(
        self,
        request,
        cache_words: int | None = None,
        budget: str = "per-array",
        certificate: bool = False,
    ) -> AnalyzeRequest:
        if isinstance(request, (AnalyzeRequest, PlanRequest)):
            # A request object is authoritative; mixing in overrides
            # would silently answer for the wrong instance.
            if cache_words is not None or budget != "per-array":
                raise RequestError(
                    "pass cache_words/budget either inside the request object "
                    "or alongside a bare nest, not both"
                )
        if isinstance(request, AnalyzeRequest):
            if certificate and not request.certificate:
                request = replace(request, certificate=True)
            return request.validate()
        if isinstance(request, PlanRequest):
            return AnalyzeRequest(
                nest=request.nest,
                cache_words=request.cache_words,
                budget=request.budget,
                certificate=certificate,
            ).validate()
        if isinstance(request, LoopNest):
            if cache_words is None:
                raise RequestError("analyze(nest, ...) needs cache_words")
            return AnalyzeRequest(
                nest=request,
                cache_words=int(cache_words),
                budget=budget,
                certificate=certificate,
            ).validate()
        if isinstance(request, tuple) and 2 <= len(request) <= 3:
            nest, m, *rest = request
            return AnalyzeRequest(
                nest=nest,
                cache_words=int(m),
                budget=rest[0] if rest else budget,
                certificate=certificate,
            ).validate()
        raise RequestError(
            f"cannot interpret {type(request).__name__} as an analyze request"
        )

    # -- payload builders ---------------------------------------------------

    @staticmethod
    def _certificate_payload(cert: Theorem3Certificate) -> dict:
        # Like the lower bound (and the pre-façade repro.analyze), the
        # certificate always certifies the paper-model per-array LP at
        # the full cache size; the self-describing fields below keep
        # that unambiguous next to an aggregate-budget k_hat.
        return {
            "tight": cert.tight,
            "primal": cert.primal_value,
            "dual": cert.dual_value,
            "zeta": list(cert.dual.zeta),
            "s": list(cert.dual.s),
            "complementary_slackness": cert.complementary_slackness,
            "cache_words": cert.cache_words,
            "budget": "per-array",
        }

    def _analyze_result(
        self,
        request: AnalyzeRequest,
        plan: TilePlan,
        t0: float | None = None,
        elapsed_ms: float | None = None,
        extra_meta: dict | None = None,
    ) -> Result:
        payload = plan.to_json()
        payload.pop("cache_hit", None)
        payload["certificate"] = (
            self._certificate_payload(
                self.planner.certificate(request.nest, request.cache_words)
            )
            if request.certificate
            else None
        )
        if elapsed_ms is None:
            elapsed_ms = _ms(time.perf_counter() - t0)
        meta = {"elapsed_ms": elapsed_ms, "cache_hit": plan.cache_hit}
        if extra_meta:
            meta.update(extra_meta)
        return Result(
            kind="analyze",
            payload=payload,
            meta=meta,
            detail=plan,
        )

    # -- service entry points -----------------------------------------------

    @_traced
    def analyze(
        self,
        request,
        cache_words: int | None = None,
        *,
        budget: str = "per-array",
        certificate: bool = False,
        deadline_ms: float | None = None,
    ) -> Result:
        """One query through the plan cache; the ``/v1/analyze`` core.

        Accepts an :class:`AnalyzeRequest`, a
        :class:`~repro.plan.PlanRequest`, a bare nest plus
        ``cache_words``, or a ``(nest, cache_words[, budget])`` tuple.
        ``deadline_ms`` bounds the solve cooperatively: a cold structure
        whose simplex outruns the budget yields a structured 504
        envelope instead of blocking indefinitely.
        """
        t0 = time.perf_counter()
        request = self._as_analyze(request, cache_words, budget, certificate)
        try:
            with deadline_scope(deadline_ms):
                plan = self.planner.plan(request.nest, request.cache_words, request.budget)
                return self._analyze_result(request, plan, t0)
        except DeadlineExceeded as exc:
            return _deadline_error(exc)

    @_traced
    def batch(
        self,
        requests: Iterable,
        *,
        workers: int | None = None,
        budget: str = "per-array",
        deadline_ms: float | None = None,
    ) -> list[Result]:
        """Serve many analyze queries in request order.

        Distinct missing canonical structures are solved in parallel
        worker processes first (``workers``, defaulting to the session
        setting), then every request is answered from the warm cache.
        Each result's ``meta.elapsed_ms`` is the *amortised* per-request
        batch time (total batch wall clock / request count).

        If a worker pool breaks mid-run (a crashed worker), surviving
        solves are kept, the rest are re-solved serially, and every
        result's meta carries ``degraded: true``.  If ``deadline_ms``
        expires mid-batch, every request maps to the structured 504
        envelope (the batch is one unit of work — per-request partial
        answers would break positional zipping).
        """
        t0 = time.perf_counter()
        reqs = [self._as_analyze(item, budget=budget) for item in requests]
        events: dict = {}
        try:
            with deadline_scope(deadline_ms):
                plans = plan_batch(
                    [PlanRequest(r.nest, r.cache_words, r.budget) for r in reqs],
                    planner=self.planner,
                    max_workers=self.workers if workers is None else workers,
                    events=events,
                )
        except DeadlineExceeded as exc:
            return [_deadline_error(exc) for _ in reqs]
        per_request_ms = _ms((time.perf_counter() - t0) / max(1, len(reqs)))
        extra = _degraded_meta(events)
        return [
            self._analyze_result(req, plan, elapsed_ms=per_request_ms, extra_meta=extra)
            for req, plan in zip(reqs, plans)
        ]

    @_traced
    def sweep(
        self,
        request: SweepRequest,
        *,
        workers: int | None = None,
        deadline_ms: float | None = None,
    ) -> list[Result]:
        """Expand a :class:`SweepRequest` grid and serve it as a batch."""
        return self.batch(request.expand(), workers=workers, deadline_ms=deadline_ms)

    @_traced
    def simulate(self, request: SimulateRequest, *, deadline_ms: float | None = None) -> Result:
        """Trace-driven cache simulation; the ``/v1`` story's ground truth."""
        t0 = time.perf_counter()
        request = request.validate()
        try:
            with deadline_scope(deadline_ms):
                return self._simulate_inner(request, t0)
        except DeadlineExceeded as exc:
            return _deadline_error(exc)

    def _simulate_inner(self, request: SimulateRequest, t0: float) -> Result:
        planned: TilePlan | None = None
        if request.tile is not None:
            tile = TileShape(nest=request.nest, blocks=request.tile)
        else:
            planned = self.planner.plan(
                request.nest, request.cache_words, request.budget, include_bound=True
            )
            tile = planned.tile
        line_words = request.line_words if request.line_words is not None else self.line_words
        machine = MachineModel(cache_words=request.cache_words, line_words=line_words)
        with span("simulation"):
            report = run_trace_simulation(
                request.nest, machine, tile=tile, policy=request.policy,
                engine=self.engine,
            )
        payload = {
            "nest": request.nest.to_json(),
            "cache_words": request.cache_words,
            "line_words": line_words,
            "policy": request.policy,
            "engine": self.engine,
            "tile": list(tile.blocks),
            "tile_planned": request.tile is None,
            "total_words": report.total_words,
            "loads": report.loads,
            "stores": report.stores,
            "per_array": [
                {"name": a.name, "loads": a.loads, "stores": a.stores}
                for a in report.per_array
            ],
            "accesses": report.meta.get("accesses"),
            "misses": report.meta.get("misses"),
            "lower_bound_words": (
                planned.lower_bound.value
                if planned is not None and planned.lower_bound is not None
                else None
            ),
        }
        meta = {
            "elapsed_ms": _ms(time.perf_counter() - t0),
            "cache_hit": planned.cache_hit if planned is not None else None,
        }
        return Result(kind="simulate", payload=payload, meta=meta, detail=report)

    @_traced
    def tune(
        self,
        request: TuneRequest,
        *,
        workers: int | None = None,
        deadline_ms: float | None = None,
    ) -> Result:
        """Simulation-in-the-loop tile autotuning; the ``/v1/tune`` core.

        Seeds at the plan cache's analytic optimum, searches the integer
        tile lattice with the trace simulator scoring candidates, and
        returns a :class:`~repro.tune.TuneReport` payload certified
        against the Theorem lower bound.  ``workers`` parallelises
        candidate evaluation (defaults to the session setting; the
        payload is identical either way).  A crashed evaluation pool is
        survived serially (``meta.degraded``); an expired ``deadline_ms``
        yields the structured 504 envelope.
        """
        t0 = time.perf_counter()
        request = request.validate()
        events: dict = {}
        try:
            with deadline_scope(deadline_ms):
                report = tune_tile(
                    request.nest,
                    request.cache_words,
                    budget=request.budget,
                    strategy=request.strategy,
                    max_evaluations=request.max_evaluations,
                    radius=request.radius,
                    capacities=request.capacities,
                    planner=self.planner,
                    workers=self.workers if workers is None else workers,
                    events=events,
                )
        except DeadlineExceeded as exc:
            return _deadline_error(exc)
        payload = report.to_json()
        meta = {
            "elapsed_ms": _ms(time.perf_counter() - t0),
            "cache_hit": report.plan.cache_hit,
        }
        extra = _degraded_meta(events)
        if extra:
            meta.update(extra)
        return Result(kind="tune", payload=payload, meta=meta, detail=report)

    @_traced
    def hierarchy(
        self,
        request: HierarchyRequest,
        *,
        workers: int | None = None,
        deadline_ms: float | None = None,
    ) -> Result:
        """Hierarchy-native planning; the ``/v1/hierarchy`` core.

        Plans one nested tiling per level through the plan cache (one
        cached mpLP piece evaluation per level — structurally identical
        nests at different capacity stacks are warm hits), measures the
        innermost walk across every boundary from a single one-pass
        trace, certifies each boundary against its Theorem bound, and —
        when the request carries a tune budget — searches innermost
        tiles that never un-nest the hierarchy.  Returns a
        :class:`~repro.tune.HierarchyReport` payload; like tune, the
        payload is byte-identical across surfaces and worker counts.
        """
        t0 = time.perf_counter()
        request = request.validate()
        events: dict = {}
        try:
            with deadline_scope(deadline_ms):
                report = tune_hierarchy(
                    request.nest,
                    request.capacities,
                    budget=request.budget,
                    strategy=request.strategy,
                    max_evaluations=max(1, request.tune_budget),
                    radius=request.radius,
                    planner=self.planner,
                    workers=self.workers if workers is None else workers,
                    events=events,
                )
        except DeadlineExceeded as exc:
            return _deadline_error(exc)
        payload = report.to_json()
        meta = {
            "elapsed_ms": _ms(time.perf_counter() - t0),
            "cache_hit": report.cache_hit,
        }
        extra = _degraded_meta(events)
        if extra:
            meta.update(extra)
        return Result(kind="hierarchy", payload=payload, meta=meta, detail=report)

    @_traced
    def program(
        self,
        request: ProgramRequest,
        *,
        workers: int | None = None,
        deadline_ms: float | None = None,
    ) -> Result:
        """Whole-program ingestion; the ``/v1/program`` core.

        Splits the request's program into maximal perfect projective
        bands and plans each through this session's one shared plan
        cache, so structurally identical bands — and any single-nest
        query that came before — warm each other.  The payload is a pure
        function of the request (per-band ``cache_hit`` and the live
        planner-stats delta ride on meta), so the same program yields
        byte-identical payloads across surfaces and cache temperatures.
        """
        t0 = time.perf_counter()
        request = request.validate()
        events: dict = {}
        stats_before = self.planner.stats.as_dict()
        try:
            with deadline_scope(deadline_ms):
                report = plan_program(
                    request.program,
                    request.cache_words,
                    budget=request.budget,
                    certificate=request.certificate,
                    tune_budget=request.tune_budget,
                    strategy=request.strategy,
                    radius=request.radius,
                    planner=self.planner,
                    workers=self.workers if workers is None else workers,
                    events=events,
                )
        except DeadlineExceeded as exc:
            return _deadline_error(exc)
        stats_after = self.planner.stats.as_dict()
        meta = {
            "elapsed_ms": _ms(time.perf_counter() - t0),
            "cache_hit": report.cache_hit,
            "planner_delta": {
                key: stats_after[key] - stats_before.get(key, 0)
                for key in ("queries", "structure_hits", "structure_solves")
            },
        }
        extra = _degraded_meta(events)
        if extra:
            meta.update(extra)
        return Result(kind="program", payload=report.to_json(), meta=meta, detail=report)

    @_traced
    def distributed(
        self, request: DistributedRequest, *, deadline_ms: float | None = None
    ) -> Result:
        """Processor-grid traffic against the distributed lower bound."""
        t0 = time.perf_counter()
        request = request.validate()
        try:
            with deadline_scope(deadline_ms):
                report: DistributedReport = simulate_grid(
                    request.nest, request.processors, request.memory_words, grid=request.grid
                )
        except DeadlineExceeded as exc:
            return _deadline_error(exc)
        payload = {
            "nest": request.nest.to_json(),
            "processors": report.P,
            "memory_words": request.memory_words,
            "grid": list(report.grid),
            "grid_searched": request.grid is None,
            "words_per_processor": report.words_per_processor,
            "lower_bound_words": report.lower_bound_words,
            "ratio": report.ratio,
        }
        meta = {"elapsed_ms": _ms(time.perf_counter() - t0)}
        return Result(kind="distributed", payload=payload, meta=meta, detail=report)

    @_traced
    def health(self) -> Result:
        """Liveness + cache effectiveness snapshot (``/v1/health``)."""
        from .. import __version__

        stats = self.planner.stats.as_dict()
        store = getattr(self.planner, "shared_store", None)
        return Result(
            kind="health",
            payload={
                "status": "ok",
                "version": __version__,
                "engine": self.engine,
                "structures_cached": len(self.planner.cached_keys()),
                "planner_stats": stats,
                "shared_cache": store.stats_dict() if store is not None else None,
                "uptime_s": round(time.time() - self._started, 3),
            },
        )

    def metrics(self) -> dict:
        """The library-surface view of the observability registry.

        The same data ``GET /v1/metrics`` exposes (and ``repro-tile
        stats`` prints), shaped for programs: the global registry's
        summary (histograms with p50/p95/p99 already derived) plus this
        session's planner and shared-cache counters.
        """
        store = getattr(self.planner, "shared_store", None)
        return {
            "registry": global_registry().summary(),
            "planner_stats": self.planner.stats.as_dict(),
            "shared_cache": store.stats_dict() if store is not None else None,
        }

    # -- legacy-shaped conveniences -----------------------------------------

    def tiling(
        self,
        nest: LoopNest,
        cache_words: int,
        budget: str = "per-array",
        *,
        exact: bool = False,
    ) -> TilingSolution:
        """A :func:`~repro.core.tiling.solve_tiling`-shaped answer.

        The cache-aware path returns the planner's certified vertex
        (identical exponent; possibly a different — equally optimal —
        vertex when the LP optimum is degenerate).  ``exact=True`` is
        the façade's uncached escape to the rational simplex itself,
        for baselines and solver benchmarks.
        """
        if exact or cache_words < 2:
            return solve_tiling(nest, cache_words, budget=budget)
        return self.planner.plan(
            nest, cache_words, budget, include_bound=False
        ).tiling_solution()

    def lower_bound(self, nest: LoopNest, cache_words: int) -> CommunicationLowerBound:
        """Cache-aware :func:`~repro.core.bounds.communication_lower_bound`."""
        if cache_words < 2:
            return communication_lower_bound(nest, cache_words)
        bound = self.planner.plan(nest, cache_words, include_bound=True).lower_bound
        assert bound is not None
        return bound

    def analysis(self, nest: LoopNest, cache_words: int, budget: str = "per-array"):
        """The legacy one-call :class:`repro.Analysis` bundle, cache-aware.

        Exactly what ``repro.analyze`` returns — bound, tiling and
        Theorem-3 certificate — but served from the plan cache: on a
        warm structure no rational simplex runs at all.
        """
        from .. import Analysis

        if cache_words < 2:
            # Degenerate caches predate the planner's domain; keep the
            # original direct path for exact behavioural parity.
            return Analysis(
                nest=nest,
                cache_words=cache_words,
                lower_bound=communication_lower_bound(nest, cache_words),
                tiling=solve_tiling(nest, cache_words, budget=budget),
                certificate=theorem3_certificate(nest, cache_words),
            )
        plan = self.planner.plan(nest, cache_words, budget, include_bound=True)
        return Analysis(
            nest=nest,
            cache_words=cache_words,
            lower_bound=plan.lower_bound,
            tiling=plan.tiling_solution(),
            certificate=self.planner.certificate(nest, cache_words),
        )

    # -- housekeeping -------------------------------------------------------

    def save_plans(self, path=None):
        """Persist the plan cache (see :meth:`repro.plan.Planner.save`)."""
        return self.planner.save(path)

    @property
    def stats(self):
        return self.planner.stats


_default_lock = threading.Lock()
_default_session: Session | None = None


def default_session() -> Session:
    """The process-wide session behind the flat ``repro.*`` helpers.

    Created on first use; shared thereafter, so repeated
    ``repro.analyze`` calls on structurally identical nests are plan
    cache hits.
    """
    global _default_session
    with _default_lock:
        if _default_session is None:
            _default_session = Session()
        return _default_session


def reset_default_session() -> None:
    """Drop the process-wide session (tests; forces a cold cache)."""
    global _default_session
    with _default_lock:
        _default_session = None
