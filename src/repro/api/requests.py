"""Typed request schema of the façade (schema v1).

Six request dataclasses cover the service surface:

* :class:`AnalyzeRequest` — bound + optimal tile (+ certificate) for
  one (nest, cache) query; the unit ``Session.batch`` fans over.
* :class:`SimulateRequest` — trace-driven cache simulation of a tiled
  (or untiled) execution.
* :class:`SweepRequest` — a cartesian grid of analyze queries
  (sizes x cache sizes), expanded server-side.
* :class:`TuneRequest` — simulation-in-the-loop integer tile
  autotuning with a lower-bound optimality certificate.
* :class:`HierarchyRequest` — nested tilings for a whole memory
  hierarchy, certified per boundary, with an optional tune budget.
* :class:`ProgramRequest` — a whole program (statement sequence or an
  einsum string) split into perfect projective bands and planned
  through one shared plan cache.
* :class:`DistributedRequest` — processor-grid traffic vs the
  memory-dependent distributed lower bound.

Each is frozen, validates itself (raising
:class:`~repro.api.wire.RequestError` with a JSON-safe message), and
round-trips losslessly through ``to_json``/``from_json``.  ``from_json``
additionally accepts the nest shorthands of the batch CLI
(``problem``/``sizes``, ``statement``/``bounds``) so HTTP callers never
have to spell out supports by hand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from ..core.loopnest import LoopNest
from ..core.tiling import BUDGETS
from ..frontend.bands import split_bands
from ..frontend.einsum import FrontendError, parse_einsum
from ..frontend.program import Program, parse_program
from ..library.problems import CATALOG_BUILDERS
from ..simulate.trace import MAX_TRACE_ACCESSES, trace_length
from ..tune.search import STRATEGIES
from .wire import RequestError, nest_from_json

__all__ = [
    "AnalyzeRequest",
    "SimulateRequest",
    "SweepRequest",
    "TuneRequest",
    "HierarchyRequest",
    "ProgramRequest",
    "DistributedRequest",
]

#: Distinct tiles one tune request may simulate (evaluation budget cap).
MAX_TUNE_EVALUATIONS = 4096

_POLICIES = ("lru", "belady", "direct")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def _build_request(where: str, build):
    """Run a request constructor, mapping raw failures to RequestError."""
    try:
        return build()
    except KeyError as exc:
        raise RequestError(f"{where}: missing {exc.args[0]!r}") from exc
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{where}: {exc}") from exc


def _check_budget(budget: str) -> None:
    _require(budget in BUDGETS, f"unknown budget {budget!r}; expected one of {BUDGETS}")


@dataclass(frozen=True)
class AnalyzeRequest:
    """One §4/§5 query: lower bound + certified optimal tile.

    ``certificate=True`` additionally attaches the Theorem-3
    primal/dual certificate (served from the plan cache — no extra LP
    solve on a warm structure).  Like the lower bound, the certificate
    always concerns the paper-model per-array LP at the full cache
    size, regardless of ``budget`` (its payload says so explicitly).
    """

    nest: LoopNest
    cache_words: int
    budget: str = "per-array"
    certificate: bool = False

    def validate(self) -> "AnalyzeRequest":
        _require(self.cache_words >= 2, f"cache_words must be >= 2, got {self.cache_words}")
        _check_budget(self.budget)
        if self.budget == "aggregate":
            _require(
                self.cache_words >= self.nest.num_arrays,
                f"aggregate budget needs cache_words >= {self.nest.num_arrays} "
                f"(one word per array), got {self.cache_words}",
            )
        return self

    def to_json(self) -> dict:
        return {
            "nest": self.nest.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
            "certificate": self.certificate,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "analyze request") -> "AnalyzeRequest":
        def build():
            return cls(
                nest=nest_from_json(blob, where),
                cache_words=int(blob["cache_words"]),
                budget=str(blob.get("budget", "per-array")),
                certificate=bool(blob.get("certificate", False)),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class SimulateRequest:
    """Word-accurate cache simulation of a (tiled) execution.

    ``tile=None`` plans the communication-optimal tile first (through
    the session's plan cache) and simulates that; an explicit block
    tuple simulates exactly those blocks.  ``line_words=None`` defers to
    the session's ``line_words`` default (1 = paper model).
    ``policy="lru"`` with the batched engine is the fast path;
    ``belady``/``direct`` keep their reference cores.
    """

    nest: LoopNest
    cache_words: int
    tile: tuple[int, ...] | None = None
    line_words: int | None = None
    policy: str = "lru"
    budget: str = "aggregate"

    def validate(self) -> "SimulateRequest":
        _require(self.cache_words >= 2, f"cache_words must be >= 2, got {self.cache_words}")
        _check_budget(self.budget)
        _require(
            self.policy in _POLICIES, f"unknown policy {self.policy!r}; expected {_POLICIES}"
        )
        if self.line_words is not None:
            _require(
                1 <= self.line_words <= self.cache_words,
                f"line_words must be in [1, cache_words], got {self.line_words}",
            )
        if self.tile is not None:
            _require(
                len(self.tile) == self.nest.depth,
                f"tile must have {self.nest.depth} blocks, got {len(self.tile)}",
            )
            for b, bound in zip(self.tile, self.nest.bounds):
                _require(1 <= b <= bound, f"tile blocks must satisfy 1 <= b <= L, got {self.tile}")
        accesses = trace_length(self.nest)
        _require(
            accesses <= MAX_TRACE_ACCESSES,
            f"trace of {accesses} accesses exceeds the {MAX_TRACE_ACCESSES} guard; "
            "simulate a smaller instance",
        )
        return self

    def to_json(self) -> dict:
        return {
            "nest": self.nest.to_json(),
            "cache_words": self.cache_words,
            "tile": list(self.tile) if self.tile is not None else None,
            "line_words": self.line_words,
            "policy": self.policy,
            "budget": self.budget,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "simulate request") -> "SimulateRequest":
        def build():
            tile = blob.get("tile")
            line_words = blob.get("line_words")
            return cls(
                nest=nest_from_json(blob, where),
                cache_words=int(blob["cache_words"]),
                tile=tuple(int(b) for b in tile) if tile is not None else None,
                line_words=int(line_words) if line_words is not None else None,
                policy=str(blob.get("policy", "lru")),
                budget=str(blob.get("budget", "aggregate")),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class SweepRequest:
    """A grid of analyze queries: catalog sizes (or statement bounds)
    crossed with cache sizes, row-major with cache size innermost —
    the service twin of ``repro-tile --sweep``.

    Exactly one of ``problem``/``statement`` must be given.  For a
    catalog ``problem``, ``size_axes`` lists candidate values per
    constructor argument; for a ``statement``, ``bound_axes`` maps loop
    names to candidate bounds.
    """

    cache_sizes: tuple[int, ...]
    problem: str | None = None
    size_axes: tuple[tuple[int, ...], ...] | None = None
    statement: str | None = None
    bound_axes: tuple[tuple[str, tuple[int, ...]], ...] | None = None
    budget: str = "per-array"
    certificate: bool = False

    def validate(self) -> "SweepRequest":
        _check_budget(self.budget)
        _require(bool(self.cache_sizes), "sweep needs at least one cache size")
        for m in self.cache_sizes:
            _require(m >= 2, f"cache sizes must be >= 2, got {m}")
        if (self.problem is None) == (self.statement is None):
            raise RequestError("sweep needs exactly one of 'problem' or 'statement'")
        if self.problem is not None:
            _require(
                self.problem in CATALOG_BUILDERS,
                f"unknown problem {self.problem!r}; "
                f"choices: {', '.join(sorted(CATALOG_BUILDERS))}",
            )
            _require(bool(self.size_axes), "a problem sweep needs 'size_axes'")
        else:
            _require(bool(self.bound_axes), "a statement sweep needs 'bound_axes'")
        return self

    def expand(self) -> list[AnalyzeRequest]:
        """Materialise the grid as ordered :class:`AnalyzeRequest` items."""
        self.validate()
        nests: list[LoopNest] = []
        if self.problem is not None:
            builder, _ = CATALOG_BUILDERS[self.problem]
            for sizes in itertools.product(*self.size_axes):
                nests.append(builder(*sizes))
        else:
            names = [name for name, _ in self.bound_axes]
            for combo in itertools.product(*(choices for _, choices in self.bound_axes)):
                nests.append(
                    nest_from_json(
                        {"statement": self.statement, "bounds": dict(zip(names, combo))},
                        "sweep statement",
                    )
                )
        return [
            AnalyzeRequest(
                nest=nest, cache_words=int(m), budget=self.budget, certificate=self.certificate
            ).validate()
            for nest in nests
            for m in self.cache_sizes
        ]

    def to_json(self) -> dict:
        out: dict = {
            "cache_sizes": list(self.cache_sizes),
            "budget": self.budget,
            "certificate": self.certificate,
        }
        if self.problem is not None:
            out["problem"] = self.problem
            out["size_axes"] = [list(axis) for axis in self.size_axes]
        if self.statement is not None:
            out["statement"] = self.statement
            out["bound_axes"] = {name: list(choices) for name, choices in self.bound_axes}
        return out

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "sweep request") -> "SweepRequest":
        def build():
            size_axes = blob.get("size_axes")
            bound_axes = blob.get("bound_axes")
            return cls(
                cache_sizes=tuple(int(m) for m in blob["cache_sizes"]),
                problem=str(blob["problem"]) if "problem" in blob else None,
                size_axes=(
                    tuple(tuple(int(v) for v in axis) for axis in size_axes)
                    if size_axes is not None
                    else None
                ),
                statement=str(blob["statement"]) if "statement" in blob else None,
                bound_axes=(
                    tuple(
                        (str(name), tuple(int(v) for v in choices))
                        for name, choices in bound_axes.items()
                    )
                    if isinstance(bound_axes, Mapping)
                    else None
                ),
                budget=str(blob.get("budget", "per-array")),
                certificate=bool(blob.get("certificate", False)),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class TuneRequest:
    """Simulation-in-the-loop integer tile autotuning (``/v1/tune``).

    Seeds a budgeted search at the analytically-rounded Theorem-3
    optimum and scores candidate tiles with the one-pass trace
    simulator; the report certifies the winner against the Theorem
    lower bound (``certificate_ratio = measured / bound``) and carries
    a capacity→best-tile Pareto front.  ``capacities=None`` prices the
    default power-of-two axis up to ``cache_words``.  Deterministic:
    the same request yields the same payload on every surface.
    """

    nest: LoopNest
    cache_words: int
    budget: str = "aggregate"
    strategy: str = "exhaustive"
    max_evaluations: int = 64
    radius: int = 1
    capacities: tuple[int, ...] | None = None

    def validate(self) -> "TuneRequest":
        _require(self.cache_words >= 2, f"cache_words must be >= 2, got {self.cache_words}")
        _check_budget(self.budget)
        if self.budget == "aggregate":
            _require(
                self.cache_words >= self.nest.num_arrays,
                f"aggregate budget needs cache_words >= {self.nest.num_arrays} "
                f"(one word per array), got {self.cache_words}",
            )
        _require(
            self.strategy in STRATEGIES,
            f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}",
        )
        _require(
            1 <= self.max_evaluations <= MAX_TUNE_EVALUATIONS,
            f"max_evaluations must be in [1, {MAX_TUNE_EVALUATIONS}], "
            f"got {self.max_evaluations}",
        )
        _require(0 <= self.radius <= 8, f"radius must be in [0, 8], got {self.radius}")
        if self.capacities is not None:
            _require(bool(self.capacities), "capacities must be omitted or non-empty")
            for c in self.capacities:
                _require(c >= 2, f"capacities must be >= 2, got {c}")
        # Tuning simulates max_evaluations traces; guard each like simulate.
        accesses = trace_length(self.nest)
        _require(
            accesses <= MAX_TRACE_ACCESSES,
            f"trace of {accesses} accesses exceeds the {MAX_TRACE_ACCESSES} guard; "
            "tune a smaller instance",
        )
        return self

    def to_json(self) -> dict:
        return {
            "nest": self.nest.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
            "strategy": self.strategy,
            "max_evaluations": self.max_evaluations,
            "radius": self.radius,
            "capacities": list(self.capacities) if self.capacities is not None else None,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "tune request") -> "TuneRequest":
        def build():
            capacities = blob.get("capacities")
            return cls(
                nest=nest_from_json(blob, where),
                cache_words=int(blob["cache_words"]),
                budget=str(blob.get("budget", "aggregate")),
                strategy=str(blob.get("strategy", "exhaustive")),
                max_evaluations=int(blob.get("max_evaluations", 64)),
                radius=int(blob.get("radius", 1)),
                capacities=(
                    tuple(int(c) for c in capacities) if capacities is not None else None
                ),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class HierarchyRequest:
    """Multi-level hierarchy query (``/v1/hierarchy``).

    Plans nested communication-optimal integer tilings for a stack of
    strictly increasing cache ``capacities`` (innermost first), measures
    the innermost tile walk's traffic across *every* boundary from one
    trace pass, and certifies each boundary against its Theorem bound.
    ``tune_budget > 0`` additionally searches innermost tiles (capped
    componentwise by the next level's tile, so the hierarchy never
    un-nests) minimising the total boundary traffic; ``0`` serves the
    analytic nested plan, measured once.  Deterministic: the same
    request yields the same payload on every surface.
    """

    nest: LoopNest
    capacities: tuple[int, ...]
    budget: str = "aggregate"
    tune_budget: int = 0
    strategy: str = "exhaustive"
    radius: int = 1

    def validate(self) -> "HierarchyRequest":
        _require(bool(self.capacities), "hierarchy needs at least one capacity")
        for c in self.capacities:
            _require(c >= 2, f"capacities must be >= 2, got {c}")
        _require(
            all(a < b for a, b in zip(self.capacities, self.capacities[1:])),
            f"capacities must be strictly increasing, got {list(self.capacities)}",
        )
        _check_budget(self.budget)
        if self.budget == "aggregate":
            _require(
                self.capacities[0] >= self.nest.num_arrays,
                f"aggregate budget needs the innermost level >= "
                f"{self.nest.num_arrays} words (one per array), got {self.capacities[0]}",
            )
        _require(
            self.strategy in STRATEGIES,
            f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}",
        )
        _require(
            0 <= self.tune_budget <= MAX_TUNE_EVALUATIONS,
            f"tune_budget must be in [0, {MAX_TUNE_EVALUATIONS}], "
            f"got {self.tune_budget}",
        )
        _require(0 <= self.radius <= 8, f"radius must be in [0, 8], got {self.radius}")
        # Every boundary is priced from a measured trace; guard its length.
        accesses = trace_length(self.nest)
        _require(
            accesses <= MAX_TRACE_ACCESSES,
            f"trace of {accesses} accesses exceeds the {MAX_TRACE_ACCESSES} guard; "
            "analyze a smaller instance",
        )
        return self

    def to_json(self) -> dict:
        return {
            "nest": self.nest.to_json(),
            "capacities": list(self.capacities),
            "budget": self.budget,
            "tune_budget": self.tune_budget,
            "strategy": self.strategy,
            "radius": self.radius,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "hierarchy request") -> "HierarchyRequest":
        def build():
            return cls(
                nest=nest_from_json(blob, where),
                capacities=tuple(int(c) for c in blob["capacities"]),
                budget=str(blob.get("budget", "aggregate")),
                tune_budget=int(blob.get("tune_budget", 0)),
                strategy=str(blob.get("strategy", "exhaustive")),
                radius=int(blob.get("radius", 1)),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class ProgramRequest:
    """Whole-program ingestion query (``/v1/program``).

    Splits the program into maximal perfect projective bands (see
    :mod:`repro.frontend`), plans every band through the session's one
    shared plan cache, and reports per-band plans (+ optional Theorem-3
    certificates and tuning) plus the aggregate traffic lower bound.
    ``from_json`` accepts three spellings: a nested ``program`` object,
    inline ``statements``/``bounds``, or an ``einsum`` string with
    ``sizes`` (expanded to its single-statement program).  Deterministic:
    the same request yields the same payload on every surface.
    """

    program: Program
    cache_words: int
    budget: str = "per-array"
    certificate: bool = False
    tune_budget: int = 0
    strategy: str = "exhaustive"
    radius: int = 1

    def validate(self) -> "ProgramRequest":
        _require(self.cache_words >= 2, f"cache_words must be >= 2, got {self.cache_words}")
        _check_budget(self.budget)
        _require(
            self.strategy in STRATEGIES,
            f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}",
        )
        _require(
            0 <= self.tune_budget <= MAX_TUNE_EVALUATIONS,
            f"tune_budget must be in [0, {MAX_TUNE_EVALUATIONS}], got {self.tune_budget}",
        )
        _require(0 <= self.radius <= 8, f"radius must be in [0, 8], got {self.radius}")
        try:
            bands = split_bands(self.program)
        except FrontendError as exc:
            raise RequestError(str(exc)) from exc
        for band in bands:
            if self.budget == "aggregate":
                _require(
                    self.cache_words >= band.nest.num_arrays,
                    f"aggregate budget needs cache_words >= {band.nest.num_arrays} "
                    f"(one word per array of {band.nest.name}), got {self.cache_words}",
                )
            if self.tune_budget > 0:
                # Tuning simulates traces per band; guard each like tune.
                accesses = trace_length(band.nest)
                _require(
                    accesses <= MAX_TRACE_ACCESSES,
                    f"trace of {accesses} accesses for {band.nest.name} exceeds "
                    f"the {MAX_TRACE_ACCESSES} guard; tune a smaller instance",
                )
        return self

    def to_json(self) -> dict:
        return {
            "program": self.program.to_json(),
            "cache_words": self.cache_words,
            "budget": self.budget,
            "certificate": self.certificate,
            "tune_budget": self.tune_budget,
            "strategy": self.strategy,
            "radius": self.radius,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "program request") -> "ProgramRequest":
        def build():
            if "program" in blob:
                program = Program.from_json(blob["program"], where)
            elif "einsum" in blob:
                sizes = blob.get("sizes")
                _require(
                    isinstance(sizes, Mapping),
                    f"{where}: an einsum spec needs 'sizes' (index -> extent)",
                )
                operands = blob.get("operands")
                spec = parse_einsum(
                    str(blob["einsum"]),
                    operands=tuple(str(n) for n in operands) if operands else None,
                    output=str(blob["output"]) if "output" in blob else None,
                )
                program = parse_program(
                    [spec.statement()],
                    {str(k): int(v) for k, v in sizes.items()},
                    name=str(blob.get("name", "einsum")),
                )
            elif "statements" in blob:
                program = Program.from_json(blob, where)
            else:
                raise RequestError(
                    f"{where}: needs one of 'program', 'statements' or 'einsum'"
                )
            return cls(
                program=program,
                cache_words=int(blob["cache_words"]),
                budget=str(blob.get("budget", "per-array")),
                certificate=bool(blob.get("certificate", False)),
                tune_budget=int(blob.get("tune_budget", 0)),
                strategy=str(blob.get("strategy", "exhaustive")),
                radius=int(blob.get("radius", 1)),
            ).validate()

        return _build_request(where, build)


@dataclass(frozen=True)
class DistributedRequest:
    """§7 multiprocessor query: grid traffic vs the distributed bound.

    ``grid=None`` searches for the optimal processor grid over the
    factorizations of ``processors``.
    """

    nest: LoopNest
    processors: int
    memory_words: int
    grid: tuple[int, ...] | None = None

    def validate(self) -> "DistributedRequest":
        _require(self.processors >= 1, f"processors must be >= 1, got {self.processors}")
        _require(self.memory_words >= 2, f"memory_words must be >= 2, got {self.memory_words}")
        if self.grid is not None:
            _require(
                len(self.grid) == self.nest.depth,
                f"grid must have {self.nest.depth} factors, got {len(self.grid)}",
            )
            for g in self.grid:
                _require(g >= 1, f"grid factors must be >= 1, got {self.grid}")
        return self

    def to_json(self) -> dict:
        return {
            "nest": self.nest.to_json(),
            "processors": self.processors,
            "memory_words": self.memory_words,
            "grid": list(self.grid) if self.grid is not None else None,
        }

    @classmethod
    def from_json(cls, blob: Mapping, where: str = "distributed request") -> "DistributedRequest":
        def build():
            grid = blob.get("grid")
            return cls(
                nest=nest_from_json(blob, where),
                processors=int(blob["processors"]),
                memory_words=int(blob["memory_words"]),
                grid=tuple(int(g) for g in grid) if grid is not None else None,
            ).validate()

        return _build_request(where, build)
