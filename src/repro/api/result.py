"""The versioned response envelope every façade entry point returns.

A :class:`Result` is the one shape consumers see — from
:meth:`repro.api.Session.analyze`, from ``Session.batch``/``sweep``,
and on the wire from ``repro-tile serve``::

    {
      "schema_version": 1,
      "kind": "analyze",
      "payload": { ... JSON-safe, Fractions as "p/q" strings ... },
      "meta": { "elapsed_ms": 0.21, "cache_hit": true }
    }

``payload`` and ``meta`` are normalised to plain JSON types at
construction, so ``Result.from_json(r.to_json()) == r`` holds exactly —
including every Fraction, which travels as an exact ``"p/q"`` string.
The in-process rich object behind a result (a
:class:`~repro.plan.TilePlan`, a traffic report, ...) rides along on
``detail``; it is excluded from serialization and equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping

from .wire import SCHEMA_VERSION, RequestError, json_safe, parse_fraction

__all__ = ["Result", "SCHEMA_VERSION"]

#: The envelope kinds schema v1 defines.
KINDS = (
    "analyze",
    "simulate",
    "sweep",
    "tune",
    "hierarchy",
    "program",
    "distributed",
    "health",
    "error",
)


@dataclass(frozen=True)
class Result:
    """Versioned, JSON-round-trippable service response."""

    kind: str
    payload: dict
    meta: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    #: The rich in-process object (TilePlan, TrafficReport, ...); not
    #: serialized, not compared, absent after a JSON round trip.
    detail: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise RequestError(f"unknown result kind {self.kind!r}; expected one of {KINDS}")
        object.__setattr__(self, "payload", json_safe(self.payload, "payload"))
        object.__setattr__(self, "meta", json_safe(self.meta, "meta"))

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        """The wire envelope (already JSON-safe)."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "payload": self.payload,
            "meta": self.meta,
        }

    def to_json_str(self, **kwargs) -> str:
        return json.dumps(self.to_json(), **kwargs)

    @classmethod
    def from_json(cls, blob: dict | str) -> "Result":
        """Exact inverse of :meth:`to_json`; validates the version tag."""
        if isinstance(blob, (str, bytes)):
            try:
                blob = json.loads(blob)
            except json.JSONDecodeError as exc:
                raise RequestError(f"result envelope is not valid JSON: {exc}") from exc
        if not isinstance(blob, Mapping):
            raise RequestError("result envelope must be a JSON object")
        version = blob.get("schema_version")
        if version != SCHEMA_VERSION:
            raise RequestError(
                f"unsupported schema_version {version!r} (this build speaks {SCHEMA_VERSION})"
            )
        payload = blob.get("payload")
        meta = blob.get("meta", {})
        if not isinstance(payload, Mapping) or not isinstance(meta, Mapping):
            raise RequestError("'payload' and 'meta' must be objects")
        return cls(
            kind=str(blob.get("kind", "")),
            payload=dict(payload),
            meta=dict(meta),
            schema_version=SCHEMA_VERSION,
        )

    # -- typed accessors ----------------------------------------------------

    def fraction(self, key: str) -> Fraction:
        """Exact Fraction stored under ``payload[key]`` as ``"p/q"``."""
        return parse_fraction(self.payload[key], key)

    @property
    def cache_hit(self) -> bool | None:
        hit = self.meta.get("cache_hit")
        return None if hit is None else bool(hit)

    @property
    def elapsed_ms(self) -> float | None:
        ms = self.meta.get("elapsed_ms")
        return None if ms is None else float(ms)

    @property
    def trace_id(self) -> str | None:
        """The request's trace id (16 hex chars unless caller-supplied)."""
        tid = self.meta.get("trace_id")
        return None if tid is None else str(tid)

    @property
    def timings(self) -> dict | None:
        """``{"total_ms": float, "stages": {stage: ms}}`` when traced."""
        timings = self.meta.get("timings")
        return None if timings is None else dict(timings)

    @property
    def ok(self) -> bool:
        return self.kind != "error"

    @classmethod
    def error(cls, message: str, status: int = 400, detail: dict | None = None) -> "Result":
        """The structured error envelope (4xx payloads, CLI failures)."""
        payload: dict = {"error": message, "status": int(status)}
        if detail:
            payload["detail"] = detail
        return cls(kind="error", payload=payload)
