"""``repro.api`` — the unified, versioned service façade.

One coherent entry layer over the whole reproduction: typed request
dataclasses, a :class:`Session` that owns the plan cache and engine
defaults, and a JSON-round-trippable :class:`Result` envelope tagged
with ``schema_version``.  Every consumer — the ``repro-tile`` CLI, the
HTTP service (:mod:`repro.serve`), benchmarks and examples — routes
through this package; the flat top-level helpers in :mod:`repro`
delegate to the process-wide :func:`default_session`.

Quickstart
----------
>>> from repro import api, parse_nest
>>> session = api.Session()
>>> result = session.analyze(
...     parse_nest("C[i,k] += A[i,j] * B[j,k]", bounds={"i": 64, "j": 64, "k": 8}),
...     cache_words=256,
... )
>>> result.kind, result.schema_version
('analyze', 1)
>>> result.fraction("k_hat")   # 1 + beta_k: the small-bound regime
Fraction(11, 8)
>>> api.Result.from_json(result.to_json()) == result
True
"""

from .requests import (
    AnalyzeRequest,
    DistributedRequest,
    HierarchyRequest,
    ProgramRequest,
    SimulateRequest,
    SweepRequest,
    TuneRequest,
)
from .result import Result
from .session import Session, default_session, reset_default_session
from .wire import SCHEMA_VERSION, RequestError

__all__ = [
    "SCHEMA_VERSION",
    "AnalyzeRequest",
    "SimulateRequest",
    "SweepRequest",
    "TuneRequest",
    "HierarchyRequest",
    "ProgramRequest",
    "DistributedRequest",
    "RequestError",
    "Result",
    "Session",
    "default_session",
    "reset_default_session",
]
