"""Golden analyses for the extended workloads (SYRK, Tucker, attention).

These go beyond the paper's §6 set; each value below was derived by
hand from the supports and cross-checked against the exact machinery —
they serve as regression anchors for the LP pipeline on deeper nests.
"""

from fractions import Fraction as F

from repro.core.bounds import communication_lower_bound, tile_exponent
from repro.core.duality import theorem3_certificate
from repro.core.hbl import solve_hbl
from repro.core.mplp import parametric_tile_exponent
from repro.core.tiling import solve_tiling
from repro.library.problems import attention_scores, syrk, tucker_core


class TestSyrk:
    def test_hbl_is_matmul_like(self):
        # Supports are isomorphic to matmul's: k_HBL = 3/2.
        assert solve_hbl(syrk(256, 256)).k == F(3, 2)

    def test_small_k_regime(self):
        # K = 16, M = 2^16: beta_k = 1/4 -> 1 + beta_k, like skinny matmul.
        assert tile_exponent(syrk(2**12, 2**4), 2**16) == F(5, 4)

    def test_tight(self):
        assert theorem3_certificate(syrk(2**10, 2**5), 2**12).tight


class TestTuckerCore:
    M = 2**12

    def test_hbl_value(self):
        # Variables (G, X, U1, U2, U3); rows: i: x+u1>=1, j: x+u2>=1,
        # k: x+u3>=1, a: g+u1>=1, b: g+u2>=1, c: g+u3>=1.
        # Optimum: x = g = 1/2, u_i = 1/2 each -> total 5/2?  Check:
        # x=1/2 forces u1,u2,u3 >= 1/2; g then free >= 1/2 from a-row:
        # g + u1 >= 1 -> g >= 1/2.  Total = 1/2*5 = 5/2.  Alternative
        # x=1, u=0: a-rows need g >= 1 -> total 2.  So optimum <= 2.
        # Even better: x=1, g=1, all u=0 -> rows a: g+u1=1 ok -> total 2.
        # Try x=3/4: u_i >= 1/4, g >= 3/4: total = 3/4+3/4+3*1/4 = 9/4 > 2.
        sol = solve_hbl(tucker_core(64, 64, 64, 8, 8, 8))
        assert sol.k == F(2)

    def test_small_rank_exponent(self):
        # Ranks 8 at M = 2^12: beta_rank = 1/4 each.
        k = tile_exponent(tucker_core(2**8, 2**8, 2**8, 8, 8, 8), self.M)
        cert = theorem3_certificate(tucker_core(2**8, 2**8, 2**8, 8, 8, 8), self.M)
        assert cert.tight
        assert k == cert.primal_value
        # The rank loops saturate: lambda_a = lambda_b = lambda_c = 1/4
        # and X's row gives lambda_i+lambda_j+lambda_k <= 1 -> k <= 7/4.
        assert k == F(7, 4)

    def test_tile_saturates_rank_loops(self):
        sol = solve_tiling(tucker_core(2**8, 2**8, 2**8, 8, 8, 8), self.M)
        assert sol.tile.blocks[3:] == (8, 8, 8)


class TestAttentionScores:
    M = 2**14

    def test_structure_is_batched_matmul(self):
        # With batch loops shared by all arrays, the optimum matches
        # batched matmul: 3/2 in the large-bound regime.
        nest = attention_scores(2**4, 2**4, 2**10, 2**10, 2**10)
        assert tile_exponent(nest, self.M) == F(3, 2)

    def test_small_head_dim_regime(self):
        # d = 64 = 2^6, M = 2^14: beta_d = 6/14 < 1/2 -> 1 + beta_d.
        nest = attention_scores(2**4, 2**4, 2**10, 2**10, 2**6)
        assert tile_exponent(nest, self.M) == 1 + F(6, 14)

    def test_bound_reads_q_and_k(self):
        nest = attention_scores(8, 12, 512, 512, 64)
        lb = communication_lower_bound(nest, self.M)
        # Must at least read Q and K and write the scores once.
        assert lb.value >= nest.total_footprint()

    def test_piecewise_contains_head_dim_piece(self):
        nest = attention_scores(2, 2, 4, 4, 2)
        pvf = parametric_tile_exponent(nest)
        # There must be a piece 1 + beta_d (coeff on the last loop).
        assert any(
            p.constant == 1 and p.coeffs == (0, 0, 0, 0, 1) for p in pvf.pieces
        ), pvf.render()

    def test_tight(self):
        assert theorem3_certificate(attention_scores(4, 4, 256, 256, 64), self.M).tight
