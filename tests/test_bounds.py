"""Tests for Theorem-2 bounds and the communication bound object (§4)."""

from fractions import Fraction as F

import pytest

from repro.core.bounds import (
    communication_lower_bound,
    subset_exponent,
    subset_exponent_literal,
    subset_scan,
    tile_exponent,
)
from repro.core.tiling import solve_tiling
from repro.library.problems import matmul, matvec, nbody, pointwise_conv, tensor_contraction


class TestMatmulSection61:
    """Golden values from the paper's §6.1 walk-through."""

    M = 2**16

    def test_large_bounds_recover_three_halves(self):
        nest = matmul(2**10, 2**10, 2**10)
        assert tile_exponent(nest, self.M) == F(3, 2)

    def test_small_l3_exponent(self):
        # beta3 = 4/16 = 1/4 < 1/2 -> k_hat = 1 + beta3.
        nest = matmul(2**10, 2**10, 2**4)
        assert tile_exponent(nest, self.M) == F(5, 4)

    def test_boundary_l3_sqrt_m(self):
        # beta3 = 1/2 exactly: both regimes give 3/2.
        nest = matmul(2**10, 2**10, 2**8)
        assert tile_exponent(nest, self.M) == F(3, 2)

    def test_matvec_limit(self):
        # L3 = 1: tile <= M * L3 = M -> exponent 1; comm = L1 L2.
        nest = matmul(2**10, 2**10, 1)
        assert tile_exponent(nest, self.M) == 1
        lb = communication_lower_bound(nest, self.M)
        assert lb.hbl_words == float(2**20)  # L1 * L2

    def test_literal_q_x3_matches_paper(self):
        # Paper: s_hat = (0, 1, 0) -> max(1, 1 + beta3) = 1 + beta3.
        nest = matmul(2**10, 2**10, 2**4)
        k, sliced = subset_exponent_literal(nest, self.M, [2])
        assert sliced.s == (0, 1, 0)
        assert k == F(5, 4)

    def test_two_small_bounds(self):
        # L2 = L3 = 2^4: every array fits in cache individually
        # (A = C = 2^14 <= M, B = 2^8 <= M), so the whole iteration
        # space is a single tile and k = beta1+beta2+beta3 = 9/8 —
        # *smaller* than the 1 + beta3 = 5/4 piece.
        nest = matmul(2**10, 2**4, 2**4)
        assert tile_exponent(nest, self.M) == F(9, 8)

    def test_two_small_bounds_arrays_do_not_fit(self):
        # Shrink the cache so A no longer fits: M = 2^12, beta =
        # (10/12, 4/12, 4/12).  Pieces: 3/2, 1+10/12, 1+1/3, 1+1/3,
        # sum = 18/12 = 3/2 -> k = 4/3.
        nest = matmul(2**10, 2**4, 2**4)
        assert tile_exponent(nest, 2**12) == F(4, 3)

    def test_all_small(self):
        # Whole iteration space fits: k = beta1+beta2+beta3.
        nest = matmul(2**4, 2**4, 2**4)
        assert tile_exponent(nest, self.M) == F(3, 4)


class TestSubsetMachinery:
    M = 2**16

    def test_scan_monotone_in_subset(self):
        nest = matmul(2**10, 2**6, 2**4)
        scan = subset_scan(nest, self.M)
        for Q, val in scan.items():
            for Q2, val2 in scan.items():
                if set(Q) <= set(Q2):
                    assert val2 <= val, (Q, Q2)

    def test_full_subset_equals_tile_exponent(self):
        nest = matmul(2**10, 2**6, 2**4)
        scan = subset_scan(nest, self.M)
        assert scan[(0, 1, 2)] == tile_exponent(nest, self.M)

    def test_empty_subset_is_hbl(self):
        nest = matmul(2**10, 2**6, 2**4)
        assert subset_exponent(nest, self.M, []) == F(3, 2)

    def test_literal_upper_bounds_lp(self):
        # The literal Theorem-2 evaluation uses one feasible point, so it
        # can never beat the LP optimum for the same Q.
        nest = pointwise_conv(2**3, 2**2, 2**5, 2**4, 2**4)
        M = 2**12
        for Q in [(), (0,), (1,), (0, 1), (2, 3), (0, 1, 2, 3, 4)]:
            lit, _ = subset_exponent_literal(nest, M, Q)
            assert lit >= subset_exponent(nest, M, Q)

    def test_out_of_range_subset(self):
        with pytest.raises(ValueError):
            subset_exponent(matmul(4, 4, 4), 16, [5])


class TestCommunicationBound:
    def test_matvec_reads_whole_matrix(self):
        nest = matvec(2**10, 2**10)
        lb = communication_lower_bound(nest, 2**16)
        # A has 2^20 entries; the bound must see them.
        assert lb.footprint_words >= 2**20
        assert lb.value >= 2**20

    def test_fits_in_cache_caveat(self):
        # §6.3 caveat: tiny problem, everything fits -> hbl term says M,
        # but value reports the footprint.
        nest = nbody(2**4, 2**4)
        lb = communication_lower_bound(nest, 2**16)
        assert lb.fits_in_cache()
        assert lb.hbl_words == float(2**16)  # the misleading M
        assert lb.value == nest.total_footprint()

    def test_hong_kung_vs_hbl(self):
        nest = matmul(2**9, 2**9, 2**9)
        lb = communication_lower_bound(nest, 2**16)
        # hong-kung = (ceil(ops/tile) - 1) * M ~ hbl - M.
        assert lb.hong_kung_words <= lb.hbl_words
        assert lb.hong_kung_words >= lb.hbl_words - 2 * lb.cache_words

    def test_paper_value_matches_6_1_closed_form(self):
        from repro.core.closed_forms import matmul_comm_lower_bound

        for dims in [(2**10, 2**10, 2**10), (2**10, 2**10, 2**4), (2**12, 2**6, 2**4)]:
            nest = matmul(*dims)
            lb = communication_lower_bound(nest, 2**16)
            expected = matmul_comm_lower_bound(*dims, 2**16)
            assert lb.hbl_words == pytest.approx(expected, rel=1e-12)

    def test_invalid_cache(self):
        with pytest.raises(ValueError):
            communication_lower_bound(matmul(4, 4, 4), 0)

    def test_summary_mentions_components(self):
        text = communication_lower_bound(matmul(64, 64, 64), 2**10).summary()
        for token in ("matmul", "k_hat", "hong-kung", "footprint"):
            assert token in text


class TestTheoremTwoVsTiling:
    """The §4 bound must equal the §5 construction (Theorem 3 integration)."""

    def test_exponents_match_on_catalog(self):
        M = 2**12
        cases = [
            matmul(2**8, 2**6, 2**3),
            matvec(2**9, 2**5),
            nbody(2**7, 2**3),
            pointwise_conv(2**2, 2**3, 2**4, 2**3, 2**3),
            tensor_contraction((2**4, 2**4), (2**3,), (2**5,)),
        ]
        for nest in cases:
            assert tile_exponent(nest, M) == solve_tiling(nest, M).exponent, nest.name
