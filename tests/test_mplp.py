"""Tests for the multiparametric piecewise-linear value function (§7)."""

from fractions import Fraction as F

import pytest

from repro.core.bounds import tile_exponent
from repro.core.mplp import parametric_tile_exponent
from repro.library.problems import matmul, matvec, mttkrp, nbody, tensor_contraction


def _piece_set(pvf):
    return {(p.constant, p.coeffs) for p in pvf.pieces}


class TestMatmulClosedForm:
    """§6.1 / §7: matmul's exact piece list."""

    def test_pieces(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        expected = {
            (F(3, 2), (F(0), F(0), F(0))),
            (F(1), (F(1), F(0), F(0))),
            (F(1), (F(0), F(1), F(0))),
            (F(1), (F(0), F(0), F(1))),
            (F(0), (F(1), F(1), F(1))),
        }
        assert _piece_set(pvf) == expected

    def test_dominated_pairs_pruned(self):
        # beta1+beta2 (zeta=(1,1,0)) is dual-infeasible, and pieces like
        # constant 2 (s=(1,1,0)) are dominated by 3/2; neither survives.
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        constants = [p.constant for p in pvf.pieces if all(c == 0 for c in p.coeffs)]
        assert constants == [F(3, 2)]

    def test_evaluation_regimes(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        assert pvf.evaluate([1, 1, 1]) == F(3, 2)
        assert pvf.evaluate([1, 1, F(1, 4)]) == F(5, 4)
        assert pvf.evaluate([F(1, 8), 1, F(1, 4)]) == F(9, 8)
        assert pvf.evaluate([F(1, 8), F(1, 8), F(1, 8)]) == F(3, 8)

    def test_argmin_identifies_regime(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        piece = pvf.argmin([1, 1, F(1, 4)])
        assert piece.constant == 1 and piece.coeffs == (0, 0, 1)

    def test_communication_pieces_are_6_1_form(self):
        # g = 1 + sum(beta) - f: pieces must include sum(beta) - 1/2
        # (the L1L2L3/sqrt(M) term) and beta1+beta2 (the L1L2 term).
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        comm = {(p.constant, p.coeffs) for p in pvf.communication_pieces()}
        assert (F(-1, 2), (F(1), F(1), F(1))) in comm
        assert (F(0), (F(1), F(1), F(0))) in comm
        assert (F(1), (F(0), F(0), F(0))) in comm  # the M term (everything fits)


class TestNbodyClosedForm:
    def test_pieces_match_6_3(self):
        # M^f = min(L1 L2, L1 M, L2 M, M^2).
        pvf = parametric_tile_exponent(nbody(4, 4))
        expected = {
            (F(2), (F(0), F(0))),
            (F(1), (F(1), F(0))),
            (F(1), (F(0), F(1))),
            (F(0), (F(1), F(1))),
        }
        assert _piece_set(pvf) == expected


class TestMatvec:
    def test_pieces(self):
        # Tile bounded by A's footprint only: f = min(1, b1+b2).
        pvf = parametric_tile_exponent(matvec(4, 4))
        expected = {
            (F(1), (F(0), F(0))),
            (F(0), (F(1), F(1))),
        }
        assert _piece_set(pvf) == expected


class TestConsistencyWithLP:
    @pytest.mark.parametrize(
        "nest",
        [
            matmul(8, 8, 8),
            nbody(4, 4),
            mttkrp(4, 4, 4, 4),
            tensor_contraction((4, 4), (4,), (4, 4)),
        ],
        ids=lambda n: n.name,
    )
    def test_evaluate_equals_tile_exponent(self, nest):
        # The piecewise function evaluated at concrete betas must equal
        # the tiling-LP optimum at those betas, for many beta choices.
        pvf = parametric_tile_exponent(nest)
        M = 2**12
        grids = [
            [F(e, 12) for e in exps]
            for exps in [
                (12,) * nest.depth,
                (3,) * nest.depth,
                tuple(range(2, 2 + nest.depth)),
                (24, 1) * (nest.depth // 2) + (6,) * (nest.depth % 2),
            ]
        ]
        for betas in grids:
            lp_val = tile_exponent(nest, M, betas=betas)
            assert pvf.evaluate(betas) == lp_val, betas

    def test_unpruned_superset(self):
        full = parametric_tile_exponent(matmul(8, 8, 8), prune=False)
        pruned = parametric_tile_exponent(matmul(8, 8, 8), prune=True)
        assert _piece_set(pruned) <= _piece_set(full)
        assert len(full.pieces) > len(pruned.pieces)
        # Pruning never changes values.
        for betas in ([1, 1, 1], [F(1, 3), F(2, 3), F(1, 5)]):
            assert full.evaluate(betas) == pruned.evaluate(betas)


class TestRegions:
    def test_region_inequalities(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        piece = next(p for p in pvf.pieces if p.coeffs == (0, 0, 1))
        region = pvf.region_inequalities(piece)
        # In the region of 1+beta3, the inequality vs 3/2 reads
        # 1/2 - beta3 >= 0, i.e. constant 1/2, coeffs (0,0,-1).
        assert (F(1, 2), (F(0), F(0), F(-1))) in region

    def test_render_mentions_pieces(self):
        text = parametric_tile_exponent(matmul(8, 8, 8)).render()
        assert "3/2" in text and "min(" in text

    def test_evaluate_validates_length(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        with pytest.raises(ValueError):
            pvf.pieces[0].evaluate([1, 1])

    def test_tile_size(self):
        pvf = parametric_tile_exponent(matmul(8, 8, 8))
        assert pvf.tile_size(2**16, [1, 1, 1]) == float(2**24)
