"""Tests for ``repro.tune``: the simulation-in-the-loop tile autotuner.

The subsystem's contract, pinned here:

* **Certificate invariant** — every measured traffic is >= the Theorem
  lower bound (the bound holds for *any* schedule, so the certificate
  ratio is >= 1 by theory; the simulator must agree exactly).
* **Seed invariant** — the tuned plan's measured traffic is never worse
  than the analytically-rounded seed's (the seed is always candidate
  #0 and ties break toward it).
* **Determinism** — one request produces one payload, byte-identical
  across ``Session.tune``, ``/v1/tune`` and ``repro-tile tune``.

Plus unit coverage of the space generators, the budgeted evaluator, the
strategies, and the report's wire round trip.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import RequestError, Session, TuneRequest
from repro.cli import main
from repro.core.loopnest import ArrayRef, LoopNest
from repro.core.tiling import TileShape
from repro.library.problems import matmul, mttkrp, nbody, tensor_contraction
from repro.machine.model import MachineModel
from repro.plan import Planner
from repro.serve import make_server
from repro.simulate.trace_sim import run_trace_simulation
from repro.tune import (
    BudgetedEvaluator,
    TileEvaluation,
    TuneReport,
    candidate_tiles,
    clamp_block,
    default_capacities,
    evaluate_candidates,
    evaluate_tile,
    search_tiles,
    tune_tile,
)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSpace:
    def test_clamp_block_formula(self):
        # The satellite clamp: min(bound, max(1, round(x))).
        assert clamp_block(0.2, 10) == 1
        assert clamp_block(0.0, 10) == 1
        assert clamp_block(3.6, 10) == 4
        assert clamp_block(99.0, 10) == 10
        assert clamp_block(7, 3) == 3
        assert clamp_block(-5.0, 10) == 1

    def test_candidates_feasible_within_bounds_seed_first(self):
        nest = matmul(24, 24, 6)
        seed = (4, 4, 4)
        tiles = candidate_tiles(nest, 64, seed, budget="aggregate", radius=1)
        assert tiles[0] == seed
        assert len(tiles) == len(set(tiles))
        for blocks in tiles:
            assert all(1 <= b <= L for b, L in zip(blocks, nest.bounds))
            assert TileShape(nest=nest, blocks=blocks).is_feasible(64, "aggregate")

    def test_candidate_limit_respected(self):
        nest = matmul(24, 24, 24)
        tiles = candidate_tiles(nest, 128, (4, 4, 4), limit=7)
        assert len(tiles) <= 7

    def test_divisor_candidates_divide_bounds(self):
        nest = matmul(24, 24, 24)
        tiles = candidate_tiles(
            nest, 10**6, (5, 5, 5), budget="per-array", generators=("divisor",)
        )
        # Excluding the seed itself, every axis value divides its bound.
        for blocks in tiles[1:]:
            assert all(L % b == 0 for b, L in zip(blocks, nest.bounds))

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError):
            candidate_tiles(matmul(4, 4, 4), 16, (1, 1, 1), generators=("magic",))


class TestEvaluate:
    def test_traffic_matches_trace_simulation(self):
        # The one-pass evaluation must agree exactly with the per-run
        # LRU simulator (misses + writebacks = loads + stores).
        nest = matmul(12, 12, 12)
        blocks = (3, 4, 6)
        for capacity in (8, 32, 96):
            evaluation = evaluate_tile(nest, blocks, [capacity])
            report = run_trace_simulation(
                nest,
                MachineModel(cache_words=capacity, line_words=1),
                tile=TileShape(nest=nest, blocks=blocks),
            )
            assert evaluation.traffic_at(capacity) == report.total_words

    def test_parallel_serial_identical(self):
        # >= MIN_PARALLEL_CANDIDATES candidates so the pool path engages.
        nest = nbody(30, 30)
        candidates = [(b1, b2) for b1 in (2, 5, 10, 15) for b2 in (3, 12)]
        serial = evaluate_candidates(nest, candidates, [16, 64], workers=0)
        parallel = evaluate_candidates(nest, candidates, [16, 64], workers=2)
        assert [e.to_json() for e in serial] == [e.to_json() for e in parallel]
        # The forced pure-Python fallback rides the worker payload too.
        fallback = evaluate_candidates(
            nest, candidates, [16, 64], workers=2, use_native=False
        )
        assert [e.to_json() for e in fallback] == [e.to_json() for e in serial]

    def test_evaluation_round_trip(self):
        evaluation = evaluate_tile(matmul(8, 8, 8), (2, 2, 2), [4, 16])
        again = TileEvaluation.from_json(evaluation.to_json())
        assert again == evaluation


class TestSearch:
    def test_budget_caps_distinct_evaluations(self):
        nest = matmul(24, 24, 24)
        outcome = search_tiles(nest, 128, (7, 6, 6), "exhaustive", max_evaluations=9)
        assert outcome.evaluations_used <= 9

    def test_memoised_repeats_are_free(self):
        ev = BudgetedEvaluator(nest=nbody(20, 20), capacities=(16,), budget=4)
        ev.evaluate([(4, 4), (4, 4), (2, 2)])
        assert ev.spent == 2
        ev.evaluate([(4, 4)])  # memo hit, no budget spent
        assert ev.spent == 2

    @pytest.mark.parametrize("strategy", ["exhaustive", "coordinate", "random"])
    def test_best_never_worse_than_seed(self, strategy):
        nest = matmul(20, 20, 5)
        seed = (4, 4, 4)
        outcome = search_tiles(nest, 64, seed, strategy, max_evaluations=24)
        assert outcome.evaluations[0].blocks == seed
        assert outcome.best.traffic_at(64) <= outcome.evaluations[0].traffic_at(64)

    def test_random_is_deterministic(self):
        nest = nbody(40, 40)
        runs = [
            search_tiles(nest, 32, (5, 5), "random", max_evaluations=20, rng_seed=7)
            for _ in range(2)
        ]
        assert [e.blocks for e in runs[0].evaluations] == [
            e.blocks for e in runs[1].evaluations
        ]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            search_tiles(matmul(4, 4, 4), 16, (1, 1, 1), "simulated-annealing")


class TestTuneTile:
    def test_report_invariants_and_pareto(self):
        nest = matmul(24, 24, 6)
        planner = Planner()
        report = tune_tile(nest, 96, planner=planner, max_evaluations=32, workers=0)
        assert report.tuned_traffic_words <= report.seed_traffic_words
        assert report.tuned_ratio >= 1.0
        assert report.seed_ratio >= report.tuned_ratio
        assert report.plan.tile.blocks == report.tuned_blocks
        assert report.plan.tile.is_feasible(96, "aggregate")
        # Pareto axis: sorted capacities, tuning capacity included, every
        # point certified (ratio >= 1) and at least as good as the seed.
        caps = [p.cache_words for p in report.pareto]
        assert caps == sorted(set(caps)) and 96 in caps
        seed_eval = evaluate_tile(nest, report.seed_blocks, caps)
        for point in report.pareto:
            assert point.certificate_ratio >= 1.0
            assert point.traffic_words <= seed_eval.traffic_at(point.cache_words)

    def test_default_capacities_axis(self):
        assert default_capacities(64) == (4, 8, 16, 32, 64)
        assert default_capacities(96)[-1] == 96

    def test_report_round_trip(self):
        report = tune_tile(nbody(20, 20), 16, max_evaluations=8, workers=0)
        again = TuneReport.from_json(json.loads(json.dumps(report.to_json())))
        assert again.to_json() == report.to_json()

    def test_include_candidates_attaches_table(self):
        report = tune_tile(
            nbody(16, 16), 16, max_evaluations=6, workers=0, include_candidates=True
        )
        assert len(report.candidates) == report.evaluations_used
        assert report.candidates[0].blocks == report.seed_blocks

    def test_catalog_invariants_across_strategies(self):
        cases = [
            (matmul(16, 16, 16), 64),
            (matmul(30, 30, 4), 48),
            (nbody(40, 40), 24),
            (tensor_contraction((6, 6), (6,), (6, 6)), 100),
            (mttkrp(10, 10, 10, 3), 64),
        ]
        for nest, cache_words in cases:
            for strategy in ("exhaustive", "coordinate"):
                report = tune_tile(
                    nest, cache_words, strategy=strategy,
                    max_evaluations=20, workers=0,
                )
                assert report.tuned_ratio >= 1.0, (nest.name, strategy)
                assert report.tuned_traffic_words <= report.seed_traffic_words, (
                    nest.name, strategy,
                )


@st.composite
def small_nests(draw):
    """Random small projective nests the trace engine can chew fast."""
    d = draw(st.integers(1, 3))
    n = draw(st.integers(1, 3))
    supports = []
    for _ in range(n):
        support = draw(
            st.sets(st.integers(0, d - 1), min_size=0, max_size=d).map(
                lambda s: tuple(sorted(s))
            )
        )
        supports.append(list(support))
    covered = set()
    for s in supports:
        covered.update(s)
    for loop in range(d):
        if loop not in covered:
            idx = draw(st.integers(0, n - 1))
            supports[idx] = sorted(set(supports[idx]) | {loop})
    bounds = tuple(draw(st.integers(1, 20)) for _ in range(d))
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=tuple(s), is_output=(j == 0))
        for j, s in enumerate(supports)
    )
    return LoopNest(
        name="random", loops=tuple(f"x{i}" for i in range(d)), bounds=bounds, arrays=arrays
    )


class TestTuningProperties:
    """The certificate and seed invariants, universally quantified."""

    @SETTINGS
    @given(nest=small_nests(), M=st.sampled_from([4, 8, 16, 64]))
    def test_certified_and_never_worse_than_seed(self, nest, M):
        if M < nest.num_arrays:
            M = nest.num_arrays  # aggregate feasibility floor
        report = tune_tile(nest, max(M, 2), max_evaluations=12, workers=0)
        assert report.tuned_ratio >= 1.0
        assert report.tuned_traffic_words <= report.seed_traffic_words
        for b, L in zip(report.tuned_blocks, nest.bounds):
            assert 1 <= b <= L


class TestTuneSurfaces:
    """One request, three surfaces, byte-identical payloads."""

    REQUEST = {
        "problem": "nbody",
        "sizes": [50, 50],
        "cache_words": 32,
        "strategy": "exhaustive",
        "max_evaluations": 12,
    }

    @pytest.fixture()
    def service(self):
        server = make_server(port=0, session=Session(workers=0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_session_http_cli_payloads_identical(self, service, capsys):
        request = TuneRequest.from_json(self.REQUEST)
        session_payload = Session(workers=0).tune(request).payload

        data = json.dumps(self.REQUEST).encode()
        http = urllib.request.Request(
            service + "/v1/tune",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(http, timeout=60) as resp:
            body = json.load(resp)
        assert body["schema_version"] == 1 and body["kind"] == "tune"

        rc = main([
            "tune", "--problem", "nbody", "--sizes", "50,50", "-M", "32",
            "--strategy", "exhaustive", "--max-evals", "12", "--workers", "0",
        ])
        assert rc == 0
        cli_body = json.loads(capsys.readouterr().out.strip())

        assert body["payload"] == session_payload
        assert cli_body["payload"] == session_payload

    def test_payload_identical_cold_and_warm(self):
        # cache_hit is envelope meta, not payload: a repeat of the same
        # request on a warm session must yield a byte-identical payload.
        request = TuneRequest.from_json(self.REQUEST)
        session = Session(workers=0)
        cold = session.tune(request)
        warm = session.tune(request)
        assert cold.payload == warm.payload
        assert "cache_hit" not in cold.payload["plan"]
        assert cold.meta["cache_hit"] is False and warm.meta["cache_hit"] is True

    def test_tune_request_round_trip(self):
        request = TuneRequest.from_json(self.REQUEST)
        assert TuneRequest.from_json(request.to_json()) == request

    def test_tune_request_validation(self):
        nest = nbody(8, 8)
        with pytest.raises(RequestError):
            TuneRequest(nest=nest, cache_words=1).validate()
        with pytest.raises(RequestError):
            TuneRequest(nest=nest, cache_words=16, strategy="magic").validate()
        with pytest.raises(RequestError):
            TuneRequest(nest=nest, cache_words=16, max_evaluations=0).validate()
        with pytest.raises(RequestError):
            TuneRequest(nest=nest, cache_words=16, radius=99).validate()
        with pytest.raises(RequestError):
            TuneRequest(nest=nest, cache_words=16, capacities=(1,)).validate()

    def test_http_validation_error_is_structured_400(self, service):
        data = json.dumps({"problem": "nbody", "cache_words": 16, "strategy": "magic"})
        request = urllib.request.Request(
            service + "/v1/tune",
            data=data.encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        body = json.load(err.value)
        assert body["kind"] == "error" and body["payload"]["status"] == 400

    def test_cli_smoke_clamps_budget(self, capsys):
        rc = main([
            "tune", "--problem", "nbody", "--sizes", "30,30", "-M", "16",
            "--workers", "0", "--smoke",
        ])
        assert rc == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["kind"] == "tune"
        assert body["payload"]["evaluations_used"] <= 8

    def test_cli_bad_inputs_clean_errors(self, capsys):
        assert main(["tune", "--problem", "matmul", "--sizes", "4,4", "-M", "16"]) == 2
        assert "error" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["tune", "--problem", "matmul"])  # missing -M
