"""Randomized differential tests for the one-pass multi-level simulator.

The claim under test (the stack property turned into an algorithm): for
an inclusive LRU hierarchy, **one** stack-distance pass over a trace
answers every level's boundary traffic exactly — the same counts an
independent LRU simulation per level would produce.  This suite pins
that equivalence bit-for-bit on randomized nests, tiles and capacity
stacks:

* :func:`repro.simulate.multilevel.simulate_hierarchy_trace` boundary
  words equal independent per-level :class:`repro.machine.cache.BatchLRU`
  runs (misses and write-backs compared separately via the curve);
* miss counts are monotone non-increasing in capacity (the LRU stack
  property itself).

A seeded ``random.Random`` loop guarantees a fixed population of 60
nest x hierarchy cases on every run; a hypothesis layer explores
further.
"""

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import MemoryHierarchy
from repro.core.loopnest import ArrayRef, LoopNest
from repro.core.tiling import TileShape
from repro.machine.cache import BatchLRU
from repro.simulate.multilevel import nest_miss_curve, simulate_hierarchy_trace
from repro.simulate.trace import AddressMap, generate_trace_batched

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def reference_level_counts(nest, capacity, tile=None):
    """Independent single-level BatchLRU run: (misses, writebacks)."""
    lru = BatchLRU(capacity, AddressMap(nest).total_words)
    for batch in generate_trace_batched(nest, tile=tile):
        lru.process(batch.addresses, np.asarray(batch.is_write))
    lru.flush()
    return lru.stats.misses, lru.stats.writebacks


def random_nest(rng: random.Random) -> LoopNest:
    """A small random projective nest the trace engine can chew fast."""
    depth = rng.randint(1, 3)
    n_arrays = rng.randint(1, 3)
    supports = []
    for _ in range(n_arrays):
        k = rng.randint(0, depth)
        supports.append(sorted(rng.sample(range(depth), k)))
    covered = {i for s in supports for i in s}
    for loop in range(depth):
        if loop not in covered:
            supports[rng.randrange(n_arrays)] = sorted(
                set(supports[rng.randrange(n_arrays)]) | {loop}
            )
    # Re-check coverage (the random merge above may pick two different
    # array slots); force the remainder onto array 0.
    covered = {i for s in supports for i in s}
    supports[0] = sorted(set(supports[0]) | (set(range(depth)) - covered))
    bounds = tuple(rng.randint(1, 12) for _ in range(depth))
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=tuple(s), is_output=(j == 0))
        for j, s in enumerate(supports)
    )
    return LoopNest(
        name="random",
        loops=tuple(f"x{i}" for i in range(depth)),
        bounds=bounds,
        arrays=arrays,
    )


def random_hierarchy(rng: random.Random, nest: LoopNest) -> MemoryHierarchy:
    """2-4 strictly increasing capacities spanning tiny to oversized."""
    top = max(4, 2 * nest.total_footprint())
    levels = rng.randint(2, 4)
    caps = sorted(rng.sample(range(2, top + 2), min(levels, top)))
    return MemoryHierarchy(capacities=tuple(caps))


def random_tile(rng: random.Random, nest: LoopNest) -> TileShape | None:
    if rng.random() < 0.4:
        return None  # untiled lexicographic schedule
    return TileShape(
        nest=nest, blocks=tuple(rng.randint(1, L) for L in nest.bounds)
    )


class TestDifferentialSeededPopulation:
    """60 fixed random cases: one-pass counts == per-level LRU counts."""

    CASES = 60

    def test_one_pass_matches_per_level_reference(self):
        rng = random.Random(20260726)
        for case in range(self.CASES):
            nest = random_nest(rng)
            hierarchy = random_hierarchy(rng, nest)
            tile = random_tile(rng, nest)
            curve = nest_miss_curve(nest, tile=tile)
            report = simulate_hierarchy_trace(
                nest, hierarchy, tile=tile, schedule="differential"
            )
            for boundary in report.boundaries:
                misses, writebacks = reference_level_counts(
                    nest, boundary.capacity, tile=tile
                )
                label = (case, nest.describe(), hierarchy.capacities, boundary.capacity)
                assert curve.misses_at(boundary.capacity) == misses, label
                assert curve.writebacks_at(boundary.capacity) == writebacks, label
                assert boundary.words == misses + writebacks, label

    def test_traffic_monotone_in_capacity(self):
        rng = random.Random(826)
        for _ in range(self.CASES):
            nest = random_nest(rng)
            hierarchy = random_hierarchy(rng, nest)
            tile = random_tile(rng, nest)
            curve = nest_miss_curve(nest, tile=tile)
            misses = [curve.misses_at(c) for c in hierarchy.capacities]
            writebacks = [curve.writebacks_at(c) for c in hierarchy.capacities]
            assert misses == sorted(misses, reverse=True)
            assert writebacks == sorted(writebacks, reverse=True)


@st.composite
def nest_and_stack(draw):
    depth = draw(st.integers(1, 3))
    n = draw(st.integers(1, 3))
    supports = []
    for _ in range(n):
        support = draw(
            st.sets(st.integers(0, depth - 1), min_size=0, max_size=depth).map(
                lambda s: tuple(sorted(s))
            )
        )
        supports.append(set(support))
    covered = {i for s in supports for i in s}
    for loop in range(depth):
        if loop not in covered:
            supports[draw(st.integers(0, n - 1))].add(loop)
    bounds = tuple(draw(st.integers(1, 10)) for _ in range(depth))
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=tuple(sorted(s)), is_output=(j == 0))
        for j, s in enumerate(supports)
    )
    nest = LoopNest(
        name="hyp", loops=tuple(f"x{i}" for i in range(depth)), bounds=bounds,
        arrays=arrays,
    )
    caps = draw(
        st.lists(st.integers(2, 200), min_size=2, max_size=4, unique=True).map(sorted)
    )
    tile = draw(
        st.one_of(
            st.none(),
            st.tuples(*(st.integers(1, L) for L in bounds)),
        )
    )
    return nest, tuple(caps), tile


class TestDifferentialHypothesis:
    @SETTINGS
    @given(case=nest_and_stack())
    def test_one_pass_matches_reference(self, case):
        nest, capacities, blocks = case
        tile = None if blocks is None else TileShape(nest=nest, blocks=blocks)
        curve = nest_miss_curve(nest, tile=tile)
        for capacity in capacities:
            misses, writebacks = reference_level_counts(nest, capacity, tile=tile)
            assert curve.misses_at(capacity) == misses
            assert curve.writebacks_at(capacity) == writebacks
