"""Multi-worker serving: coalescing, shared plan cache, golden parity.

End-to-end tests for the PR's fleet features, over real HTTP:

* N concurrent structurally-identical requests cost exactly one
  structure solve (request coalescing + the planner's per-key gate);
* a shared plan cache directory survives a full server restart — the
  second server answers warm with zero solves;
* the worker pool, shared cache, and response cache all report through
  ``/v1/health``;
* golden payloads are byte-identical whether the server runs inline,
  with a process pool, or off the response cache.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Session
from repro.serve import WORKERS_ENV_VAR, make_server

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "analyze_payloads.json").read_text()
)
GOLDEN_REQUESTS = {
    "analyze_matmul": {"problem": "matmul", "sizes": [64, 64, 64], "cache_words": 1024},
    "analyze_nbody_aggregate": {"problem": "nbody", "sizes": [4096, 4096],
                                "cache_words": 4096, "budget": "aggregate"},
}


def _serve(session=None, **kwargs):
    server = make_server(port=0, session=session or Session(), **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, f"http://127.0.0.1:{server.server_address[1]}"


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _post_raw(base: str, path: str, blob) -> tuple[int, bytes]:
    data = blob if isinstance(blob, bytes) else json.dumps(blob).encode()
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _health(base: str) -> dict:
    with urllib.request.urlopen(base + "/v1/health", timeout=30) as resp:
        return json.load(resp)


def _payload_bytes(raw: bytes) -> bytes:
    """The verbatim payload substring of a schema-v1 envelope."""
    return raw.split(b'"payload": ', 1)[1].rsplit(b', "meta": ', 1)[0]


def _total_solves(health_payload: dict) -> int:
    """Structure solves paid anywhere: inline or dispatched to the pool.

    Under ``REPRO_SERVE_WORKERS`` (CI's chaos leg) cold solves run in
    pool workers, so the in-process ``structure_solves`` counter stays
    0 and the work shows up as a pool dispatch instead.
    """
    return (health_payload["planner_stats"]["structure_solves"]
            + health_payload["server"]["workers"]["dispatched"])


class TestCoalescing:
    def test_concurrent_same_structure_costs_one_solve(self):
        # 4 identical bodies + 4 same-structure different-bound bodies,
        # fired together against a cold server: the response cache is
        # off, so all 8 reach the planner — which must solve the mpLP
        # exactly once (coalescing, not luck: late arrivals block on the
        # leader's in-flight solve rather than re-running it).
        server, thread, base = _serve(response_cache=0)
        bodies = [
            {"problem": "mttkrp", "sizes": [24, 24, 24, 8], "cache_words": 4096}
        ] * 4 + [
            {"problem": "mttkrp", "sizes": [n, n, n, 16], "cache_words": 1024}
            for n in (16, 20, 28, 32)
        ]
        results: list = [None] * len(bodies)
        barrier = threading.Barrier(len(bodies))

        def fire(index: int, body: dict) -> None:
            barrier.wait()
            results[index] = _post_raw(base, "/v1/analyze", body)

        threads = [
            threading.Thread(target=fire, args=(i, b), daemon=True)
            for i, b in enumerate(bodies)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert all(status == 200 for status, _ in results), results
            # Identical bodies got identical (byte-identical) answers.
            first = _payload_bytes(results[0][1])
            assert all(_payload_bytes(raw) == first for _, raw in results[:4])
            health = _health(base)["payload"]
            assert _total_solves(health) == 1, health
        finally:
            _stop(server, thread)


class TestSharedCacheAcrossRestarts:
    def test_warm_restart_costs_zero_solves(self, tmp_path):
        store_dir = tmp_path / "plans"
        body = {"problem": "matmul", "sizes": [48, 48, 48], "cache_words": 4096}

        server, thread, base = _serve(Session(shared_cache=store_dir))
        try:
            status, first_raw = _post_raw(base, "/v1/analyze", body)
            assert status == 200
            health = _health(base)["payload"]
            assert _total_solves(health) == 1, health
            assert health["shared_cache"]["puts"] >= 1
        finally:
            _stop(server, thread)

        # A brand-new process (fresh Session, fresh planner) over the
        # same directory answers warm: the solve happened last "boot".
        server, thread, base = _serve(Session(shared_cache=store_dir))
        try:
            status, second_raw = _post_raw(base, "/v1/analyze", body)
            assert status == 200
            assert _payload_bytes(second_raw) == _payload_bytes(first_raw)
            health = _health(base)["payload"]
            assert _total_solves(health) == 0, health
            assert health["planner_stats"]["shared_hits"] >= 1, health
            assert health["shared_cache"]["hits"] >= 1, health
        finally:
            _stop(server, thread)

    def test_version_bump_discards_stale_store(self, tmp_path):
        from repro.util.sharedstore import SharedPlanStore

        store_dir = tmp_path / "plans"
        body = {"problem": "matmul", "sizes": [16, 16, 16], "cache_words": 256}

        server, thread, base = _serve(Session(shared_cache=store_dir))
        try:
            assert _post_raw(base, "/v1/analyze", body)[0] == 200
        finally:
            _stop(server, thread)

        # Restart under a bumped plan-cache schema: yesterday's entries
        # are invalid, so the server re-solves instead of trusting them.
        bumped = SharedPlanStore(store_dir, version=99)
        server, thread, base = _serve(Session(shared_cache=bumped))
        try:
            assert _post_raw(base, "/v1/analyze", body)[0] == 200
            health = _health(base)["payload"]
            assert _total_solves(health) == 1, health
            assert health["planner_stats"]["shared_hits"] == 0, health
            assert health["shared_cache"]["invalidated"] >= 1, health
        finally:
            _stop(server, thread)


class TestWorkerPool:
    def test_pool_solves_and_reports_liveness(self):
        server, thread, base = _serve(workers=2)
        try:
            body = {"problem": "matmul", "sizes": [32, 32, 32], "cache_words": 1024}
            status, raw = _post_raw(base, "/v1/analyze", body)
            assert status == 200
            stats = _health(base)["payload"]["server"]
            assert stats["workers"]["configured"] == 2
            assert stats["workers"]["pool_started"] is True
            assert stats["workers"]["pool_alive"] is True
            assert stats["workers"]["dispatched"] >= 1
            # The solve ran in a pool worker, never in this process.
            planner = _health(base)["payload"]["planner_stats"]
            assert planner["structure_solves"] == 0, planner
        finally:
            _stop(server, thread)

    def test_env_var_configures_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        server = make_server(port=0)
        try:
            assert server.workers == 3
        finally:
            server.server_close()
        monkeypatch.setenv(WORKERS_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            make_server(port=0)


class TestSignalShutdown:
    def test_sigterm_shuts_down_pool_and_releases_port(self):
        # `kill` must take the graceful path: with fork-started pool
        # workers, the default SIGTERM disposition would kill only the
        # parent and orphan the workers — which inherited the listening
        # socket, so the port would stay busy and a restarted server
        # could never bind it.
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "2", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)/", line)
            assert match, line
            port = int(match.group(1))
            body = {"problem": "matmul", "sizes": [32, 32, 32], "cache_words": 1024}
            status, _ = _post_raw(f"http://127.0.0.1:{port}", "/v1/analyze", body)
            assert status == 200  # pool is live: workers exist to orphan
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert "shutting down" in proc.stdout.read()
            # The workers died with the parent, so the port frees up.
            # SO_REUSEADDR matches what a restarted server would use: it
            # ignores TIME_WAIT remnants but still fails EADDRINUSE if
            # an orphaned worker is holding the listening socket.
            deadline = time.monotonic() + 10
            while True:
                probe = socket.socket()
                probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                try:
                    probe.bind(("127.0.0.1", port))
                    probe.listen(1)
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.2)
                finally:
                    probe.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestGoldenParityAcrossModes:
    def test_golden_payloads_byte_identical_in_every_mode(self):
        # Inline server (reference), pooled server (fresh solve path),
        # pooled server again (response-cache splice path): all three
        # must produce the same payload bytes, equal to the golden file.
        inline_server, inline_thread, inline_base = _serve(response_cache=0)
        pooled_server, pooled_thread, pooled_base = _serve(
            workers=2, response_cache=64
        )
        try:
            for name, request in GOLDEN_REQUESTS.items():
                _, inline_raw = _post_raw(inline_base, "/v1/analyze", request)
                _, fresh_raw = _post_raw(pooled_base, "/v1/analyze", request)
                _, cached_raw = _post_raw(pooled_base, "/v1/analyze", request)
                expected = _payload_bytes(inline_raw)
                assert _payload_bytes(fresh_raw) == expected, name
                assert _payload_bytes(cached_raw) == expected, name
                assert json.loads(expected) == GOLDEN[name], name
                meta = json.loads(cached_raw)["meta"]
                assert meta["cache_hit"] is True
                assert meta.get("response_cache") is True, meta
        finally:
            _stop(inline_server, inline_thread)
            _stop(pooled_server, pooled_thread)

    def test_batch_golden_parity_under_workers(self):
        server, thread, base = _serve(workers=2)
        try:
            batch = {"requests": list(GOLDEN_REQUESTS.values())}
            status, raw = _post_raw(base, "/v1/batch", batch)
            assert status == 200
            body = json.loads(raw)
            assert body["count"] == len(GOLDEN_REQUESTS)
            for result, name in zip(body["results"], GOLDEN_REQUESTS):
                assert result["payload"] == GOLDEN[name], name
        finally:
            _stop(server, thread)
