"""Tests for the machine model and cache policies."""

import numpy as np
import pytest

from repro.machine.cache import (
    BatchLRU,
    DirectMappedCache,
    FullyAssociativeLRU,
    MissCurve,
    miss_curve,
    simulate_belady,
)
from repro.machine.counters import ArrayTraffic, TrafficReport
from repro.machine.model import MachineModel


class TestMachineModel:
    def test_basic(self):
        m = MachineModel(cache_words=64, line_words=8, name="toy")
        assert m.cache_lines == 8
        assert m.line_of(0) == 0
        assert m.line_of(7) == 0
        assert m.line_of(8) == 1
        assert "toy" in m.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(cache_words=0)
        with pytest.raises(ValueError):
            MachineModel(cache_words=8, line_words=0)
        with pytest.raises(ValueError):
            MachineModel(cache_words=8, line_words=16)
        with pytest.raises(ValueError):
            MachineModel(cache_words=8).line_of(-1)


class TestLRU:
    def test_hits_and_misses(self):
        c = FullyAssociativeLRU(2)
        assert not c.access(1)
        assert not c.access(2)
        assert c.access(1)  # hit
        assert not c.access(3)  # evicts 2 (LRU)
        assert not c.access(2)  # miss again
        assert c.stats.misses == 4
        assert c.stats.hits == 1

    def test_lru_order_updates_on_hit(self):
        c = FullyAssociativeLRU(2)
        c.access(1)
        c.access(2)
        c.access(1)  # 2 becomes LRU
        c.access(3)  # evicts 2
        assert c.access(1)  # 1 still resident

    def test_writeback_on_dirty_eviction(self):
        c = FullyAssociativeLRU(1)
        c.access(1, is_write=True)
        c.access(2)  # evicts dirty 1
        assert c.stats.writebacks == 1

    def test_flush_writes_dirty(self):
        c = FullyAssociativeLRU(4)
        c.access(1, is_write=True)
        c.access(2)
        c.flush()
        assert c.stats.writebacks == 1
        assert c.resident_lines == 0

    def test_write_hit_marks_dirty(self):
        c = FullyAssociativeLRU(2)
        c.access(1)
        c.access(1, is_write=True)
        c.flush()
        assert c.stats.writebacks == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FullyAssociativeLRU(0)

    def test_miss_rate(self):
        c = FullyAssociativeLRU(8)
        for i in range(4):
            c.access(i)
        for i in range(4):
            c.access(i)
        assert c.stats.miss_rate == 0.5


class TestDirectMapped:
    def test_conflict_misses(self):
        c = DirectMappedCache(2)
        c.access(0)
        c.access(2)  # maps to set 0, evicts 0
        assert not c.access(0)  # conflict miss despite capacity 2
        assert c.stats.misses == 3

    def test_lru_beats_direct_on_conflicting_trace(self):
        trace = [0, 2, 0, 2, 0, 2, 1, 3]
        lru = FullyAssociativeLRU(4)
        dm = DirectMappedCache(4)
        for line in trace:
            lru.access(line)
            dm.access(line)
        assert lru.stats.misses <= dm.stats.misses

    def test_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(0)


class TestBelady:
    def test_classic_example(self):
        # Belady on 1,2,3,1,2,3 with capacity 2: optimal misses = 4.
        trace = [(1, False), (2, False), (3, False), (1, False), (2, False), (3, False)]
        stats = simulate_belady(trace, 2)
        assert stats.misses == 4

    def test_never_worse_than_lru(self):
        import random

        rng = random.Random(7)
        trace = [(rng.randrange(12), rng.random() < 0.3) for _ in range(400)]
        for cap in (1, 2, 4, 8):
            bel = simulate_belady(trace, cap)
            lru = FullyAssociativeLRU(cap)
            for line, w in trace:
                lru.access(line, is_write=w)
            lru.flush()
            assert bel.misses <= lru.stats.misses, cap

    def test_all_fits(self):
        trace = [(i % 4, False) for i in range(100)]
        stats = simulate_belady(trace, 4)
        assert stats.misses == 4
        assert stats.hits == 96

    def test_dirty_flush_counted(self):
        stats = simulate_belady([(1, True)], 4)
        assert stats.writebacks == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_belady([], 0)


class TestBatchLRU:
    def test_matches_per_access_policy(self):
        lines = np.array([1, 2, 1, 3, 2, 1], dtype=np.int64)
        writes = np.array([True, False, False, False, False, True])
        batch = BatchLRU(2, 4)
        miss = batch.process(lines, writes)
        batch.flush()
        ref = FullyAssociativeLRU(2)
        ref_miss = [not ref.access(int(l), is_write=bool(w)) for l, w in zip(lines, writes)]
        ref.flush()
        assert miss.tolist() == ref_miss
        assert (batch.stats.hits, batch.stats.misses, batch.stats.writebacks) == (
            ref.stats.hits,
            ref.stats.misses,
            ref.stats.writebacks,
        )

    def test_state_persists_across_chunks(self):
        batch = BatchLRU(2, 4)
        batch.process(np.array([1, 2]), np.zeros(2, dtype=bool))
        miss = batch.process(np.array([1, 3, 2]), np.zeros(3, dtype=bool))
        # 1 still resident from the first chunk; 3 evicts 2; 2 misses again
        assert miss.tolist() == [False, True, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchLRU(0, 4)
        with pytest.raises(ValueError):
            BatchLRU(2, 0)
        with pytest.raises(ValueError):
            BatchLRU(2, 4).process(np.array([1, 2]), np.array([False]))


class TestMissCurve:
    def test_cyclic_trace_all_capacities(self):
        # 1,2,3 repeated: LRU thrashes below capacity 3, then all-hit.
        pairs = [(k % 3, False) for k in range(30)]
        curve = miss_curve(pairs)
        assert curve.misses_at(1) == 30
        assert curve.misses_at(2) == 30
        assert curve.misses_at(3) == 3
        assert curve.misses_at(100) == 3
        assert curve.hits_at(3) == 27

    def test_writebacks_across_capacities(self):
        # write 0, evict it under small caches, rewrite: two write-backs
        # at capacity 1, one (the final flush) once 0 stays resident.
        pairs = [(0, True), (1, False), (0, True)]
        curve = miss_curve(pairs)
        assert curve.writebacks_at(1) == 2
        assert curve.writebacks_at(2) == 1
        assert curve.stats_at(2).writebacks == 1

    def test_empty_trace(self):
        curve = miss_curve([])
        assert curve.accesses == 0
        assert curve.misses_at(4) == 0
        assert curve.writebacks_at(4) == 0

    def test_capacity_validation(self):
        curve = miss_curve([(1, False)])
        with pytest.raises(ValueError):
            curve.misses_at(0)
        with pytest.raises(ValueError):
            curve.sweep([0, 1])

    def test_sweep_default_range(self):
        curve = miss_curve([(k % 4, False) for k in range(12)])
        caps, misses, writebacks = curve.sweep()
        assert caps.tolist() == [1, 2, 3, 4, 5]
        assert misses[-1] == curve.cold_misses == 4
        assert writebacks.tolist() == [0, 0, 0, 0, 0]

    def test_is_dataclass_surface(self):
        curve = miss_curve([(1, True), (2, False)])
        assert isinstance(curve, MissCurve)
        assert curve.distinct_lines == 2
        assert curve.cold_misses == 2


class TestTrafficReport:
    def _report(self):
        return TrafficReport(
            nest_name="toy",
            per_array=(
                ArrayTraffic("A", loads=100, stores=0),
                ArrayTraffic("C", loads=50, stores=25),
            ),
            source="analytic",
        )

    def test_totals(self):
        r = self._report()
        assert r.loads == 150
        assert r.stores == 25
        assert r.total_words == 175
        assert r.array("A").total == 100

    def test_ratio(self):
        r = self._report()
        assert r.ratio_to(175) == 1.0
        with pytest.raises(ValueError):
            r.ratio_to(0)

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            self._report().array("Z")

    def test_summary(self):
        assert "toy[analytic]" in self._report().summary()
