"""End-to-end integration: full pipelines across the whole catalog.

Each test drives the complete user-facing flow — parse/build → analyze
→ independent audit → simulate → execute — asserting the cross-module
contracts that no unit test covers in one piece.
"""

import numpy as np
import pytest

import repro
from repro.core.verify import verify_analysis
from repro.kernels.codegen import run_generated
from repro.kernels.einsum_exec import execute_tiled
from repro.kernels.naive import allocate_arrays, execute_reference
from repro.library.problems import CATALOG_BUILDERS, catalog
from repro.machine.model import MachineModel
from repro.simulate.executor import best_order_traffic, simulate_untiled_traffic

M = 2**10

#: Catalog problems shrunk so reference execution stays fast.
SMALL_SIZES = {
    "matmul": (12, 10, 8),
    "matvec": (16, 16),
    "outer_product": (12, 12),
    "dot_product": (64,),
    "nbody": (14, 12),
    "contraction": ((4, 4), (4,), (4, 4)),
    "pointwise_conv": (2, 3, 4, 3, 3),
    "fully_connected": (6, 8, 10),
    "mttkrp": (5, 4, 6, 3),
    "ttm": (5, 4, 6, 3),
    "batched_matmul": (2, 5, 4, 6),
    "join_aggregate": (16, 16),
    "syrk": (10, 8),
    "tucker_core": (4, 4, 4, 2, 2, 2),
    "attention_scores": (2, 2, 4, 4, 3),
}


@pytest.mark.parametrize("name", sorted(CATALOG_BUILDERS), ids=str)
def test_full_pipeline_per_problem(name):
    """analyze -> audit -> simulate, on realistic sizes."""
    nest = catalog()[name]
    analysis = repro.analyze(nest, cache_words=M)
    # 1. Tightness and audit.
    assert analysis.certificate.tight
    assert verify_analysis(analysis) == []
    # 2. The bound object and the tiling agree on the exponent.
    assert analysis.lower_bound.k_hat == analysis.tiling.exponent
    # 3. An executable tiling's simulated traffic meets the bound within
    #    the model constant, and never loses to the untiled schedule.
    practical = repro.solve_tiling(nest, M, budget="aggregate")
    machine = MachineModel(cache_words=M)
    tiled = best_order_traffic(nest, practical.tile, machine=machine)
    naive = simulate_untiled_traffic(nest, machine=machine)
    assert tiled.total_words <= naive.total_words * 1.001, name
    assert tiled.ratio_to(analysis.lower_bound.value) <= 16, name


@pytest.mark.parametrize("name", sorted(SMALL_SIZES), ids=str)
def test_execution_consistency_per_problem(name):
    """Reference, tiled-einsum, and generated-code executions agree."""
    builder, _ = CATALOG_BUILDERS[name]
    nest = builder(*SMALL_SIZES[name])
    arrays = allocate_arrays(nest, rng=np.random.default_rng(123))
    out_name = next(a.name for a in nest.arrays if a.is_output)

    def fresh():
        d = {k: v.copy() for k, v in arrays.items()}
        d[out_name] = np.zeros_like(arrays[out_name])
        return d

    expected = execute_reference(nest, fresh())
    sol = repro.solve_tiling(nest, 16, budget="aggregate")

    via_einsum = fresh()
    execute_tiled(nest, via_einsum, sol.tile)
    np.testing.assert_allclose(via_einsum[out_name], expected, rtol=1e-10)

    via_codegen = run_generated(nest, sol.tile, fresh())
    np.testing.assert_allclose(via_codegen, expected, rtol=1e-10)


def test_parser_reproduces_catalog_matmul_analysis():
    """A parsed statement and the catalog builder give identical analyses."""
    parsed = repro.parse_nest(
        "C[x1,x3] += A[x1,x2] * B[x2,x3]",
        bounds={"x1": 512, "x2": 512, "x3": 8},
        name="matmul",
        loop_order=["x1", "x2", "x3"],
    )
    from repro.library.problems import matmul

    built = matmul(512, 512, 8)
    a1 = repro.analyze(parsed, cache_words=M)
    a2 = repro.analyze(built, cache_words=M)
    assert a1.lower_bound.k_hat == a2.lower_bound.k_hat
    assert a1.tiling.tile.blocks == a2.tiling.tile.blocks


def test_hierarchy_pipeline_end_to_end():
    """Nested tiling -> per-level audit -> per-boundary trace validation."""
    from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling
    from repro.simulate.multilevel import simulate_hierarchical_tiling_trace

    from repro.library.problems import matmul

    nest = matmul(20, 20, 20)
    hierarchy = MemoryHierarchy(capacities=(48, 192, 768))
    ht = solve_hierarchical_tiling(nest, hierarchy, budget="aggregate")
    for lvl in ht.levels:
        analysis = repro.analyze(nest, cache_words=lvl.capacity)
        assert verify_analysis(analysis) == []
    report = simulate_hierarchical_tiling_trace(ht)
    for boundary in report.boundaries:
        assert boundary.words >= boundary.lower_bound * 0.999


def test_piecewise_form_predicts_every_catalog_exponent():
    """The mpLP closed form evaluated at each nest's betas equals the LP."""
    for name, nest in catalog().items():
        if nest.depth > 5:
            continue  # vertex enumeration cost grows fast; covered elsewhere
        pvf = repro.parametric_tile_exponent(nest)
        betas = nest.betas(M)
        assert pvf.evaluate(betas) == repro.tile_exponent(nest, M, betas=betas), name
