"""Tests for the ``repro-tile serve`` JSON endpoint.

Spins the stdlib HTTP server up in-process on an ephemeral port and
drives it with urllib: schema-version-tagged success envelopes,
structured 4xx payloads, warm-cache metadata, and golden-file payload
comparisons shared with the CLI surface.
"""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import SCHEMA_VERSION, Session
from repro.serve import MAX_BATCH_REQUESTS, make_server

GOLDEN = json.loads((Path(__file__).parent / "golden" / "analyze_payloads.json").read_text())


@pytest.fixture(scope="module")
def service():
    """One shared server (and Session) for the whole module."""
    server = make_server(port=0, session=Session())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def _post(base: str, path: str, blob) -> tuple[int, dict]:
    data = blob if isinstance(blob, bytes) else json.dumps(blob).encode()
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestHealth:
    def test_health_envelope(self, service):
        status, body = _get(service, "/v1/health")
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["kind"] == "health"
        assert body["payload"]["status"] == "ok"
        assert "planner_stats" in body["payload"]

    def test_trailing_slash_ok(self, service):
        status, body = _get(service, "/v1/health/")
        assert status == 200 and body["payload"]["status"] == "ok"

    def test_query_string_ok(self, service):
        # Load balancers append probe/cache-busting params to health URLs.
        status, body = _get(service, "/v1/health?probe=1")
        assert status == 200 and body["payload"]["status"] == "ok"


class TestAnalyze:
    def test_golden_payload_and_warm_cache_hit(self, service):
        request = {"problem": "matmul", "sizes": [64, 64, 64], "cache_words": 1024}
        status, cold = _post(service, "/v1/analyze", request)
        assert status == 200
        assert cold["schema_version"] == SCHEMA_VERSION
        assert cold["kind"] == "analyze"
        assert cold["payload"] == GOLDEN["analyze_matmul"]

        status, warm = _post(service, "/v1/analyze", request)
        assert status == 200
        assert warm["meta"]["cache_hit"] is True
        assert warm["payload"] == cold["payload"]

    def test_aggregate_budget_golden(self, service):
        status, body = _post(
            service,
            "/v1/analyze",
            {"problem": "nbody", "sizes": [4096, 4096], "cache_words": 4096,
             "budget": "aggregate"},
        )
        assert status == 200
        assert body["payload"] == GOLDEN["analyze_nbody_aggregate"]

    def test_statement_spelling_with_certificate(self, service):
        status, body = _post(
            service,
            "/v1/analyze",
            {"statement": "C[i,k] += A[i,j] * B[j,k]",
             "bounds": {"i": 1024, "j": 1024, "k": 16},
             "cache_words": 65536, "certificate": True},
        )
        assert status == 200
        assert body["payload"]["k_hat"] == "5/4"
        cert = body["payload"]["certificate"]
        assert cert["tight"] is True and cert["primal"] == "5/4"


class TestBatchAndSweep:
    def test_batch_ordered_results(self, service):
        requests = [
            {"problem": "matmul", "sizes": [2**e, 64, 64], "cache_words": 1024}
            for e in (3, 4, 5)
        ]
        status, body = _post(service, "/v1/batch", {"requests": requests})
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["kind"] == "batch" and body["count"] == 3
        assert [r["payload"]["bounds"][0] for r in body["results"]] == [8, 16, 32]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in body["results"])

    def test_sweep_grid(self, service):
        status, body = _post(
            service,
            "/v1/sweep",
            {"problem": "nbody", "size_axes": [[32, 64], [32]], "cache_sizes": [64, 256]},
        )
        assert status == 200
        assert body["kind"] == "sweep" and body["count"] == 4
        assert {r["payload"]["cache_words"] for r in body["results"]} == {64, 256}

    def test_batch_requires_list(self, service):
        status, body = _post(service, "/v1/batch", {"requests": "nope"})
        assert status == 400 and body["kind"] == "error"

    def test_batch_size_guard(self, service):
        entries = [{"problem": "matmul", "cache_words": 64}] * (MAX_BATCH_REQUESTS + 1)
        status, body = _post(service, "/v1/batch", {"requests": entries})
        assert status == 400
        assert str(MAX_BATCH_REQUESTS) in body["payload"]["error"]


class TestErrorPayloads:
    @pytest.mark.parametrize(
        "blob, fragment",
        [
            ({}, "need one of"),
            ({"problem": "matmul"}, "cache_words"),
            ({"problem": "unknown-kernel", "cache_words": 64}, "unknown problem"),
            ({"problem": "matmul", "cache_words": 1}, ">= 2"),
            ({"statement": "C[i] += A[i+1]", "bounds": {"i": 4}, "cache_words": 64}, ""),
            ({"problem": "matmul", "cache_words": 2, "budget": "aggregate"}, "aggregate"),
        ],
    )
    def test_validation_maps_to_structured_400(self, service, blob, fragment):
        status, body = _post(service, "/v1/analyze", blob)
        assert status == 400
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["kind"] == "error"
        assert body["payload"]["status"] == 400
        assert fragment in body["payload"]["error"]

    def test_malformed_json_body(self, service):
        status, body = _post(service, "/v1/analyze", b"{not json")
        assert status == 400 and "JSON" in body["payload"]["error"]

    def test_empty_body(self, service):
        status, body = _post(service, "/v1/analyze", b"")
        assert status == 400 and "empty" in body["payload"]["error"]

    def test_unknown_path_404(self, service):
        status, body = _get(service, "/v2/analyze")
        assert status == 404 and body["kind"] == "error"
        assert body["payload"]["status"] == 404

    @pytest.mark.parametrize(
        "path", ["/v1/analyze", "/v1/batch", "/v1/sweep", "/v1/simulate", "/v1/distributed"]
    )
    def test_get_on_post_endpoint_405(self, service, path):
        status, body = _get(service, path)
        assert status == 405 and body["payload"]["status"] == 405


class TestSimulateAndDistributed:
    def test_simulate_endpoint(self, service):
        status, body = _post(
            service, "/v1/simulate",
            {"problem": "nbody", "sizes": [96, 96], "cache_words": 64},
        )
        assert status == 200 and body["kind"] == "simulate"
        assert body["payload"]["total_words"] > 0
        assert len(body["payload"]["tile"]) == 2

    def test_simulate_trace_guard_400(self, service):
        status, body = _post(
            service, "/v1/simulate",
            {"problem": "matmul", "sizes": [4096, 4096, 4096], "cache_words": 1024},
        )
        assert status == 400 and "guard" in body["payload"]["error"]

    def test_distributed_endpoint(self, service):
        status, body = _post(
            service, "/v1/distributed",
            {"problem": "matmul", "sizes": [256, 256, 256],
             "processors": 8, "memory_words": 4096},
        )
        assert status == 200 and body["kind"] == "distributed"
        assert body["payload"]["grid"] == [2, 2, 2]
