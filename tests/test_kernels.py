"""Correctness tests for the numpy kernel backend against the oracle."""

import numpy as np
import pytest

from repro.core.loopnest import LoopNestError
from repro.core.tiling import TileShape, solve_tiling
from repro.kernels.einsum_exec import einsum_spec, execute_tiled, execute_untiled
from repro.kernels.naive import allocate_arrays, execute_reference
from repro.kernels.tiled import (
    blocked_matmul,
    blocked_nbody,
    blocked_pointwise_conv,
    naive_matmul,
    naive_nbody,
    naive_pointwise_conv,
)
from repro.library.problems import (
    batched_matmul,
    matmul,
    matvec,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
)


def _copy_with_fresh_output(nest, arrays):
    out_name = next(a.name for a in nest.arrays if a.is_output)
    fresh = {k: v.copy() for k, v in arrays.items()}
    fresh[out_name] = np.zeros_like(arrays[out_name])
    return fresh


NESTS = [
    matmul(6, 5, 4),
    matvec(7, 6),
    nbody(6, 5),
    tensor_contraction((3, 4), (5,), (2, 3)),
    pointwise_conv(2, 3, 4, 3, 2),
    mttkrp(3, 4, 5, 2),
    batched_matmul(2, 4, 3, 5),
]


class TestEinsumExecutor:
    @pytest.mark.parametrize("nest", NESTS, ids=lambda n: n.name)
    def test_tiled_matches_reference(self, nest):
        arrays = allocate_arrays(nest, rng=np.random.default_rng(42))
        expected = execute_reference(nest, _copy_with_fresh_output(nest, arrays))
        sol = solve_tiling(nest, 24, budget="aggregate")
        got_arrays = _copy_with_fresh_output(nest, arrays)
        execute_tiled(nest, got_arrays, sol.tile)
        out_name = next(a.name for a in nest.arrays if a.is_output)
        np.testing.assert_allclose(got_arrays[out_name], expected, rtol=1e-10)

    @pytest.mark.parametrize("nest", NESTS, ids=lambda n: n.name)
    def test_untiled_matches_reference(self, nest):
        arrays = allocate_arrays(nest, rng=np.random.default_rng(3))
        expected = execute_reference(nest, _copy_with_fresh_output(nest, arrays))
        got_arrays = _copy_with_fresh_output(nest, arrays)
        execute_untiled(nest, got_arrays)
        out_name = next(a.name for a in nest.arrays if a.is_output)
        np.testing.assert_allclose(got_arrays[out_name], expected, rtol=1e-10)

    def test_tile_count_and_madds(self):
        nest = matmul(8, 8, 8)
        arrays = allocate_arrays(nest)
        stats = execute_tiled(nest, arrays, TileShape(nest=nest, blocks=(4, 4, 4)))
        assert stats.tiles_executed == 8
        assert stats.multiply_adds == 512
        assert stats.einsum_spec == "ab,bc->ac"

    def test_order_does_not_change_result(self):
        nest = matmul(6, 6, 6)
        arrays = allocate_arrays(nest, rng=np.random.default_rng(9))
        tile = TileShape(nest=nest, blocks=(2, 3, 4))
        results = []
        for order in [(0, 1, 2), (2, 1, 0), (1, 2, 0)]:
            run = _copy_with_fresh_output(nest, arrays)
            execute_tiled(nest, run, tile, order=order)
            results.append(run["C"])
        np.testing.assert_allclose(results[0], results[1], rtol=1e-10)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-10)

    def test_einsum_spec_examples(self):
        assert einsum_spec(matmul(2, 2, 2)) == "ab,bc->ac"
        assert einsum_spec(mttkrp(2, 2, 2, 2)) == "abc,bd,cd->ad"
        assert einsum_spec(pointwise_conv(2, 2, 2, 2, 2)) == "abde,bc->acde"

    def test_shape_validation(self):
        nest = matmul(4, 4, 4)
        arrays = allocate_arrays(nest)
        arrays["A"] = arrays["A"][:2]
        with pytest.raises(LoopNestError):
            execute_untiled(nest, arrays)

    def test_missing_array(self):
        nest = matmul(4, 4, 4)
        arrays = allocate_arrays(nest)
        del arrays["B"]
        with pytest.raises(LoopNestError):
            execute_untiled(nest, arrays)


class TestAllocate:
    def test_output_zeroed_inputs_random(self):
        nest = matmul(4, 5, 6)
        arrays = allocate_arrays(nest)
        assert arrays["C"].shape == (4, 6)
        assert np.all(arrays["C"] == 0)
        assert arrays["A"].shape == (4, 5)
        assert not np.all(arrays["A"] == 0)

    def test_deterministic_with_seed(self):
        nest = matmul(4, 5, 6)
        a1 = allocate_arrays(nest, rng=np.random.default_rng(5))
        a2 = allocate_arrays(nest, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a1["A"], a2["A"])


class TestSpecialisedKernels:
    def test_blocked_matmul_matches(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((37, 23))
        B = rng.standard_normal((23, 41))
        for blocks in [(8, 8, 8), (37, 23, 41), (1, 1, 1), (16, 5, 9)]:
            np.testing.assert_allclose(
                blocked_matmul(A, B, *blocks), naive_matmul(A, B), rtol=1e-10
            )

    def test_blocked_matmul_validation(self):
        A = np.zeros((4, 5))
        with pytest.raises(ValueError):
            blocked_matmul(A, np.zeros((6, 3)), 2, 2, 2)
        with pytest.raises(ValueError):
            blocked_matmul(A, np.zeros((5, 3)), 0, 2, 2)

    def test_blocked_nbody_matches(self):
        rng = np.random.default_rng(1)
        P = rng.standard_normal(33)
        Q = rng.standard_normal(29)
        np.testing.assert_allclose(
            blocked_nbody(P, Q, 8, 16), naive_nbody(P, Q), rtol=1e-10
        )

    def test_nbody_custom_interaction(self):
        P = np.arange(4.0)
        Q = np.arange(3.0)
        f = lambda p, q: p * q
        np.testing.assert_allclose(
            blocked_nbody(P, Q, 2, 2, interaction=f),
            naive_nbody(P, Q, interaction=f),
        )

    def test_blocked_conv_matches(self):
        rng = np.random.default_rng(2)
        image = rng.standard_normal((5, 4, 6, 3))  # W H C B
        filt = rng.standard_normal((7, 6))  # K C
        np.testing.assert_allclose(
            blocked_pointwise_conv(image, filt, bc=2, bk=3),
            naive_pointwise_conv(image, filt),
            rtol=1e-10,
        )

    def test_blocked_conv_validation(self):
        with pytest.raises(ValueError):
            blocked_pointwise_conv(np.zeros((2, 2, 3, 2)), np.zeros((2, 4)), 1, 1)
        with pytest.raises(ValueError):
            blocked_pointwise_conv(np.zeros((2, 2, 3, 2)), np.zeros((2, 3)), 0, 1)
