"""Tests for the CI perf-regression gate's compare logic.

``benchmarks/check_regression.py`` is a script, not a package module;
it is loaded here via importlib so the pure pieces (metric extraction,
best-of aggregation, the gate itself, and the CLI plumbing around them)
stay tested without running any benchmark.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _fake_bench_dir(tmp_path: Path, scale: float = 1.0) -> Path:
    """A directory shaped like a fresh smoke-bench run."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    service = {
        "http_analyze": {"requests_per_second": 10_000.0 * scale},
        "http_analyze_nocache": {"requests_per_second": 2_000.0 * scale},
        "session_batch": {"requests_per_second": 5_000.0 * scale},
        "obs_relative_throughput": 1.0 * scale,
    }
    planner = {
        "warm_queries_per_second": 4_000.0 * scale,
        "speedup_engine_vs_solve_tiling": 12.0 * scale,
    }
    frontend = {
        "warm": {"bands_per_second": 2_500.0 * scale},
        "warm_over_cold": 30.0 * scale,
    }
    (tmp_path / "BENCH_service.json").write_text(json.dumps(service))
    (tmp_path / "BENCH_planner.json").write_text(json.dumps(planner))
    (tmp_path / "BENCH_frontend.json").write_text(json.dumps(frontend))
    return tmp_path


class TestGate:
    def test_equal_numbers_pass(self):
        fresh = {"m": 100.0}
        failures, report = check_regression.gate(fresh, {"m": 100.0}, 0.2)
        assert failures == []
        assert report["m"]["ok"] is True

    def test_drop_within_tolerance_passes(self):
        failures, _ = check_regression.gate({"m": 81.0}, {"m": 100.0}, 0.2)
        assert failures == []

    def test_drop_beyond_tolerance_fails(self):
        failures, report = check_regression.gate({"m": 79.0}, {"m": 100.0}, 0.2)
        assert len(failures) == 1 and "m:" in failures[0]
        assert report["m"]["ok"] is False

    def test_missing_fresh_metric_fails(self):
        # A metric silently vanishing from the bench output must not
        # read as "no regression".
        failures, _ = check_regression.gate({}, {"m": 100.0}, 0.2)
        assert failures == ["m: missing from the fresh run"]

    def test_new_metric_without_baseline_passes(self):
        failures, report = check_regression.gate(
            {"new": 5.0}, {}, 0.2
        )
        assert failures == []
        assert report["new"] == {"baseline": None, "fresh": 5.0, "ok": True}

    def test_improvements_always_pass(self):
        failures, report = check_regression.gate({"m": 300.0}, {"m": 100.0}, 0.2)
        assert failures == [] and report["m"]["ratio"] == 3.0

    def test_per_metric_tolerance_overrides_the_default(self):
        # obs_relative_throughput carries its own 5% tolerance: a drop
        # the default 20% would wave through must still trip the gate.
        name = "service.obs_relative_throughput"
        assert check_regression.METRIC_TOLERANCES[name] == 0.05
        failures, report = check_regression.gate(
            {name: 0.92}, {name: 1.0}, 0.2
        )
        assert len(failures) == 1 and name in failures[0]
        assert report[name]["tolerance"] == 0.05
        failures, _ = check_regression.gate({name: 0.96}, {name: 1.0}, 0.2)
        assert failures == []


class TestAggregation:
    def test_best_of_takes_per_metric_max(self):
        best = check_regression.best_of(
            [{"a": 1.0, "b": 9.0}, {"a": 5.0, "b": 2.0}]
        )
        assert best == {"a": 5.0, "b": 9.0}

    def test_collect_metrics_reads_gated_paths(self, tmp_path):
        metrics = check_regression.collect_metrics(_fake_bench_dir(tmp_path))
        assert metrics["service.http_analyze_rps"] == 10_000.0
        assert metrics["planner.speedup_engine_vs_solve_tiling"] == 12.0
        assert len(metrics) == len(check_regression.GATED_METRICS)

    def test_collect_metrics_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_regression.collect_metrics(tmp_path)


class TestCli:
    @pytest.fixture(autouse=True)
    def _isolated_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            check_regression, "BASELINE_PATH", tmp_path / "baseline.json"
        )

    def test_update_then_pass_then_seeded_trip(self, tmp_path, capsys):
        fresh = _fake_bench_dir(tmp_path / "fresh")
        assert check_regression.main(
            ["--reuse", str(fresh), "--update-baselines"]
        ) == 0
        assert check_regression.main(["--reuse", str(fresh)]) == 0
        assert "PASS" in capsys.readouterr().out
        # The acceptance demand: a synthetic 2x slowdown MUST trip it.
        assert check_regression.main(
            ["--reuse", str(fresh), "--seed-regression", "0.5"]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_real_regression_trips(self, tmp_path):
        assert check_regression.main(
            ["--reuse", str(_fake_bench_dir(tmp_path / "good")),
             "--update-baselines"]
        ) == 0
        slow = _fake_bench_dir(tmp_path / "slow", scale=0.5)
        assert check_regression.main(["--reuse", str(slow)]) == 1

    def test_report_file_written(self, tmp_path):
        fresh = _fake_bench_dir(tmp_path / "fresh")
        check_regression.main(["--reuse", str(fresh), "--update-baselines"])
        out = tmp_path / "report.json"
        assert check_regression.main(
            ["--reuse", str(fresh), "--out", str(out)]
        ) == 0
        report = json.loads(out.read_text())
        assert report["failures"] == []
        assert set(report["metrics"]) == {
            entry[1] for entry in check_regression.GATED_METRICS
        }

    def test_missing_baseline_is_an_infra_error(self, tmp_path):
        fresh = _fake_bench_dir(tmp_path / "fresh")
        assert check_regression.main(["--reuse", str(fresh)]) == 2

    def test_bad_flags_are_infra_errors(self, tmp_path):
        fresh = _fake_bench_dir(tmp_path / "fresh")
        assert check_regression.main(
            ["--reuse", str(fresh), "--tolerance", "1.5"]
        ) == 2
        assert check_regression.main(
            ["--reuse", str(fresh), "--runs", "0"]
        ) == 2
