"""Program-level serving: one request, three surfaces, one golden payload.

Pins the frontend's service contract:

* **Determinism** — one ``ProgramRequest`` produces one payload,
  byte-identical across ``Session.program``, ``POST /v1/program`` and
  ``repro-tile program`` (golden file shared by all three).
* **Twin identity over the wire** — the einsum catalog scenarios
  produce analyze payloads byte-identical to their hand-built library
  counterparts.
* **Cacheability** — ``/v1/program`` participates in the response
  cache (the payload is a pure function of the request; live planner
  telemetry rides in ``meta`` only), and shows up in the per-route
  health counters.
"""

import doctest
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import ProgramRequest, Session
from repro.cli import main
from repro.library.problems import build_problem
from repro.serve import make_server

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "program_payloads.json").read_text()
)

SHARE_REQUEST = {
    "program": {
        "name": "share",
        "bounds": {"i": 16, "j": 16, "k": 16},
        "statements": [
            "C[i,j] += A[i,k] * B[k,j]",
            "V[i] = C[i,j] + U[j]",
            "D[i,j] += C[i,k] * E[k,j]",
        ],
    },
    "cache_words": 256,
}

SHARE_CLI = [
    "program",
    "C[i,j] += A[i,k] * B[k,j]; V[i] = C[i,j] + U[j]; D[i,j] += C[i,k] * E[k,j]",
    "--bounds", "i=16,j=16,k=16", "--name", "share", "-M", "256", "--workers", "0",
]


@pytest.fixture()
def service():
    server = make_server(port=0, session=Session(workers=0), response_cache=64)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _post(base, path, blob):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(blob).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, json.load(resp)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, json.load(resp)


class TestProgramSurfaces:
    """One request, three surfaces, one golden payload."""

    def test_session_matches_golden(self):
        result = Session(workers=0).program(ProgramRequest.from_json(SHARE_REQUEST))
        assert result.kind == "program"
        assert result.payload == GOLDEN["program_share"]
        # The acceptance bar: >=3 statements -> >=2 bands with a warm
        # cross-band structure hit, visible in the payload itself.
        assert result.payload["num_bands"] >= 2
        assert result.payload["structure_sharing"]["cross_band_structure_hits"] >= 1
        assert result.payload["bands"][2]["structure_shared_with_band"] == 0

    def test_http_matches_golden(self, service):
        status, body = _post(service, "/v1/program", SHARE_REQUEST)
        assert status == 200
        assert body["schema_version"] == 1 and body["kind"] == "program"
        assert body["payload"] == GOLDEN["program_share"]

    def test_cli_matches_golden(self, capsys):
        assert main(SHARE_CLI) == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["kind"] == "program"
        assert body["payload"] == GOLDEN["program_share"]

    def test_einsum_spelling_matches_golden(self, capsys):
        blob = {
            "einsum": "ik,kj->ij",
            "sizes": {"i": 64, "k": 64, "j": 64},
            "cache_words": 1024,
        }
        result = Session(workers=0).program(ProgramRequest.from_json(blob))
        assert result.payload == GOLDEN["program_einsum_matmul"]
        assert main([
            "program", "--einsum", "ik,kj->ij", "--sizes", "i=64,k=64,j=64",
            "-M", "1024", "--workers", "0",
        ]) == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["payload"] == GOLDEN["program_einsum_matmul"]

    def test_stencil_tuned_certificate_golden(self):
        blob = {
            "program": {
                "name": "jacobi",
                "bounds": {"t": 6, "i": 24},
                "statements": ["A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] + F[i]"],
            },
            "cache_words": 32,
            "certificate": True,
            "tune_budget": 8,
        }
        result = Session(workers=0).program(ProgramRequest.from_json(blob))
        assert result.payload == GOLDEN["program_jacobi_tuned"]
        (band,) = result.payload["bands"]
        assert band["halo"] == {"A": [1, 1]}
        assert band["certificate"] is not None
        assert band["tuned"]["evaluations_used"] <= 8

    def test_program_file_mode_matches_golden(self, tmp_path, capsys):
        path = tmp_path / "share.json"
        path.write_text(json.dumps(SHARE_REQUEST["program"]))
        assert main([
            "program", "--file", str(path), "-M", "256", "--workers", "0",
        ]) == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["payload"] == GOLDEN["program_share"]


class TestEinsumTwinsOverAnalyze:
    """Einsum catalog scenarios are byte-identical to the library ones."""

    @pytest.mark.parametrize("name", ["matmul", "mttkrp", "batched_matmul"])
    def test_analyze_payloads_identical(self, name):
        session = Session(workers=0)
        library = session.analyze(build_problem(name), cache_words=4096)
        twin = session.analyze(build_problem(f"einsum_{name}"), cache_words=4096)
        assert twin.payload == library.payload

    @pytest.mark.parametrize("name", ["matmul", "mttkrp", "batched_matmul"])
    def test_analyze_http_identical(self, service, name):
        _, library = _post(
            service, "/v1/analyze", {"problem": name, "cache_words": 4096}
        )
        _, twin = _post(
            service, "/v1/analyze", {"problem": f"einsum_{name}", "cache_words": 4096}
        )
        assert twin["payload"] == library["payload"]


class TestServiceBehaviour:
    def test_response_cache_purity(self, service):
        _, cold = _post(service, "/v1/program", SHARE_REQUEST)
        _, warm = _post(service, "/v1/program", SHARE_REQUEST)
        assert warm["meta"].get("response_cache") is True
        assert warm["payload"] == cold["payload"]
        assert warm["kind"] == cold["kind"] == "program"

    def test_health_counts_program_route(self, service):
        _post(service, "/v1/program", SHARE_REQUEST)
        _post(service, "/v1/program", SHARE_REQUEST)
        _, health = _get(service, "/v1/health")
        by_route = health["payload"]["server"]["requests_by_route"]
        assert by_route["/v1/program"] == 2

    def test_http_validation_error_is_structured_400(self, service):
        request = urllib.request.Request(
            service + "/v1/program",
            data=json.dumps({"einsum": "ik,kj", "sizes": {"i": 4},
                             "cache_words": 64}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        body = json.load(err.value)
        assert body["kind"] == "error" and body["payload"]["status"] == 400
        assert "->" in body["payload"]["error"]

    def test_meta_is_live_but_payload_is_pure(self):
        session = Session(workers=0)
        cold = session.program(ProgramRequest.from_json(SHARE_REQUEST))
        warm = session.program(ProgramRequest.from_json(SHARE_REQUEST))
        assert cold.payload == warm.payload == GOLDEN["program_share"]
        assert cold.meta["cache_hit"] is False and warm.meta["cache_hit"] is True
        assert warm.meta["planner_delta"]["structure_solves"] == 0
        for band in cold.payload["bands"]:
            assert "cache_hit" not in band["plan"]


class TestProgramCli:
    def test_smoke_clamps_tune_budget(self, capsys):
        rc = main([
            "program", "A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] + F[i]",
            "--bounds", "t=6,i=24", "-M", "32", "--tune", "64",
            "--workers", "0", "--smoke",
        ])
        assert rc == 0
        body = json.loads(capsys.readouterr().out.strip())
        (band,) = body["payload"]["bands"]
        assert band["tuned"]["evaluations_used"] <= 8

    def test_bad_einsum_is_exit_2(self, capsys):
        rc = main(["program", "--einsum", "ik,kj", "--sizes", "i=4,k=4,j=4",
                   "-M", "64"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_spelling_conflict_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["program", "C[i] += A[i]", "--einsum", "i->i", "-M", "64"])

    def test_missing_bounds_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["program", "C[i] += A[i]", "-M", "64"])


class TestDocsExamples:
    """The executable examples in docs/frontend.md stay honest."""

    def test_docs_frontend_doctests(self):
        path = Path(__file__).parent.parent / "docs" / "frontend.md"
        outcome = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        )
        assert outcome.attempted > 0
        assert outcome.failed == 0
