"""Tests for the problem catalog (paper §6 examples and extensions)."""

import pytest

from repro.core.loopnest import LoopNest
from repro.library.problems import (
    CATALOG_BUILDERS,
    catalog,
    matmul,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
)


class TestCatalog:
    def test_all_problems_instantiate(self):
        problems = catalog()
        assert set(problems) == set(CATALOG_BUILDERS)
        for name, nest in problems.items():
            assert isinstance(nest, LoopNest), name

    def test_overrides(self):
        problems = catalog({"matmul": (3, 4, 5)})
        assert problems["matmul"].bounds == (3, 4, 5)

    def test_every_loop_covered(self):
        # The LoopNest invariant, double-checked across the catalog.
        for nest in catalog().values():
            covered = set()
            for arr in nest.arrays:
                covered.update(arr.support)
            assert covered == set(range(nest.depth)), nest.name

    def test_single_output_everywhere(self):
        for nest in catalog().values():
            assert sum(a.is_output for a in nest.arrays) == 1, nest.name


class TestSpecificShapes:
    def test_matmul_structure(self):
        mm = matmul(4, 5, 6)
        assert mm.array("C").support == (0, 2)
        assert mm.array("A").support == (0, 1)
        assert mm.array("B").support == (1, 2)

    def test_pointwise_conv_paper_eq_6_5(self):
        # Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c), loops (b,c,k,w,h).
        pc = pointwise_conv(2, 3, 4, 5, 6)
        assert pc.bounds == (2, 3, 4, 5, 6)
        assert pc.array("Out").support == (0, 2, 3, 4)  # b, k, w, h
        assert pc.array("Image").support == (0, 1, 3, 4)  # b, c, w, h
        assert pc.array("Filter").support == (1, 2)  # c, k

    def test_contraction_groups(self):
        nest = tensor_contraction((2, 3), (4,), (5, 6), name="tc")
        assert nest.depth == 5
        assert nest.array("A1").support == (0, 1, 3, 4)
        assert nest.array("A2").support == (0, 1, 2)
        assert nest.array("A3").support == (2, 3, 4)

    def test_contraction_empty_group(self):
        # Empty shared group = tensor outer product.
        nest = tensor_contraction((2, 2), (), (3,))
        assert nest.array("A2").support == (0, 1)
        assert nest.array("A3").support == (2,)

    def test_contraction_needs_loops(self):
        with pytest.raises(ValueError):
            tensor_contraction((), (), ())

    def test_nbody_structure(self):
        nb = nbody(4, 5)
        assert nb.array("F").is_output
        assert nb.array("F").support == (0,)
        assert nb.array("Q").support == (1,)

    def test_mttkrp_structure(self):
        m = mttkrp(2, 3, 4, 5)
        assert m.array("T").support == (0, 1, 2)
        assert m.array("A").support == (0, 3)
