"""Closed forms of §6 vs the general LP machinery."""

from fractions import Fraction as F

import pytest

from repro.core.bounds import communication_lower_bound, tile_exponent
from repro.core.closed_forms import (
    contraction_tile_exponent,
    matmul_comm_lower_bound,
    matmul_optimal_blocks,
    matmul_tile_exponent,
    nbody_comm_lower_bound,
    nbody_max_tile_size,
)
from repro.library.problems import matmul, nbody, tensor_contraction


MATMUL_SWEEP = [
    (2**10, 2**10, 2**10),
    (2**10, 2**10, 2**8),
    (2**10, 2**10, 2**4),
    (2**10, 2**4, 2**4),
    (2**4, 2**4, 2**4),
    (2**10, 2**10, 1),
    (2**12, 2**2, 2**7),
]


class TestMatmul:
    M = 2**16

    @pytest.mark.parametrize("dims", MATMUL_SWEEP)
    def test_exponent_matches_lp(self, dims):
        assert matmul_tile_exponent(*dims, self.M) == tile_exponent(matmul(*dims), self.M)

    @pytest.mark.parametrize("dims", MATMUL_SWEEP)
    def test_comm_matches_general_bound(self, dims):
        closed = matmul_comm_lower_bound(*dims, self.M)
        general = communication_lower_bound(matmul(*dims), self.M).hbl_words
        # The closed form takes the max with the array-size terms, which
        # the general machinery produces through the same exponent.
        assert general == pytest.approx(closed, rel=1e-9)

    def test_blocks_large(self):
        assert matmul_optimal_blocks(2**10, 2**10, 2**10, 2**16) == (256.0, 256.0, 256.0)

    def test_blocks_small_l3(self):
        b = matmul_optimal_blocks(2**10, 2**10, 2**4, 2**16)
        assert b[2] == 16.0
        assert max(b) == 2**16 / 16  # M / L3

    def test_matvec_bound_is_matrix_size(self):
        # §6.1: L3=1 -> comm = L1 L2.
        assert matmul_comm_lower_bound(2**10, 2**10, 1, 2**16) == float(2**20)


class TestContraction:
    M = 2**16

    @pytest.mark.parametrize(
        "groups",
        [
            ((2**5, 2**5), (2**5,), (2**5, 2**5)),
            ((2**8,), (2**2,), (2**8,)),
            ((2**2, 2**2), (2**8,), (2**2,)),
            ((2**10,), (2**10,), (2**2,)),
        ],
    )
    def test_gamma_reduction_matches_lp(self, groups):
        left, shared, right = groups
        nest = tensor_contraction(left, shared, right)
        assert contraction_tile_exponent(left, shared, right, self.M) == tile_exponent(
            nest, self.M
        )

    def test_paper_statement_form(self):
        # §6.2: optimum is min(3/2, 1 + min(group beta sums)) when a
        # single group is small.
        left, shared, right = (2**10,), (2**10,), (2**4,)
        k = contraction_tile_exponent(left, shared, right, self.M)
        assert k == 1 + F(4, 16)


class TestNbody:
    def test_tile_size_cases(self):
        M = 2**8
        assert nbody_max_tile_size(2**10, 2**10, M) == M * M  # both large
        assert nbody_max_tile_size(2**4, 2**10, M) == 2**4 * M  # L1 small
        assert nbody_max_tile_size(2**10, 2**4, M) == 2**4 * M  # L2 small
        assert nbody_max_tile_size(2**3, 2**4, M) == 2**7  # everything fits

    def test_tile_size_matches_lp(self):
        M = 2**8
        for dims in [(2**10, 2**10), (2**4, 2**10), (2**3, 2**4)]:
            nest = nbody(*dims)
            k = tile_exponent(nest, M)
            from repro.util.rationals import pow_fraction

            assert pow_fraction(M, k) == float(nbody_max_tile_size(*dims, M))

    def test_comm_cases(self):
        M = 2**8
        # Both large: (L1 L2 / M^2) tiles, M words each -> L1 L2 / M.
        assert nbody_comm_lower_bound(2**10, 2**10, M) == 2**20 / M
        # L1 small: tile = L1*M, (L2/M) tiles -> comm = L2 words.
        assert nbody_comm_lower_bound(2**4, 2**10, M) == float(2**10)
        # Fits in cache: formula says M words (the §6.3 caveat).
        assert nbody_comm_lower_bound(2**3, 2**4, M) == float(M)

    def test_comm_matches_general_machinery(self):
        M = 2**8
        for dims in [(2**10, 2**10), (2**4, 2**10), (2**3, 2**4), (2**6, 2**2)]:
            lb = communication_lower_bound(nbody(*dims), M)
            assert lb.hbl_words == pytest.approx(
                nbody_comm_lower_bound(*dims, M), rel=1e-12
            ), dims

    def test_caveat_flagged_by_general_machinery(self):
        lb = communication_lower_bound(nbody(2**3, 2**4), 2**8)
        assert lb.fits_in_cache()
        assert lb.value == lb.footprint_words < 2**8
