"""Chaos suite: every injected fault must degrade gracefully.

Arms each fault from :mod:`repro.util.faults` against the layer that
hosts its injection point and asserts the failure-hardening contract:

* no request ever hangs, crashes the process, or surfaces a raw
  traceback — every surface answers with a structured envelope;
* degraded runs still return *correct* answers (identical payloads to a
  clean run), flagged via ``meta.degraded``;
* fault-free behaviour is untouched (the golden-payload suites in
  ``test_serve.py`` / ``test_cli.py`` pin that side).
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api import SCHEMA_VERSION, Session, TuneRequest
from repro.library.problems import catalog, matmul
from repro.machine import native
from repro.machine.native import NativeKernelError
from repro.machine.stackdist import (
    _distances_native,
    previous_occurrences,
    stack_distances,
)
from repro.serve import make_server
from repro.tune.evaluate import evaluate_candidates
from repro.util import faults
from repro.util.deadline import (
    Deadline,
    DeadlineExceeded,
    checkpoint,
    current_deadline,
    deadline_scope,
)

CATALOG = catalog()


def _probe(x):
    return x + 1


def _pools_available() -> bool:
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(_probe, 1).result(timeout=60) == 2
    except Exception:
        return False


_POOLS_OK: bool | None = None


def _require_pool() -> None:
    """Skip when no usable process pool exists.

    Probed once, lazily: creating a ProcessPoolExecutor at import time
    deadlocks pytest's collection phase, so the probe must run inside a
    test body.
    """
    global _POOLS_OK
    if _POOLS_OK is None:
        _POOLS_OK = _pools_available()
    if not _POOLS_OK:
        pytest.skip("no usable process pool in this sandbox")


@pytest.fixture(autouse=True)
def _pristine_native():
    """Injected native faults demote the kernel for the whole process;
    undo that after every test so later suites see the real kernel."""
    yield
    native.reset()


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    yield
    assert not faults.any_active(), "a test leaked an armed fault"


# ---------------------------------------------------------------------------
# The fault harness itself


class TestFaultHarness:
    def test_catalogue_is_closed(self):
        with pytest.raises(ValueError, match="unknown fault"):
            with faults.inject("no-such-fault"):
                pass

    def test_inject_is_scoped_and_nests(self):
        assert not faults.active("slow-lp")
        with faults.inject("slow-lp"):
            assert faults.active("slow-lp")
            assert faults.any_active()
            with faults.inject("slow-lp"):
                assert faults.active("slow-lp")
            # inner exit must not disarm the outer scope
            assert faults.active("slow-lp")
        assert not faults.active("slow-lp")
        assert not faults.any_active()

    def test_env_publication_merges_and_restores(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "slow-lp")
        with faults.inject("worker-crash", env=True):
            armed = set(os.environ[faults.ENV_VAR].split(","))
            assert armed == {"slow-lp", "worker-crash"}
            # env-armed faults are visible without a local inject
            assert faults.active("slow-lp")
        assert os.environ[faults.ENV_VAR] == "slow-lp"

    def test_injected_fault_names_its_point(self):
        exc = faults.InjectedFault("native-kernel")
        assert exc.point == "native-kernel"
        assert "native-kernel" in str(exc)


# ---------------------------------------------------------------------------
# Deadline primitives


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_checkpoint_raises_after_expiry(self):
        with deadline_scope(0.01):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceeded) as err:
                checkpoint("unit-test")
        assert err.value.where == "unit-test"
        assert err.value.budget_ms == 0.01
        assert "unit-test" in str(err.value)

    def test_scope_none_is_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None
            checkpoint("anywhere")  # must never raise

    def test_scope_restores_ambient(self):
        assert current_deadline() is None
        with deadline_scope(60_000) as deadline:
            assert current_deadline() is deadline
            assert deadline.remaining_ms() > 0
            checkpoint("plenty-left")  # a fresh generous budget never fires
        assert current_deadline() is None


# ---------------------------------------------------------------------------
# Session-level degradation


class TestSessionChaos:
    def test_deadline_expires_mid_simplex(self):
        session = Session()  # fresh planner: the solve is cold
        with faults.inject("slow-lp"):
            result = session.analyze(CATALOG["matmul"], 4096, deadline_ms=1)
        assert not result.ok
        assert result.kind == "error"
        assert result.payload["status"] == 504
        detail = result.payload["detail"]
        assert detail["reason"] == "deadline_exceeded"
        assert detail["deadline_ms"] == 1
        assert detail["where"]  # names the checkpoint that noticed

    def test_batch_deadline_maps_every_request(self):
        session = Session()
        reqs = [(CATALOG["matmul"], 1024), (CATALOG["nbody"], 1024)]
        with faults.inject("slow-lp"):
            results = session.batch(reqs, workers=0, deadline_ms=1)
        assert len(results) == len(reqs)
        assert all(not r.ok for r in results)
        assert all(
            r.payload["detail"]["reason"] == "deadline_exceeded" for r in results
        )

    def test_generous_deadline_leaves_payload_untouched(self):
        baseline = Session().analyze(CATALOG["matmul"], 1024)
        deadlined = Session().analyze(CATALOG["matmul"], 1024, deadline_ms=600_000)
        assert deadlined.ok
        assert deadlined.payload == baseline.payload

    def test_corrupt_cache_at_session_start(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text('{"version": 1, "entries": {"garbage": 12}}')
        session = Session(plan_cache=path)  # must not raise
        assert (tmp_path / "plans.json.corrupt").exists()
        result = session.analyze(CATALOG["matmul"], 1024)
        assert result.ok
        assert result.payload == Session().analyze(CATALOG["matmul"], 1024).payload

    def test_injected_corrupt_cache_read(self, tmp_path):
        path = tmp_path / "plans.json"
        good = Session(plan_cache=path)
        good.analyze(CATALOG["matmul"], 1024)
        good.planner.save()
        with faults.inject("corrupt-cache-read"):
            session = Session(plan_cache=path)
        assert session.planner.cached_keys() == []
        assert (tmp_path / "plans.json.corrupt").exists()
        assert session.analyze(CATALOG["matmul"], 1024).ok

    def test_worker_crash_mid_batch_degrades_gracefully(self):
        _require_pool()
        reqs = [(CATALOG["matmul"], 1024), (CATALOG["nbody"], 1024)]
        clean = Session().batch(reqs, workers=0)
        session = Session()
        with faults.inject("worker-crash", env=True):
            results = session.batch(reqs, workers=2)
        assert all(r.ok for r in results)
        assert all(r.meta.get("degraded") is True for r in results)
        assert all(
            "plan-pool-crash" in r.meta.get("degraded_reasons", ())
            for r in results
        )
        assert [r.payload for r in results] == [r.payload for r in clean]

    def test_clean_batch_meta_has_no_degraded_flag(self):
        _require_pool()
        results = Session().batch(
            [(CATALOG["matmul"], 1024), (CATALOG["nbody"], 1024)], workers=2
        )
        assert all(r.ok for r in results)
        assert all("degraded" not in r.meta for r in results)


# ---------------------------------------------------------------------------
# Worker crash in the tuning pool


class TestTuneChaos:
    def test_worker_crash_mid_evaluation_keeps_answers(self):
        _require_pool()
        nest = matmul(8, 8, 8)
        # 12 candidates >= MIN_PARALLEL_CANDIDATES, so the pool engages.
        candidates = [(i, j, 8) for i in (1, 2, 4, 8) for j in (1, 2, 4)]
        clean = evaluate_candidates(nest, candidates, [64], workers=0)
        events = {}
        with faults.inject("worker-crash", env=True):
            crashed = evaluate_candidates(
                nest, candidates, [64], workers=2, events=events
            )
        assert events.get("degraded") is True
        assert "tune-pool-crash" in events["degraded_reasons"]
        assert [e.to_json() for e in crashed] == [e.to_json() for e in clean]

    def test_worker_crash_mid_tune_same_payload(self):
        _require_pool()
        request = TuneRequest(nest=matmul(16, 16, 16), cache_words=128,
                              max_evaluations=24)
        clean = Session().tune(request, workers=0)
        session = Session()
        with faults.inject("worker-crash", env=True):
            result = session.tune(request, workers=2)
        assert result.ok
        assert result.payload == clean.payload
        if "degraded" in result.meta:  # pool engaged: reason must be precise
            assert result.meta["degraded_reasons"] == ["tune-pool-crash"]

    def test_deadline_expires_mid_tune(self):
        request = TuneRequest(nest=matmul(16, 16, 16), cache_words=128,
                              max_evaluations=24)
        session = Session()
        with faults.inject("slow-lp"):
            result = session.tune(request, workers=0, deadline_ms=1)
        assert not result.ok
        assert result.payload["status"] == 504
        assert result.payload["detail"]["reason"] == "deadline_exceeded"


# ---------------------------------------------------------------------------
# Native-kernel degradation


class TestNativeChaos:
    def test_mark_unavailable_is_sticky_and_warns_once(self):
        native.reset()
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            native.mark_unavailable("chaos-test reason")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail
            native.mark_unavailable("another reason")
        assert native.get_kernel() is None
        assert not native.native_available()

    def test_injected_fault_demotes_get_kernel(self):
        native.reset()
        with faults.inject("native-kernel"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert native.get_kernel() is None

    def test_midrun_kernel_failure_retries_on_numpy(self):
        kernel = native.get_kernel()
        if kernel is None:
            pytest.skip("native kernel unavailable in this environment")
        lines = np.array([0, 1, 0, 2, 1, 0, 3, 2], dtype=np.int64)
        expected, _ = stack_distances(lines, use_native=False)
        prev, _ = previous_occurrences(lines)
        with faults.inject("native-kernel"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                # the raw native pass surfaces the typed error...
                with pytest.raises(NativeKernelError):
                    _distances_native(prev, kernel)
                # ...and the public entry point degrades to the exact
                # numpy answer instead of propagating it.
                got, _ = stack_distances(lines)
        assert np.array_equal(got, expected)

    def test_native_fault_mid_tune_same_payload(self):
        request = TuneRequest(nest=matmul(12, 12, 12), cache_words=96,
                              max_evaluations=8)
        clean = Session().tune(request, workers=0)
        native.reset()
        with faults.inject("native-kernel"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                faulty = Session().tune(request, workers=0)
        assert faulty.ok
        assert faulty.payload == clean.payload


# ---------------------------------------------------------------------------
# HTTP surface: admission control, deadlines, structured 5xx


def _post(base: str, path: str, blob) -> tuple[int, dict, dict]:
    data = blob if isinstance(blob, bytes) else json.dumps(blob).encode()
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc), dict(exc.headers)


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path, timeout=10) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


@pytest.fixture()
def service():
    """A per-test server with a tiny in-flight limit (and fresh Session)."""
    server = make_server(port=0, session=Session(), max_inflight=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


ANALYZE = {"problem": "matmul", "sizes": [16, 16, 16], "cache_words": 64}


def _assert_error_envelope(body: dict, status: int) -> dict:
    assert body["schema_version"] == SCHEMA_VERSION
    assert body["kind"] == "error"
    assert body["payload"]["status"] == status
    return body["payload"]


class TestServeBackpressure:
    def test_saturated_server_sheds_with_429(self, service):
        server, base = service
        assert server.try_acquire() and server.try_acquire()  # fill both slots
        try:
            status, body, headers = _post(base, "/v1/analyze", ANALYZE)
            assert status == 429
            payload = _assert_error_envelope(body, 429)
            assert payload["detail"] == {"reason": "overloaded", "max_inflight": 2}
            assert headers.get("Retry-After") == "1"
        finally:
            server.release()
            server.release()
        # capacity back: the same request now succeeds
        status, body, _ = _post(base, "/v1/analyze", ANALYZE)
        assert status == 200 and body["kind"] == "analyze"

    def test_draining_server_sheds_with_503_but_health_stays(self, service):
        server, base = service
        server.drain()
        status, body, headers = _post(base, "/v1/analyze", ANALYZE)
        assert status == 503
        payload = _assert_error_envelope(body, 503)
        assert payload["detail"] == {"reason": "draining"}
        assert headers.get("Retry-After") == "5"
        # probes bypass admission control in both methods
        status, body = _get(base, "/v1/health")
        assert status == 200 and body["payload"]["status"] == "ok"
        status, body, _ = _post(base, "/v1/health", {})
        assert status == 200 and body["payload"]["status"] == "ok"

    def test_make_server_validates_knobs(self):
        with pytest.raises(ValueError):
            make_server(max_inflight=0, session=Session())
        with pytest.raises(ValueError):
            make_server(default_deadline_ms=0, session=Session())


class TestServeDeadlines:
    def test_client_deadline_maps_to_504(self, service):
        _, base = service
        with faults.inject("slow-lp"):
            status, body, _ = _post(
                base, "/v1/analyze", {**ANALYZE, "deadline_ms": 1}
            )
        assert status == 504
        payload = _assert_error_envelope(body, 504)
        assert payload["detail"]["reason"] == "deadline_exceeded"
        assert payload["detail"]["deadline_ms"] == 1

    def test_batch_deadline_is_one_unit(self, service):
        _, base = service
        requests = [
            {"problem": "matmul", "sizes": [16, 16, 16], "cache_words": 64},
            {"problem": "nbody", "sizes": [32, 32], "cache_words": 64},
        ]
        with faults.inject("slow-lp"):
            status, body, _ = _post(
                base, "/v1/batch", {"requests": requests, "deadline_ms": 1}
            )
        assert status == 504
        payload = _assert_error_envelope(body, 504)
        assert payload["detail"]["reason"] == "deadline_exceeded"

    def test_server_default_deadline_applies(self):
        server = make_server(port=0, session=Session(), default_deadline_ms=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with faults.inject("slow-lp"):
                status, body, _ = _post(base, "/v1/analyze", ANALYZE)
            assert status == 504
            assert body["payload"]["detail"]["reason"] == "deadline_exceeded"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    @pytest.mark.parametrize("bad", [0, -1, "soon", True, [1]])
    def test_deadline_ms_is_validated(self, service, bad):
        _, base = service
        status, body, _ = _post(
            base, "/v1/analyze", {**ANALYZE, "deadline_ms": bad}
        )
        assert status == 400
        payload = _assert_error_envelope(body, 400)
        assert "deadline_ms" in payload["error"]


class TestServeStructured500:
    def test_internal_error_yields_envelope_with_id(self, service, monkeypatch, caplog):
        _, base = service

        def boom(self, *args, **kwargs):
            raise RuntimeError("secret internal detail")

        monkeypatch.setattr(Session, "analyze", boom)
        with caplog.at_level("ERROR", logger="repro.serve"):
            status, body, _ = _post(base, "/v1/analyze", ANALYZE)
        assert status == 500
        payload = _assert_error_envelope(body, 500)
        detail = payload["detail"]
        assert detail["reason"] == "internal"
        assert detail["exception"] == "RuntimeError"
        error_id = detail["error_id"]
        assert len(error_id) == 12 and error_id == error_id.lower()
        # the body never leaks internals...
        text = json.dumps(body)
        assert "secret internal detail" not in text
        assert "Traceback" not in text
        # ...the log carries both the id and the full traceback
        assert error_id in caplog.text
        assert "Traceback" in caplog.text
        assert "secret internal detail" in caplog.text

    def test_unhandled_injected_fault_is_labelled(self, service, monkeypatch):
        _, base = service

        def boom(self, *args, **kwargs):
            raise faults.InjectedFault("corrupt-cache-read")

        monkeypatch.setattr(Session, "analyze", boom)
        status, body, _ = _post(base, "/v1/analyze", ANALYZE)
        assert status == 500
        payload = _assert_error_envelope(body, 500)
        assert payload["detail"] == {
            "reason": "injected-fault", "point": "corrupt-cache-read",
        }
