"""Tests for the ``repro.api`` façade: requests, results, sessions.

Covers the schema-v1 contract — every request and result type
round-trips losslessly through JSON (Fractions as exact ``"p/q"``
strings, property-tested) — and the session semantics: warm repeats hit
the plan cache, ``repro.analyze`` routes through the default session,
and the deprecated flat helpers still work but warn.
"""

import doctest
import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.api
from repro.api import (
    AnalyzeRequest,
    DistributedRequest,
    RequestError,
    Result,
    Session,
    SimulateRequest,
    SweepRequest,
)
from repro.api.wire import json_safe, nest_from_json
from repro.core.bounds import communication_lower_bound
from repro.core.duality import theorem3_certificate
from repro.core.tiling import solve_tiling
from repro.core.verify import verify_analysis
from repro.library.problems import catalog, matmul, mttkrp, nbody
from repro.plan import Planner, PlanRequest

SETTINGS = settings(max_examples=25, deadline=None)


# -- wire vocabulary ----------------------------------------------------------


class TestWire:
    def test_json_safe_normalises(self):
        blob = json_safe({"f": Fraction(5, 4), "t": (1, 2), "n": [Fraction(-1, 3)]})
        assert blob == {"f": "5/4", "t": [1, 2], "n": ["-1/3"]}
        assert json.loads(json.dumps(blob)) == blob

    def test_json_safe_rejects_unknown(self):
        with pytest.raises(TypeError):
            json_safe({"x": object()})

    def test_nest_from_json_spellings(self):
        inline = nest_from_json({"nest": matmul(4, 5, 6).to_json()})
        prob = nest_from_json({"problem": "matmul", "sizes": [4, 5, 6]})
        stmt = nest_from_json(
            {"statement": "C[x1,x3] += A[x1,x2] * B[x2,x3]",
             "bounds": {"x1": 4, "x2": 5, "x3": 6}}
        )
        assert inline.bounds == prob.bounds == (4, 5, 6)
        # parse_nest orders loops by first appearance (x1, x3, x2).
        assert dict(zip(stmt.loops, stmt.bounds)) == {"x1": 4, "x2": 5, "x3": 6}

    @pytest.mark.parametrize(
        "blob",
        [
            {},
            {"problem": "nope"},
            {"statement": "C[i] += A[i]"},
            {"nest": {"loops": ["i"]}},
            "not-an-object",
        ],
    )
    def test_nest_from_json_rejects(self, blob):
        with pytest.raises(RequestError):
            nest_from_json(blob)


# -- the Result envelope ------------------------------------------------------


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.fractions(),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=6), json_scalars, max_size=3),
    ),
    max_size=6,
)


class TestResult:
    @SETTINGS
    @given(payload=payloads, kind=st.sampled_from(["analyze", "simulate", "health"]))
    def test_roundtrip_exact_property(self, payload, kind):
        result = Result(kind=kind, payload=payload, meta={"elapsed_ms": 0.5})
        assert Result.from_json(result.to_json()) == result
        assert Result.from_json(result.to_json_str()) == result
        # ... and through an actual serialized wire hop.
        assert Result.from_json(json.loads(json.dumps(result.to_json()))) == result

    def test_fractions_survive_exactly(self):
        result = Result(kind="analyze", payload={"k_hat": Fraction(10**40, 3)})
        back = Result.from_json(result.to_json())
        assert back.fraction("k_hat") == Fraction(10**40, 3)

    def test_version_gate(self):
        blob = Result(kind="health", payload={}).to_json()
        blob["schema_version"] = 99
        with pytest.raises(RequestError):
            Result.from_json(blob)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError):
            Result(kind="mystery", payload={})

    def test_error_envelope(self):
        err = Result.error("bad request", status=400, detail={"field": "cache_words"})
        assert not err.ok
        assert err.payload == {
            "error": "bad request", "status": 400, "detail": {"field": "cache_words"}
        }

    def test_detail_excluded_from_wire_and_eq(self):
        a = Result(kind="analyze", payload={"x": 1}, detail=object())
        b = Result.from_json(a.to_json())
        assert a == b and b.detail is None


# -- request schema round trips ----------------------------------------------


bounds_st = st.integers(min_value=1, max_value=500)
cache_st = st.sampled_from([4, 64, 1024, 2**14])


class TestRequestRoundTrips:
    @SETTINGS
    @given(b1=bounds_st, b2=bounds_st, b3=bounds_st, m=cache_st,
           budget=st.sampled_from(["per-array", "aggregate"]), cert=st.booleans())
    def test_analyze_request_property(self, b1, b2, b3, m, budget, cert):
        req = AnalyzeRequest(
            nest=matmul(b1, b2, b3), cache_words=m, budget=budget, certificate=cert
        )
        assert AnalyzeRequest.from_json(json.loads(json.dumps(req.to_json()))) == req

    def test_simulate_request_roundtrip(self):
        req = SimulateRequest(
            nest=nbody(32, 48), cache_words=64, tile=(8, 16), line_words=2, policy="belady"
        )
        assert SimulateRequest.from_json(json.loads(json.dumps(req.to_json()))) == req

    def test_sweep_request_roundtrip_both_forms(self):
        by_problem = SweepRequest(
            problem="matmul", size_axes=((64, 128), (64,), (8,)), cache_sizes=(256, 1024)
        )
        by_statement = SweepRequest(
            statement="F[i] += P[i] * Q[j]",
            bound_axes=(("i", (16, 64)), ("j", (32,))),
            cache_sizes=(64,),
        )
        for req in (by_problem, by_statement):
            assert SweepRequest.from_json(json.loads(json.dumps(req.to_json()))) == req

    def test_distributed_request_roundtrip(self):
        req = DistributedRequest(nest=matmul(64, 64, 64), processors=8, memory_words=512)
        assert DistributedRequest.from_json(json.loads(json.dumps(req.to_json()))) == req

    def test_sweep_expansion_order(self):
        req = SweepRequest(
            problem="matmul", size_axes=((8, 16), (8,), (4,)), cache_sizes=(16, 64)
        )
        grid = req.expand()
        assert [(r.nest.bounds[0], r.cache_words) for r in grid] == [
            (8, 16), (8, 64), (16, 16), (16, 64)
        ]

    @pytest.mark.parametrize(
        "make",
        [
            lambda: AnalyzeRequest(nest=matmul(4, 4, 4), cache_words=1).validate(),
            lambda: AnalyzeRequest(nest=matmul(4, 4, 4), cache_words=2,
                                   budget="nope").validate(),
            lambda: SimulateRequest(nest=nbody(8, 8), cache_words=4,
                                    tile=(9, 1)).validate(),
            lambda: SimulateRequest(nest=nbody(8, 8), cache_words=4,
                                    policy="mru").validate(),
            lambda: SweepRequest(cache_sizes=(64,)).validate(),
            lambda: SweepRequest(problem="matmul", statement="x",
                                 cache_sizes=(64,)).validate(),
            lambda: DistributedRequest(nest=matmul(4, 4, 4), processors=0,
                                       memory_words=64).validate(),
        ],
    )
    def test_validation_rejects(self, make):
        with pytest.raises(RequestError):
            make()


# -- the lossless TilePlan / PlanRequest satellites ---------------------------


class TestPlanRoundTrips:
    @SETTINGS
    @given(b1=bounds_st, b2=bounds_st, b3=bounds_st, r=st.sampled_from([3, 7, 32]),
           m=cache_st, budget=st.sampled_from(["per-array", "aggregate"]))
    def test_tileplan_roundtrip_property(self, b1, b2, b3, r, m, budget):
        planner = _SHARED_PLANNER
        plan = planner.plan(mttkrp(b1, b2, b3, r), m, budget)
        blob = json.loads(json.dumps(plan.to_json()))
        back = repro.TilePlan.from_json(blob)
        assert back == plan
        assert back.exponent == plan.exponent  # exact Fractions, not floats

    def test_analyze_payload_reconstructs_tileplan(self):
        # Result payloads move cache_hit into meta; from_json still works.
        result = Session().analyze(matmul(40, 50, 60), cache_words=256)
        back = repro.TilePlan.from_json(result.payload)
        assert back.exponent == result.fraction("k_hat")
        assert back.cache_hit is False

    def test_tileplan_roundtrip_without_bound(self):
        plan = Planner().plan(matmul(40, 50, 60), 128, include_bound=False)
        assert plan.lower_bound is None
        back = repro.TilePlan.from_json(json.loads(json.dumps(plan.to_json())))
        assert back == plan

    @SETTINGS
    @given(b1=bounds_st, b2=bounds_st, m=cache_st)
    def test_plan_request_roundtrip_property(self, b1, b2, m):
        req = PlanRequest(nest=nbody(b1, b2), cache_words=m, budget="aggregate")
        assert PlanRequest.from_json(json.loads(json.dumps(req.to_json()))) == req

    def test_nest_json_rejects_malformed(self):
        with pytest.raises(repro.LoopNestError):
            repro.LoopNest.from_json({"loops": ["i"], "bounds": [2]})


#: One planner for the property test above: hypothesis re-runs share the
#: mpLP structure solve instead of re-paying it per example.
_SHARED_PLANNER = Planner()


# -- Session semantics --------------------------------------------------------


class TestSession:
    def test_analyze_cold_then_warm(self):
        session = Session()
        first = session.analyze(matmul(64, 64, 8), cache_words=256)
        again = session.analyze(matmul(500, 12, 7), cache_words=2**12)
        assert first.cache_hit is False
        assert again.cache_hit is True
        assert first.kind == again.kind == "analyze"
        assert first.schema_version == 1
        assert first.elapsed_ms is not None and first.elapsed_ms >= 0

    def test_analyze_accepts_all_spellings(self):
        session = Session()
        nest = nbody(64, 64)
        results = [
            session.analyze(AnalyzeRequest(nest=nest, cache_words=64)),
            session.analyze(PlanRequest(nest=nest, cache_words=64)),
            session.analyze(nest, cache_words=64),
            session.analyze((nest, 64)),
        ]
        assert len({r.fraction("k_hat") for r in results}) == 1

    def test_analyze_matches_direct_solvers(self):
        session = Session()
        for name, nest in list(catalog().items())[:6]:
            result = session.analyze(nest, cache_words=2**10, certificate=True)
            direct = solve_tiling(nest, 2**10)
            bound = communication_lower_bound(nest, 2**10)
            assert result.fraction("k_hat") == direct.exponent, name
            assert result.fraction("lower_bound_k_hat") == bound.k_hat, name
            cert = result.payload["certificate"]
            assert cert["tight"] is True
            assert Fraction(cert["primal"]) == direct.exponent

    def test_batch_order_and_cache(self):
        session = Session()
        reqs = [
            AnalyzeRequest(nest=matmul(64, 64, 2**i), cache_words=1024) for i in range(6)
        ]
        results = session.batch(reqs, workers=0)
        assert [r.payload["bounds"][2] for r in results] == [2**i for i in range(6)]
        assert session.stats.structure_solves <= 2  # skinny + cubic shapes share

    def test_sweep_matches_expand(self):
        session = Session()
        sweep = SweepRequest(
            problem="nbody", size_axes=((32, 64), (32,)), cache_sizes=(64, 256)
        )
        results = session.sweep(sweep, workers=0)
        assert len(results) == len(sweep.expand()) == 4
        assert all(r.kind == "analyze" for r in results)

    def test_simulate_planned_vs_explicit(self):
        session = Session()
        planned = session.simulate(SimulateRequest(nest=nbody(96, 96), cache_words=64))
        explicit = session.simulate(
            SimulateRequest(nest=nbody(96, 96), cache_words=64,
                            tile=tuple(planned.payload["tile"]))
        )
        assert planned.payload["tile_planned"] is True
        assert explicit.payload["tile_planned"] is False
        assert planned.payload["total_words"] == explicit.payload["total_words"]
        assert planned.payload["total_words"] >= planned.payload["lower_bound_words"] * 0.5

    def test_simulate_session_line_words_default(self):
        nest = nbody(64, 64)
        by_session = Session(line_words=2).simulate(
            SimulateRequest(nest=nest, cache_words=64)
        )
        by_request = Session().simulate(
            SimulateRequest(nest=nest, cache_words=64, line_words=2)
        )
        assert by_session.payload["line_words"] == 2
        assert by_session.payload["total_words"] == by_request.payload["total_words"]

    def test_analyze_rejects_conflicting_overrides(self):
        session = Session()
        request = AnalyzeRequest(nest=matmul(8, 8, 8), cache_words=1024)
        with pytest.raises(RequestError, match="not both"):
            session.analyze(request, cache_words=512)
        with pytest.raises(RequestError, match="not both"):
            session.analyze(request, budget="aggregate")

    def test_certificate_payload_is_self_describing(self):
        result = Session().analyze(
            matmul(64, 64, 64), cache_words=256, budget="aggregate", certificate=True
        )
        cert = result.payload["certificate"]
        # Per-array certificate at the full cache, regardless of budget.
        assert cert["budget"] == "per-array" and cert["cache_words"] == 256
        assert cert["tight"] is True

    def test_simulate_engines_agree(self):
        nest = nbody(48, 48)
        req = SimulateRequest(nest=nest, cache_words=32)
        batched = Session(engine="batched").simulate(req)
        reference = Session(engine="reference").simulate(req)
        assert batched.payload["total_words"] == reference.payload["total_words"]
        assert batched.payload["per_array"] == reference.payload["per_array"]

    def test_distributed(self):
        session = Session()
        result = session.distributed(
            DistributedRequest(nest=matmul(128, 128, 128), processors=8, memory_words=1024)
        )
        assert result.kind == "distributed"
        assert result.payload["processors"] == 8
        assert result.payload["words_per_processor"] > 0
        assert Result.from_json(result.to_json()) == result

    def test_health(self):
        session = Session()
        session.analyze(matmul(16, 16, 16), cache_words=64)
        health = session.health()
        assert health.payload["status"] == "ok"
        assert health.payload["structures_cached"] == 1
        assert health.payload["version"] == repro.__version__

    def test_tiling_facade_exact_escape(self):
        session = Session()
        nest = matmul(100, 90, 7)
        cached = session.tiling(nest, 512, "aggregate")
        exact = session.tiling(nest, 512, "aggregate", exact=True)
        assert cached.exponent == exact.exponent
        assert cached.tile.is_feasible(512, "aggregate")

    def test_shared_planner(self):
        planner = Planner()
        a, b = Session(planner=planner), Session(planner=planner)
        a.analyze(matmul(32, 32, 32), cache_words=64)
        assert b.analyze(matmul(8, 64, 2), cache_words=256).cache_hit is True

    def test_invalid_session_args(self):
        with pytest.raises(ValueError):
            Session(engine="quantum")
        with pytest.raises(ValueError):
            Session(line_words=0)
        with pytest.raises(RequestError):
            Session().analyze(matmul(4, 4, 4))  # missing cache_words


class TestAnalysisBundleParity:
    """repro.analyze must stay byte-compatible with the pre-façade bundle."""

    @pytest.mark.parametrize("name", ["matmul", "nbody", "mttkrp", "pointwise_conv"])
    def test_bundle_matches_direct_path(self, name):
        nest = catalog()[name]
        analysis = repro.analyze(nest, cache_words=2**12)
        assert analysis.lower_bound.k_hat == solve_tiling(nest, 2**12).exponent
        assert analysis.tiling.exponent == analysis.lower_bound.k_hat
        assert analysis.certificate.tight
        direct_cert = theorem3_certificate(nest, 2**12)
        assert analysis.certificate.primal_value == direct_cert.primal_value
        assert analysis.certificate.dual_value == direct_cert.dual_value
        assert analysis.certificate.betas == direct_cert.betas
        assert verify_analysis(analysis) == []

    def test_default_session_caches_across_calls(self):
        repro.api.reset_default_session()
        try:
            nest = matmul(96, 96, 96)
            repro.analyze(nest, cache_words=2**10)
            stats = repro.default_session().stats
            solves_after_first = stats.structure_solves
            repro.analyze(matmul(33, 44, 55), cache_words=2**14)
            repro.analyze(nest, cache_words=2**8, budget="aggregate")
            assert stats.structure_solves == solves_after_first  # cache, not simplex
            assert stats.structure_hits >= 2
        finally:
            repro.api.reset_default_session()

    def test_degenerate_cache_unit_tile(self):
        # M=1 predates the planner's domain; the façade's tiling path
        # still answers it through the core solver's degenerate branch.
        sol = Session().tiling(nbody(4, 4), 1)
        assert sol.tile.blocks == (1, 1) and sol.exponent == 0


class TestPlannerCertificate:
    def test_matches_lp_certificate_across_catalog(self):
        planner = Planner()
        for name, nest in catalog().items():
            served = planner.certificate(nest, 2**10)
            direct = theorem3_certificate(nest, 2**10)
            assert served.tight and direct.tight, name
            assert served.primal_value == direct.primal_value, name
            assert served.betas == direct.betas, name
            # The served dual point is itself a valid weak-duality
            # certificate reaching the same objective.
            from repro.core.verify import check_dual_certificate

            check = check_dual_certificate(nest, served.betas, served.dual.zeta,
                                           served.dual.s)
            assert check.ok and check.certified_exponent == served.dual_value, name

    def test_certificate_requires_planning_domain(self):
        with pytest.raises(ValueError):
            Planner().certificate(matmul(4, 4, 4), 1)


class TestDeprecatedShims:
    def test_plan_batch_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="Session.batch"):
            plans = repro.plan_batch([(matmul(16, 16, 16), 64)], max_workers=0)
        assert plans[0].exponent == Fraction(3, 2)

    def test_sweep_requests_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="SweepRequest"):
            reqs = repro.sweep_requests(nbody, [(8, 16), (8,)], [64])
        assert len(reqs) == 2

    def test_engine_functions_do_not_warn(self):
        import warnings as w

        with w.catch_warnings():
            w.simplefilter("error", DeprecationWarning)
            repro.plan.plan_batch([(matmul(16, 16, 16), 64)], max_workers=0)
            repro.plan.sweep_requests(nbody, [(8,), (8,)], [64])


class TestDocstrings:
    """The quickstart doctests in the public entry points stay honest."""

    @pytest.mark.parametrize("module", [repro, repro.api], ids=["repro", "repro.api"])
    def test_quickstart_doctest(self, module):
        outcome = doctest.testmod(module, verbose=False)
        assert outcome.attempted > 0
        assert outcome.failed == 0
