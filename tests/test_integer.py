"""Tests for the stronger integer-tile searches (repro.core.integer)."""

import pytest

from repro.core.bruteforce import best_rectangle
from repro.core.integer import (
    best_integer_tile,
    coordinate_descent_tile,
    multi_seed_tile,
)
from repro.core.tiling import solve_tiling
from repro.library.problems import matmul, matvec, nbody, tensor_contraction


class TestCoordinateDescent:
    def test_grows_from_unit_seed(self):
        nest = matmul(20, 20, 20)
        tile = coordinate_descent_tile(nest, 25, seed=(1, 1, 1))
        assert tile.volume > 1
        assert tile.is_feasible(25, "per-array")

    def test_infeasible_seed_rejected(self):
        nest = matmul(20, 20, 20)
        with pytest.raises(ValueError, match="infeasible"):
            coordinate_descent_tile(nest, 4, seed=(20, 20, 20))

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            coordinate_descent_tile(matmul(4, 4, 4), 8, seed=(1, 1, 1), budget="x")

    def test_respects_explicit_orders(self):
        nest = matvec(100, 100)
        t1 = coordinate_descent_tile(nest, 50, seed=(1, 1), orders=[(0, 1)])
        t2 = coordinate_descent_tile(nest, 50, seed=(1, 1), orders=[(1, 0)])
        # Different growth orders may produce different (feasible) tiles;
        # each maximises greedily along its order.
        assert t1.is_feasible(50, "per-array")
        assert t2.is_feasible(50, "per-array")


class TestMultiSeed:
    @pytest.mark.parametrize("M", [5, 7, 11, 16, 37, 64])
    def test_never_worse_than_round_and_grow(self, M):
        for nest in [matmul(30, 30, 30), matvec(50, 50), nbody(40, 40)]:
            default = solve_tiling(nest, M).tile
            improved = multi_seed_tile(nest, M)
            assert improved.volume >= default.volume, (nest.name, M)
            assert improved.is_feasible(M, "per-array")

    def test_aggregate_budget(self):
        nest = matmul(30, 30, 30)
        tile = multi_seed_tile(nest, 48, budget="aggregate")
        assert tile.is_feasible(48, "aggregate")


class TestBestIntegerTile:
    @pytest.mark.parametrize("M", [3, 5, 8, 13, 21])
    def test_exhaustive_matches_bruteforce(self, M):
        for nest in [matmul(6, 6, 6), matvec(12, 12), nbody(10, 10)]:
            best = best_integer_tile(nest, M)
            oracle = best_rectangle(nest, M)
            assert best.volume == oracle.volume, (nest.name, M)

    def test_heuristic_path(self):
        # Force the non-exhaustive path on a large instance.
        nest = matmul(500, 500, 500)
        tile = best_integer_tile(nest, 1000, allow_exhaustive=False)
        default = solve_tiling(nest, 1000).tile
        assert tile.volume >= default.volume
        assert tile.is_feasible(1000, "per-array")

    def test_small_m_gain_over_floor(self):
        # At M = 10 the fractional optimum floors badly; the search must
        # recover the exhaustive optimum.
        nest = tensor_contraction((9,), (9,), (9,))
        best = best_integer_tile(nest, 10)
        oracle = best_rectangle(nest, 10)
        assert best.volume == oracle.volume


class TestNestedIntegerRepair:
    def test_single_level_matches_integer_repair(self):
        from repro.core.integer import nested_integer_repair
        from repro.core.tiling import integer_repair

        for nest, M, budget in [
            (matmul(24, 24, 6), 96, "aggregate"),
            (matmul(100, 100, 100), 1024, "per-array"),
            (nbody(50, 7), 32, "aggregate"),
            (tensor_contraction((8, 8), (8,), (8, 8)), 100, "per-array"),
        ]:
            fractional = solve_tiling(nest, M, budget=budget).fractional_blocks
            (nested,) = nested_integer_repair(nest, [fractional], [M], budget)
            assert nested.blocks == integer_repair(nest, fractional, M, budget).blocks

    def test_levels_stay_nested_and_feasible(self):
        from repro.core.integer import nested_integer_repair

        nest = matmul(40, 40, 12)
        capacities = (32, 33, 256, 4096)
        fractionals = [
            solve_tiling(nest, M, budget="aggregate").fractional_blocks
            for M in capacities
        ]
        tiles = nested_integer_repair(nest, fractionals, capacities, "aggregate")
        for inner, outer in zip(tiles, tiles[1:]):
            assert all(a <= b for a, b in zip(inner.blocks, outer.blocks))
        for tile, M in zip(tiles, capacities):
            assert tile.is_feasible(M, "aggregate")

    def test_floors_respected(self):
        from repro.core.integer import nested_integer_repair

        nest = matmul(16, 16, 16)
        (tile,) = nested_integer_repair(
            nest, [(1.0, 1.0, 1.0)], [4096], "per-array", floors=(5, 3, 2)
        )
        assert all(b >= f for b, f in zip(tile.blocks, (5, 3, 2)))
        assert tile.is_feasible(4096, "per-array")

    def test_non_nestable_fractional_still_nests(self):
        # Fractional optima that shrink a dimension between levels must
        # not un-nest the integer tiles: the floor wins.
        from repro.core.integer import nested_integer_repair

        nest = matmul(32, 32, 32)
        tiles = nested_integer_repair(
            nest, [(16.0, 2.0, 2.0), (2.0, 16.0, 2.0)], (128, 256), "aggregate"
        )
        assert all(a <= b for a, b in zip(tiles[0].blocks, tiles[1].blocks))

    def test_validation(self):
        from repro.core.integer import nested_integer_repair

        nest = matmul(8, 8, 8)
        with pytest.raises(ValueError, match="budget"):
            nested_integer_repair(nest, [(1.0,) * 3], [16], "bogus")
        with pytest.raises(ValueError, match="per capacity"):
            nested_integer_repair(nest, [(1.0,) * 3], [16, 64])
        with pytest.raises(ValueError, match="non-decreasing"):
            nested_integer_repair(nest, [(1.0,) * 3] * 2, [64, 16])
