"""Tests for the command-line front end and the analyze() bundle."""

import json
from pathlib import Path

import pytest

import repro
from repro.api import SCHEMA_VERSION
from repro.cli import build_serve_parser, main

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "analyze_payloads.json").read_text()
)


class TestAnalyze:
    def test_bundle_fields(self):
        nest = repro.parse_nest(
            "C[i,k] += A[i,j] * B[j,k]", bounds={"i": 1024, "j": 1024, "k": 16}
        )
        analysis = repro.analyze(nest, cache_words=2**16)
        assert analysis.certificate.tight
        assert analysis.lower_bound.k_hat == analysis.tiling.exponent
        assert analysis.tiling.tile.is_feasible(2**16, "per-array")
        text = analysis.summary()
        assert "k_hat" in text and "TIGHT" in text


class TestCLI:
    def test_statement_mode(self, capsys):
        rc = main(
            [
                "C[i,k] += A[i,j] * B[j,k]",
                "--bounds",
                "i=1024,j=1024,k=16",
                "-M",
                "65536",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "k_hat=5/4" in out
        assert "TIGHT" in out

    def test_problem_mode_with_sizes(self, capsys):
        rc = main(["--problem", "nbody", "--sizes", "4096,4096", "-M", "4096"])
        assert rc == 0
        assert "nbody" in capsys.readouterr().out

    def test_problem_mode_default_sizes(self, capsys):
        rc = main(["--problem", "matvec", "-M", "1024"])
        assert rc == 0

    def test_piecewise_flag(self, capsys):
        rc = main(
            ["--problem", "matmul", "--sizes", "64,64,64", "-M", "256", "--piecewise"]
        )
        assert rc == 0
        assert "min(" in capsys.readouterr().out

    def test_simulate_flag(self, capsys):
        rc = main(
            ["--problem", "matmul", "--sizes", "64,64,64", "-M", "1024",
             "--simulate", "--budget", "aggregate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated tiled traffic" in out
        assert "simulated naive traffic" in out

    def test_bad_statement(self, capsys):
        rc = main(["C[i] += A[i+1]", "--bounds", "i=4", "-M", "64"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_bounds_blob(self, capsys):
        rc = main(["C[i] += A[i]", "--bounds", "i:4", "-M", "64"])
        assert rc == 2

    def test_bad_sizes_arity(self, capsys):
        rc = main(["--problem", "matmul", "--sizes", "4,4", "-M", "64"])
        assert rc == 2

    def test_missing_inputs(self):
        with pytest.raises(SystemExit):
            main(["-M", "64"])

    def test_statement_requires_bounds(self):
        with pytest.raises(SystemExit):
            main(["C[i] += A[i]", "-M", "64"])


class TestBatchCLI:
    """The JSON-lines surface: every line is a schema-v1 Result envelope."""

    def _lines(self, capsys):
        return [json.loads(line) for line in capsys.readouterr().out.splitlines()]

    def test_batch_golden(self, capsys, tmp_path):
        requests = [
            {"problem": "matmul", "sizes": [64, 64, 64], "cache_words": 1024},
            {"problem": "nbody", "sizes": [4096, 4096], "cache_words": 4096,
             "budget": "aggregate"},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests))
        assert main(["--batch", str(path), "--workers", "0"]) == 0
        lines = self._lines(capsys)
        assert len(lines) == 2
        for line in lines:
            assert line["schema_version"] == SCHEMA_VERSION
            assert line["kind"] == "analyze"
            assert isinstance(line["meta"]["cache_hit"], bool)
        assert lines[0]["payload"] == GOLDEN["analyze_matmul"]
        assert lines[1]["payload"] == GOLDEN["analyze_nbody_aggregate"]

    def test_batch_unnamed_statements_get_indexed_names(self, capsys, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([
            {"statement": "F[i] += P[i] * Q[j]", "bounds": {"i": 8, "j": 8},
             "cache_words": 16},
            {"statement": "F[i] += P[i] * Q[j]", "bounds": {"i": 8, "j": 8},
             "cache_words": 32},
        ]))
        assert main(["--batch", str(path), "--workers", "0"]) == 0
        lines = self._lines(capsys)
        assert [ln["payload"]["name"] for ln in lines] == ["request0", "request1"]

    def test_malformed_plan_cache_is_quarantined_not_fatal(self, capsys, tmp_path):
        # Resilience contract: an unreadable cache is moved aside as
        # <name>.corrupt and the run proceeds from an empty cache.
        cache = tmp_path / "plans.json"
        cache.write_text(json.dumps({"version": 1, "entries": {"d1:0": {}}}))
        rc = main(["--problem", "matvec", "--sweep", "--sizes", "8,8", "-M", "16",
                   "--workers", "0", "--plan-cache", str(cache)])
        assert rc == 0
        assert self._lines(capsys)  # the sweep was served anyway
        assert (tmp_path / "plans.json.corrupt").exists()

    def test_serve_port_conflict_is_a_clean_error(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
            rc = main(["serve", "--port", str(port), "--quiet"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_batch_accepts_wrapped_object(self, capsys, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(
            {"requests": [{"problem": "matvec", "cache_words": 256}]}
        ))
        assert main(["--batch", str(path), "--workers", "0"]) == 0
        (line,) = self._lines(capsys)
        assert line["payload"]["name"] == "matvec"

    def test_batch_bad_request_file(self, capsys, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"problem": "matmul"}]))  # no cache_words
        assert main(["--batch", str(path)]) == 2
        assert "cache_words" in capsys.readouterr().err

    def test_sweep_grid_lines(self, capsys):
        rc = main(["--problem", "matmul", "--sizes", "64:128,64,8",
                   "-M", "256:1024", "--sweep", "--workers", "0"])
        assert rc == 0
        lines = self._lines(capsys)
        assert len(lines) == 4  # 2 sizes x 2 cache sizes, cache innermost
        assert [(ln["payload"]["bounds"][0], ln["payload"]["cache_words"])
                for ln in lines] == [(64, 256), (64, 1024), (128, 256), (128, 1024)]
        assert all(ln["schema_version"] == SCHEMA_VERSION for ln in lines)

    def test_sweep_statement_bounds_axes(self, capsys):
        rc = main(["F[i] += P[i] * Q[j]", "--bounds", "i=16:64,j=32",
                   "-M", "64", "--sweep", "--workers", "0"])
        assert rc == 0
        lines = self._lines(capsys)
        assert [ln["payload"]["bounds"] for ln in lines] == [[16, 32], [64, 32]]

    def test_plan_cache_persists(self, capsys, tmp_path):
        cache = tmp_path / "plans.json"
        rc = main(["--problem", "matmul", "--sizes", "32,32,32", "-M", "256",
                   "--sweep", "--workers", "0", "--plan-cache", str(cache)])
        assert rc == 0
        assert cache.exists()
        blob = json.loads(cache.read_text())
        assert "d3:0.1|0.2|1.2" in blob["entries"]

    def test_serve_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert (args.host, args.port, args.quiet) == ("127.0.0.1", 8787, False)
        args = build_serve_parser().parse_args(["--port", "0", "--quiet"])
        assert args.port == 0 and args.quiet
