"""Tests for the command-line front end and the analyze() bundle."""

import pytest

import repro
from repro.cli import main


class TestAnalyze:
    def test_bundle_fields(self):
        nest = repro.parse_nest(
            "C[i,k] += A[i,j] * B[j,k]", bounds={"i": 1024, "j": 1024, "k": 16}
        )
        analysis = repro.analyze(nest, cache_words=2**16)
        assert analysis.certificate.tight
        assert analysis.lower_bound.k_hat == analysis.tiling.exponent
        assert analysis.tiling.tile.is_feasible(2**16, "per-array")
        text = analysis.summary()
        assert "k_hat" in text and "TIGHT" in text


class TestCLI:
    def test_statement_mode(self, capsys):
        rc = main(
            [
                "C[i,k] += A[i,j] * B[j,k]",
                "--bounds",
                "i=1024,j=1024,k=16",
                "-M",
                "65536",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "k_hat=5/4" in out
        assert "TIGHT" in out

    def test_problem_mode_with_sizes(self, capsys):
        rc = main(["--problem", "nbody", "--sizes", "4096,4096", "-M", "4096"])
        assert rc == 0
        assert "nbody" in capsys.readouterr().out

    def test_problem_mode_default_sizes(self, capsys):
        rc = main(["--problem", "matvec", "-M", "1024"])
        assert rc == 0

    def test_piecewise_flag(self, capsys):
        rc = main(
            ["--problem", "matmul", "--sizes", "64,64,64", "-M", "256", "--piecewise"]
        )
        assert rc == 0
        assert "min(" in capsys.readouterr().out

    def test_simulate_flag(self, capsys):
        rc = main(
            ["--problem", "matmul", "--sizes", "64,64,64", "-M", "1024",
             "--simulate", "--budget", "aggregate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated tiled traffic" in out
        assert "simulated naive traffic" in out

    def test_bad_statement(self, capsys):
        rc = main(["C[i] += A[i+1]", "--bounds", "i=4", "-M", "64"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_bounds_blob(self, capsys):
        rc = main(["C[i] += A[i]", "--bounds", "i:4", "-M", "64"])
        assert rc == 2

    def test_bad_sizes_arity(self, capsys):
        rc = main(["--problem", "matmul", "--sizes", "4,4", "-M", "64"])
        assert rc == 2

    def test_missing_inputs(self):
        with pytest.raises(SystemExit):
            main(["-M", "64"])

    def test_statement_requires_bounds(self):
        with pytest.raises(SystemExit):
            main(["C[i] += A[i]", "-M", "64"])
