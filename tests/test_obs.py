"""Tests for :mod:`repro.obs`: registry, tracing, Prometheus rendering.

The registry tests pin the worker-delta protocol (snapshot/merge is
lossless for counts, even under thread contention); the trace tests pin
the ContextVar plumbing shared with the ambient deadline; the prom
tests pin the text-exposition grammar the soak re-parses; and the docs
test executes every example in ``docs/observability.md``.
"""

import doctest
import json
import threading
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    coerce_trace_id,
    current_trace,
    global_registry,
    merge_worker_delta,
    mint_trace_id,
    render_counters,
    render_registry,
    span,
    trace_scope,
)
from repro.obs import trace as obs_trace
from repro.util.deadline import checkpoint, deadline_scope


class TestRegistry:
    def test_counter_handles_are_cached_and_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", route="/v1/analyze")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("requests_total", route="/v1/analyze") is counter
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", route="/a", status="200")
        b = registry.counter("x_total", status="200", route="/a")
        assert a is b

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.histogram("thing")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.set(4)
        gauge.inc()
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_percentiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.555)
        # Rank 1.5 crosses the (0.01, 0.1] bucket half-way through it.
        assert hist.percentile(0.5) == pytest.approx(0.055)
        # Rank beyond the last bound reports the observed maximum.
        hist.observe(7.0)
        assert hist.percentile(1.0) == 7.0
        assert hist.max == 7.0
        with pytest.raises(ValueError):
            hist.percentile(0.0)

    def test_histogram_empty_and_bad_bounds(self):
        registry = MetricsRegistry()
        assert registry.histogram("empty").percentile(0.99) == 0.0
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 0.5))

    def test_snapshot_merge_is_lossless(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("solves_total").inc(2)
        parent.histogram("secs", buckets=(0.1, 1.0)).observe(0.05)
        worker.counter("solves_total").inc(3)
        for value in (0.5, 0.05, 9.0):
            worker.histogram("secs", buckets=(0.1, 1.0)).observe(value)
        # The snapshot survives the pool's JSON boundary verbatim.
        delta = json.loads(json.dumps(worker.snapshot()))
        parent.merge(delta)
        assert parent.counter("solves_total").value == 5
        merged = parent.histogram("secs", buckets=(0.1, 1.0))
        assert merged.count == 4
        assert sum(merged.bucket_counts) == 4
        assert merged.max == 9.0
        assert merged.sum == pytest.approx(0.05 + 0.5 + 0.05 + 9.0)

    def test_merge_rejects_mismatched_bounds(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("secs", buckets=(0.1, 1.0)).observe(0.5)
        worker.histogram("secs", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_threaded_observations_are_not_lost(self):
        registry = MetricsRegistry()
        hist = registry.histogram("contended", buckets=DEFAULT_LATENCY_BUCKETS)
        counter = registry.counter("contended_total")
        per_thread = 1000

        def work():
            for i in range(per_thread):
                hist.observe((i % 20) / 1000.0)
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * per_thread
        assert hist.count == 8 * per_thread
        assert sum(hist.bucket_counts) == 8 * per_thread

    def test_merge_worker_delta_counts_merges(self):
        registry = global_registry()
        merges = registry.counter("repro_worker_merges_total")
        before = merges.value
        worker = MetricsRegistry()
        worker.counter("repro_worker_structure_solves_total").inc()
        solves = registry.counter("repro_worker_structure_solves_total")
        solved_before = solves.value
        merge_worker_delta(worker.snapshot())
        merge_worker_delta(None)  # a no-delta worker is a no-op
        merge_worker_delta({})
        assert merges.value == before + 1
        assert solves.value == solved_before + 1

    def test_summary_derives_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("c_total", route="/x").inc(2)
        registry.gauge("g").set(7)
        hist = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5):
            hist.observe(value)
        summary = registry.summary()
        assert summary["counters"] == {"c_total{route=/x}": 2.0}
        assert summary["gauges"] == {"g": 7.0}
        entry = summary["histograms"]["h"]
        assert entry["count"] == 3
        assert entry["p50"] == pytest.approx(0.055)


class TestTrace:
    def test_mint_and_coerce(self):
        tid = mint_trace_id()
        assert len(tid) == 16 and int(tid, 16) >= 0
        assert coerce_trace_id(tid) == tid
        assert coerce_trace_id("client-id_1.2") == "client-id_1.2"
        assert coerce_trace_id("") is None
        assert coerce_trace_id("bad id with spaces") is None
        assert coerce_trace_id("x" * 65) is None
        assert coerce_trace_id(123) is None
        assert coerce_trace_id(None) is None

    def test_trace_scope_installs_and_clears(self):
        assert current_trace() is None
        with trace_scope("abc123") as trace:
            assert trace is current_trace()
            assert trace.trace_id == "abc123"
        assert current_trace() is None

    def test_nested_scope_reuses_the_ambient_trace(self):
        with trace_scope() as outer:
            with trace_scope() as inner:
                assert inner is outer

    def test_spans_nest_and_attribute_stages(self):
        with trace_scope() as trace:
            with span("outer"):
                with span("inner"):
                    pass
        assert set(trace.stages) == {"outer", "inner"}
        assert [s["name"] for s in trace.spans] == ["inner", "outer"]
        assert trace.spans[0]["depth"] == 1
        assert trace.spans[1]["depth"] == 0
        timings = trace.timings_ms()
        assert sorted(timings) == ["stages", "total_ms"]
        assert sorted(timings["stages"]) == ["inner", "outer"]
        assert len(trace.span_tree_lines()) == 2

    def test_deadline_checkpoints_double_as_ticks(self):
        with deadline_scope(10_000):
            with trace_scope() as trace:
                checkpoint("lp-pivot")
                checkpoint("lp-pivot")
                checkpoint("mplp-enumeration")
        assert trace.stage_counts["lp-pivot"] == 2
        assert trace.stage_counts["mplp-enumeration"] == 1
        assert trace.stages["lp-pivot"] >= 0.0

    def test_span_is_a_noop_without_a_trace(self):
        with span("nowhere"):
            pass  # must not raise, must not allocate a trace
        assert current_trace() is None

    def test_disabled_tracing_creates_nothing(self):
        obs_trace.set_enabled(False)
        try:
            with trace_scope() as trace:
                assert trace is None
                assert current_trace() is None
        finally:
            obs_trace.set_enabled(True)

    def test_finished_scope_harvests_stage_histograms(self):
        registry = global_registry()
        with trace_scope() as trace:
            with span("harvest-me"):
                pass
        assert trace.stages["harvest-me"] >= 0.0
        hist = registry.histogram("repro_stage_seconds", stage="harvest-me")
        assert hist.count >= 1

    def test_span_list_is_bounded(self):
        with trace_scope() as trace:
            for _ in range(obs_trace._MAX_SPANS + 50):
                with span("loop"):
                    pass
        assert len(trace.spans) == obs_trace._MAX_SPANS
        # ...but the stage totals stay exact past the cap.
        assert trace.stage_counts["loop"] == obs_trace._MAX_SPANS + 50


class TestPromRendering:
    def test_registry_renders_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", route="/v1/analyze", status="200").inc(3)
        registry.gauge("inflight").set(2)
        hist = registry.histogram("secs", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_registry(registry)
        lines = text.splitlines()
        assert "# TYPE req_total counter" in lines
        assert 'req_total{route="/v1/analyze",status="200"} 3' in lines
        assert "# TYPE inflight gauge" in lines
        assert "inflight 2" in lines
        assert "# TYPE secs histogram" in lines
        # Cumulative buckets, then +Inf == count, then sum/count.
        assert 'secs_bucket{le="0.1"} 1' in lines
        assert 'secs_bucket{le="1"} 2' in lines
        assert 'secs_bucket{le="+Inf"} 3' in lines
        assert "secs_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", what='a"b\\c\nd').inc()
        text = render_registry(registry)
        assert 'odd_total{what="a\\"b\\\\c\\nd"} 1' in text

    def test_render_counters_from_stat_dicts(self):
        text = render_counters(
            "repro_plan_cache_events_total", "event",
            {"hits": 4, "misses": 1}, "Planner events.",
        )
        lines = text.splitlines()
        assert lines[0] == "# HELP repro_plan_cache_events_total Planner events."
        assert lines[1] == "# TYPE repro_plan_cache_events_total counter"
        assert 'repro_plan_cache_events_total{event="hits"} 4' in lines
        assert 'repro_plan_cache_events_total{event="misses"} 1' in lines

    def test_content_type_pins_the_exposition_version(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_empty_registry_renders_empty(self):
        assert render_registry(MetricsRegistry()) == ""


class TestDocsExamples:
    """The executable examples in docs/observability.md stay honest."""

    def test_docs_observability_doctests(self):
        path = Path(__file__).parent.parent / "docs" / "observability.md"
        outcome = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        )
        assert outcome.attempted > 0
        assert outcome.failed == 0
