"""Tests for the tiling LP and integer tile repair (§5)."""

from fractions import Fraction as F
from math import prod

import pytest

from repro.core.tiling import TileShape, build_tiling_lp, integer_repair, solve_tiling
from repro.library.problems import (
    matmul,
    matvec,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
)


class TestTileShape:
    def test_volume_and_footprints(self):
        mm = matmul(8, 8, 8)
        t = TileShape(nest=mm, blocks=(2, 4, 8))
        assert t.volume == 64
        assert t.footprint(0) == 16  # C: b1*b3
        assert t.footprint(1) == 8  # A: b1*b2
        assert t.footprint(2) == 32  # B: b2*b3
        assert t.total_footprint() == 56

    def test_feasibility_budgets(self):
        mm = matmul(8, 8, 8)
        t = TileShape(nest=mm, blocks=(2, 4, 8))
        assert t.is_feasible(32, budget="per-array")
        assert not t.is_feasible(31, budget="per-array")
        assert t.is_feasible(56, budget="aggregate")
        assert not t.is_feasible(55, budget="aggregate")
        with pytest.raises(ValueError):
            t.is_feasible(32, budget="weird")

    def test_block_bounds_validation(self):
        mm = matmul(8, 8, 8)
        with pytest.raises(ValueError):
            TileShape(nest=mm, blocks=(0, 1, 1))
        with pytest.raises(ValueError):
            TileShape(nest=mm, blocks=(9, 1, 1))
        with pytest.raises(ValueError):
            TileShape(nest=mm, blocks=(1, 1))

    def test_grid(self):
        mm = matmul(10, 8, 8)
        t = TileShape(nest=mm, blocks=(3, 4, 8))
        assert t.grid_extents() == (4, 2, 1)
        assert t.num_tiles == 8


class TestTilingLP:
    M = 2**16

    def test_matmul_cube(self):
        sol = solve_tiling(matmul(2**10, 2**10, 2**10), self.M)
        assert sol.exponent == F(3, 2)
        assert sol.lambdas == (F(1, 2), F(1, 2), F(1, 2))
        assert sol.tile.blocks == (256, 256, 256)

    def test_matmul_small_l3_paper_tiles(self):
        # §6.1: for beta3 <= 1/2 the optimum is 1 + beta3 and both
        # (M/L3, L3, L3) and (sqrt M, sqrt M, L3) shapes attain it.
        nest = matmul(2**12, 2**12, 2**4)
        sol = solve_tiling(nest, self.M)
        assert sol.exponent == F(5, 4)
        t = sol.tile
        assert t.is_feasible(self.M, "per-array")
        # The integer tile attains the bound up to rounding: volume within
        # a factor 8 (=2^d) of M^(5/4).
        assert t.volume >= self.M ** 1.25 / 8

    def test_matvec_tile(self):
        nest = matvec(2**12, 2**12)
        sol = solve_tiling(nest, self.M)
        # k = 1: tile with b1*b2 <= M.
        assert sol.exponent == 1
        assert sol.tile.footprint(1) <= self.M

    def test_whole_problem_fits(self):
        nest = nbody(2**4, 2**4)
        sol = solve_tiling(nest, self.M)
        assert sol.tile.blocks == (16, 16)
        assert sol.tile.num_tiles == 1

    def test_blocks_never_exceed_bounds(self):
        for nest in [
            matmul(100, 3, 7),
            pointwise_conv(3, 5, 17, 9, 11),
            mttkrp(33, 5, 44, 7),
        ]:
            sol = solve_tiling(nest, 2**10)
            for b, L in zip(sol.tile.blocks, nest.bounds):
                assert 1 <= b <= L

    def test_integer_tile_always_feasible(self):
        for M in (7, 64, 1000, 2**14):
            for nest in [
                matmul(50, 60, 70),
                nbody(1000, 3),
                tensor_contraction((9, 9), (5,), (11,)),
            ]:
                sol = solve_tiling(nest, M)
                assert sol.tile.is_feasible(M, "per-array"), (nest.name, M)

    def test_aggregate_budget(self):
        nest = matmul(2**10, 2**10, 2**10)
        sol = solve_tiling(nest, self.M, budget="aggregate")
        assert sol.tile.total_footprint() <= self.M

    def test_grow_repair_beats_naive_floor(self):
        # With M = 10 and matmul, floors of M^lambda lose a lot; the
        # repair must recover a substantially larger feasible tile.
        nest = matmul(100, 100, 100)
        sol = solve_tiling(nest, 10)
        floored = prod(max(1, int(f)) for f in sol.fractional_blocks)
        assert sol.tile.volume >= floored

    def test_cache_of_one(self):
        sol = solve_tiling(matmul(4, 4, 4), 1)
        assert sol.tile.blocks == (1, 1, 1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            solve_tiling(matmul(4, 4, 4), 0)
        with pytest.raises(ValueError):
            solve_tiling(matmul(4, 4, 4), 16, budget="bogus")
        with pytest.raises(ValueError):
            build_tiling_lp(matmul(4, 4, 4), 16, betas=[1, 1])


class TestIntegerRepairClamp:
    """Regressions for the ``min(L, max(1, round(x)))`` clamp at skewed bounds."""

    def test_extent_above_bound_clamps_to_bound(self):
        # A loop bound smaller than the analytic tile extent must yield
        # the bound itself, never 0 and never above L.
        nest = matmul(4, 10_000, 3)
        tile = integer_repair(nest, [900.0, 2.5, 700.0], 10**6, "per-array")
        for b, L in zip(tile.blocks, nest.bounds):
            assert 1 <= b <= L
        assert tile.is_feasible(10**6, "per-array")

    def test_extent_below_one_clamps_to_unit(self):
        nest = nbody(7, 1)
        tile = integer_repair(nest, [0.3, 0.0001], 4, "per-array")
        assert all(b >= 1 for b in tile.blocks)
        assert tile.is_feasible(4, "per-array")

    def test_infeasible_fractional_input_is_repaired(self):
        # Defensive-caller path: garbage extents way over budget must
        # still come back feasible (shrink pre-pass), not crash.
        nest = matmul(64, 64, 64)
        tile = integer_repair(nest, [64.0, 64.0, 64.0], 32, "aggregate")
        assert tile.total_footprint() <= 32

    def test_round_up_overshoot_recovers(self):
        # Rounding 3.6 -> 4 per side busts the per-array budget (every
        # matmul footprint becomes 16 > 12); the shrink pre-pass must
        # kick in and the result still be feasible and no smaller than
        # the floored tile volume.
        nest = matmul(100, 100, 100)
        start = tuple(min(L, max(1, round(3.6))) for L in nest.bounds)
        assert not TileShape(nest=nest, blocks=start).is_feasible(12, "per-array")
        tile = integer_repair(nest, [3.6, 3.6, 3.6], 12, "per-array")
        assert tile.is_feasible(12, "per-array")
        assert tile.volume >= 3 * 3 * 3

    def test_skewed_bound_solves_across_budgets(self):
        # End-to-end regressions: skewed/small bounds where rationals
        # collide with tiny loop extents.
        for nest in [
            matmul(1, 1, 4096),
            matmul(2, 4096, 2),
            nbody(1, 4096),
            mttkrp(3, 1, 4096, 2),
            tensor_contraction((1,), (4096,), (1, 3)),
        ]:
            for M in (4, 10, 2**12):
                for budget in ("per-array", "aggregate"):
                    sol = solve_tiling(nest, M, budget=budget)
                    for b, L in zip(sol.tile.blocks, nest.bounds):
                        assert 1 <= b <= L, (nest.name, M, budget)
                    assert sol.tile.is_feasible(M, budget), (nest.name, M, budget)


class TestLPStructure:
    def test_rows_match_arrays(self):
        lp = build_tiling_lp(matmul(4, 4, 4), 16)
        names = [c.name for c in lp.constraints]
        assert names == ["cap[C]", "cap[A]", "cap[B]"]

    def test_scalar_array_skipped(self):
        from repro.library.problems import dot_product

        lp = build_tiling_lp(dot_product(16), 4)
        # Scalar output contributes no capacity row.
        assert [c.name for c in lp.constraints] == ["cap[u]", "cap[v]"]

    def test_upper_bounds_are_betas(self):
        nest = matmul(2**4, 2**8, 2**2)
        lp = build_tiling_lp(nest, 2**16)
        assert [lp.bounds[v][1] for v in lp.variables] == [F(1, 4), F(1, 2), F(1, 8)]
